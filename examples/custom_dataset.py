"""Scenario: running Gopher on your *own* tabular dataset.

Shows the minimal plumbing a downstream user needs: build a
:class:`~repro.tabular.Table` (from a dict here; ``repro.tabular.read_csv``
works the same way for files), declare the protected group and favorable
label, and hand everything to the explainer.

The synthetic "hiring" data below plants an obvious bias — bootcamp
graduates from the protected group are systematically rejected — and Gopher
recovers exactly that subset.

Run with:  python examples/custom_dataset.py
"""

import numpy as np

from repro.core import GopherExplainer
from repro.datasets import Dataset, ProtectedGroup, train_test_split
from repro.models import LogisticRegression
from repro.tabular import Table


def build_hiring_data(n: int = 1500, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    group = rng.choice(["blue", "green"], size=n, p=[0.6, 0.4])  # blue = privileged
    education = rng.choice(["bootcamp", "bachelors", "masters"], size=n, p=[0.3, 0.5, 0.2])
    experience = np.clip(rng.gamma(3.0, 2.0, n).round(), 0, 25)
    referral = rng.choice(["yes", "no"], size=n, p=[0.25, 0.75])

    merit = (
        0.25 * experience
        + 1.0 * (education == "masters")
        + 0.5 * (education == "bachelors")
        + 0.8 * (referral == "yes")
        - 2.0
    )
    # Planted bias: green bootcamp graduates are rejected regardless of
    # merit, while green masters graduates are slightly *over*-hired (so
    # the bias is concentrated in one coherent subgroup rather than being
    # a blanket group effect).
    merit -= 3.0 * ((group == "green") & (education == "bootcamp"))
    merit += 0.6 * ((group == "green") & (education == "masters"))
    hired = (merit + rng.normal(scale=0.8, size=n) > 0).astype(np.int64)

    table = Table.from_dict(
        {
            "group": group,
            "education": education,
            "experience": experience,
            "referral": referral,
        }
    )
    return Dataset(
        "hiring",
        table,
        hired,
        ProtectedGroup(attribute="group", privileged_category="blue"),
        favorable_label=1,
    )


def main() -> None:
    data = build_hiring_data()
    train, test = train_test_split(data, test_fraction=0.25, seed=1)

    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        max_predicates=2,
        support_threshold=0.05,
    )
    gopher.fit(train, test)
    print(f"Hiring disparity (blue - green): {gopher.original_bias:+.4f}\n")

    result = gopher.explain(k=3, verify=True)
    print(result.render())
    print(
        "\nThe planted root cause — green bootcamp graduates — should appear "
        "at or near the top."
    )


if __name__ == "__main__":
    main()
