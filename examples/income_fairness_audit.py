"""Scenario: auditing an income classifier for gender bias (paper §1).

This mirrors the paper's motivating example: a developer notices that a
qualified female applicant is predicted to earn <= 50K, checks the model's
statistical parity, and — unlike LIME/SHAP-style feature explanations —
uses Gopher to trace the bias back to *training data subsets*: the married-
male household-income artifact of the Adult dataset.

Run with:  python examples/income_fairness_audit.py
"""

import numpy as np

from repro.core import GopherExplainer
from repro.datasets import load_adult, train_test_split
from repro.fairness import fairness_report
from repro.models import LogisticRegression


def main() -> None:
    data = load_adult(3000, seed=0)
    train, test = train_test_split(data, test_fraction=0.25, seed=1)

    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        max_predicates=3,
    )
    gopher.fit(train, test)

    # --- the developer's first surprise: an unexpected negative prediction
    X_test = gopher.encoder.transform(test.table)
    female = ~test.privileged_mask()
    qualified = (np.asarray(test.table.column("education_num").values) >= 13) & female
    predictions = gopher.model.predict(X_test)
    idx = np.flatnonzero(qualified & (predictions == 0))
    if idx.size:
        person = test.table.row(int(idx[0]))
        print("Unexpectedly rejected applicant:")
        for key in ("age", "education", "marital", "hours", "gender"):
            print(f"  {key:<10} {person[key]}")
        print()

    # --- the model-level diagnosis
    print("Fairness report (positive = males favored):")
    print(fairness_report(gopher.model, gopher.test_ctx))
    print()

    # --- the data-level diagnosis: which training subsets cause this?
    result = gopher.explain(k=3, verify=True)
    print(result.render())
    print()
    print(
        "The marital/relationship patterns reflect Adult's household-income\n"
        "artifact: income is recorded per household for married rows, and\n"
        "married males dominate — exactly the root cause the paper reports."
    )


if __name__ == "__main__":
    main()
