"""Scenario: auditing an income classifier for gender bias (paper §1).

This mirrors the paper's motivating example: a developer notices that a
qualified female applicant is predicted to earn <= 50K, checks the model's
statistical parity, and — unlike LIME/SHAP-style feature explanations —
uses Gopher to trace the bias back to *training data subsets*: the married-
male household-income artifact of the Adult dataset.

A real audit never stops at one question, so this example runs an
:class:`~repro.core.AuditSession`: the model is trained and the heavy
influence/alphabet caches are built exactly once, then several fairness
metrics — across *two* protected attributes — are answered as cheap
queries against the shared state.  The single-question deep dive at the
end is a thin ``session.explainer(...)`` view over the same session.

Run with:  python examples/income_fairness_audit.py
"""

import numpy as np

from repro.core import AuditSession
from repro.datasets import ProtectedGroup, load_adult, train_test_split
from repro.models import LogisticRegression


def main() -> None:
    data = load_adult(3000, seed=0)
    train, test = train_test_split(data, test_fraction=0.25, seed=1)

    # One start-up: encode, train, build the shared artifact caches.
    session = AuditSession(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        max_predicates=3,
    )
    session.fit(train, test)

    # --- the developer's first surprise: an unexpected negative prediction
    X_test = session.X_test
    female = ~test.privileged_mask()
    qualified = (np.asarray(test.table.column("education_num").values) >= 13) & female
    predictions = session.model.predict(X_test)
    idx = np.flatnonzero(qualified & (predictions == 0))
    if idx.size:
        person = test.table.row(int(idx[0]))
        print("Unexpectedly rejected applicant:")
        for key in ("age", "education", "marital", "hours", "gender"):
            print(f"  {key:<10} {person[key]}")
        print()

    # --- the model-level diagnosis (rides the session's shared context)
    print("Fairness report (positive = males favored):")
    print(session.report())
    print()

    # --- the data-level diagnosis: which training subsets cause this?
    # Three metrics × two protected attributes, one Hessian factorization.
    result = session.audit(
        metrics=["statistical_parity", "equal_opportunity", "average_odds"],
        groups=[
            train.protected,  # gender = Male privileged (declared)
            ProtectedGroup(attribute="age", privileged_threshold=40.0),
        ],
        k=3,
    )
    print(result.render())
    print()

    # --- deep dive on one cell, with ground-truth verification retrains:
    # a thin explainer view bound to (statistical_parity, gender).
    gopher = session.explainer(metric="statistical_parity")
    verified = gopher.explain(k=3, verify=True)
    print("Verified (retrained) statistical-parity explanations:")
    print(verified.render())
    print()
    print(
        "The marital/relationship patterns reflect Adult's household-income\n"
        "artifact: income is recorded per household for married rows, and\n"
        "married males dominate — exactly the root cause the paper reports."
    )


if __name__ == "__main__":
    main()
