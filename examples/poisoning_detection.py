"""Scenario: detecting a fairness-poisoning attack (paper §6.7).

An adversary injects anchoring-attack points into the training data to
amplify the model's bias.  Classic outlier detection (LOF) sees nothing —
the poison mimics the data distribution — but clustering the training data
and ranking clusters by second-order influence on bias concentrates the
poison in the top clusters.

Run with:  python examples/poisoning_detection.py
"""

import numpy as np

from repro.cluster import local_outlier_factor
from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.poisoning import AnchoringAttack, rank_clusters_by_influence


def main() -> None:
    data = load_german(1000, seed=1, bias_strength=0.3)
    train, test = train_test_split(data, 0.25, seed=1)
    metric = get_metric("statistical_parity")

    attack = AnchoringAttack(poison_fraction=0.10, num_anchors=5, seed=5)
    poisoned = attack.poison(train)
    print(f"Injected {poisoned.num_poisoned} poisoned rows "
          f"({attack.poison_fraction:.0%} of the clean data).\n")

    encoder = TabularEncoder().fit(poisoned.dataset.table)
    X = encoder.transform(poisoned.dataset.table)
    model = LogisticRegression(l2_reg=1e-3).fit(X, poisoned.dataset.labels)
    ctx = FairnessContext(
        encoder.transform(test.table), test.labels, test.privileged_mask(), 1
    )
    print(f"Bias of the poisoned model: {metric.value(model, ctx):+.4f}")

    # Baseline: LOF at the attacker's budget.
    lof = local_outlier_factor(X, n_neighbors=20)
    flagged = np.zeros(len(X), dtype=bool)
    flagged[np.argsort(-lof)[: poisoned.num_poisoned]] = True
    lof_recall = (flagged & poisoned.is_poisoned).sum() / poisoned.num_poisoned
    print(f"\nLocalOutlierFactor recall at the same budget: {lof_recall:.1%}"
          "  <- the attack is invisible to outlier detection")

    # Gopher-style detection: influence-ranked clusters.
    estimator = make_estimator(
        "second_order", model, X, poisoned.dataset.labels, metric, ctx
    )
    report = rank_clusters_by_influence(X, estimator, n_clusters=8, method="gmm", seed=0)
    print("\nClusters ranked by estimated responsibility for bias:")
    for cluster in report.ranking[:4]:
        members = report.cluster_labels == cluster
        poison_here = (members & poisoned.is_poisoned).sum()
        print(
            f"  cluster {cluster}: size={report.sizes[cluster]:<4} "
            f"responsibility={report.responsibilities[cluster]:+.2f} "
            f"poisoned={poison_here}"
        )
    recall = report.fraction_in_top(poisoned.is_poisoned, 2)
    print(f"\nPoison captured by the top-2 clusters: {recall:.1%}")


if __name__ == "__main__":
    main()
