"""Quickstart: explain the bias of a credit-risk classifier in ~30 lines.

Runs the full Gopher pipeline on the German Credit dataset:

1. load data and split,
2. fit a logistic-regression model and measure its fairness,
3. find the top-3 training-data subsets most responsible for the bias
   (verified by actually retraining without them),
4. find homogeneous *updates* to those subsets that reduce the bias.

Run with:  python examples/quickstart.py
"""

from repro.core import GopherExplainer
from repro.datasets import load_german, train_test_split
from repro.models import LogisticRegression


def main() -> None:
    data = load_german(1000, seed=1)
    train, test = train_test_split(data, test_fraction=0.25, seed=1)

    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        support_threshold=0.05,
        max_predicates=3,
    )
    gopher.fit(train, test)

    print("Model fairness on held-out data")
    print(gopher.report())
    print()

    result = gopher.explain(k=3, verify=True)
    print(result.render())
    print()

    print("Update-based explanations (Section 5):")
    for update in gopher.explain_updates(result, verify=True):
        changes = ", ".join(
            f"{feat}: {a} -> {b}" for feat, (a, b) in sorted(update.changed_features.items())
        )
        print(f"  {update.pattern}")
        print(
            f"    update [{changes}] changes bias by {update.gt_bias_change:+.4f} "
            f"({update.direction}, {update.direction_vs_removal} than removal)"
        )


if __name__ == "__main__":
    main()
