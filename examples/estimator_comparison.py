"""Scenario: how good are the influence approximations? (paper §6.3)

Compares first-order, second-order, and one-step-GD estimates of the bias
change from removing a coherent subset against the ground truth obtained by
retraining — a miniature of the paper's Figure 3 you can read in seconds.

Run with:  python examples/estimator_comparison.py
"""

import numpy as np

from repro.bench import build_pipeline, coherent_subsets
from repro.influence import make_estimator


def main() -> None:
    bundle = build_pipeline("german", "logistic_regression", n_rows=1000, seed=1)
    labels = bundle.train.labels
    estimators = {
        "first-order IF ": make_estimator(
            "first_order", bundle.model, bundle.X_train, labels,
            bundle.metric, bundle.test_ctx, evaluation="hard",
        ),
        "second-order IF": make_estimator(
            "second_order", bundle.model, bundle.X_train, labels,
            bundle.metric, bundle.test_ctx, evaluation="hard",
        ),
        "one-step GD    ": make_estimator(
            "one_step_gd", bundle.model, bundle.X_train, labels,
            bundle.metric, bundle.test_ctx,
        ),
    }
    ground_truth = make_estimator(
        "retrain", bundle.model, bundle.X_train, labels, bundle.metric, bundle.test_ctx
    )

    print(f"original bias = {bundle.original_bias:+.4f}\n")
    print(f"{'subset':<10} {'truth':>9}  " + "  ".join(f"{k:>15}" for k in estimators))
    errors: dict[str, list[float]] = {k: [] for k in estimators}
    for idx in coherent_subsets(bundle, 8, seed=2):
        gt = ground_truth.bias_change(idx)
        cells = []
        for name, est in estimators.items():
            value = est.bias_change(idx)
            errors[name].append(abs(value - gt))
            cells.append(f"{value:>+15.4f}")
        print(f"n={len(idx):<8} {gt:>+9.4f}  " + "  ".join(cells))

    print("\nmean absolute error vs retraining:")
    for name, errs in errors.items():
        print(f"  {name} {np.mean(errs):.4f}")
    print("\nExpected: second-order closest, one-step GD farthest (Figure 3).")


if __name__ == "__main__":
    main()
