"""Scenario: auditing a stop-and-frisk model and *mitigating* its bias.

SQF flips the usual setup: the favorable outcome is NOT being frisked
(``favorable_label = 0``) and the protected attribute is race.  The script
finds the responsible training subsets, removes the top one, retrains, and
shows the measured bias drop — the full debugging loop the paper motivates.

Run with:  python examples/stop_and_frisk_audit.py
"""

from repro.core import GopherExplainer
from repro.datasets import load_sqf, train_test_split
from repro.models import LogisticRegression


def main() -> None:
    data = load_sqf(5000, seed=0)
    train, test = train_test_split(data, test_fraction=0.25, seed=1)

    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        max_predicates=4,
        support_threshold=0.05,
    )
    gopher.fit(train, test)
    print(f"Frisk disparity (positive = Whites favored): {gopher.original_bias:.4f}\n")

    result = gopher.explain(k=3, verify=True)
    print(result.render())

    # Mitigation: drop the most responsible subset and retrain.
    top = result[0]
    mask = top.pattern.mask(train.table)
    cleaned = train.without(mask)
    print(
        f"\nRemoving {mask.sum()} rows covered by [{top.pattern}] "
        f"({top.support:.1%} of training data) and retraining..."
    )
    remediated = GopherExplainer(
        LogisticRegression(l2_reg=1e-3), max_predicates=1
    ).fit(cleaned, test)
    print(f"bias before: {gopher.original_bias:+.4f}")
    print(f"bias after : {remediated.original_bias:+.4f}")
    reduction = 1 - remediated.original_bias / gopher.original_bias
    print(f"relative reduction: {reduction:.1%}")


if __name__ == "__main__":
    main()
