"""Table 6 — update-based explanations for SQF's top-3 patterns (§6.5).

Expected shape: updates flip race and stop-circumstance attributes
(e.g. fits_description No→Yes for frisked Black individuals), reducing the
frisk disparity — sometimes by more than deleting the subset.
"""

from __future__ import annotations

import time

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_sqf, train_test_split
from repro.models import LogisticRegression

from bench_table4_updates_german import _update_rows


def _run():
    data = load_sqf(5000, seed=0)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        estimator="second_order",
        support_threshold=0.05,
        max_predicates=4,
    )
    gopher.fit(train, test)
    explanations = gopher.explain(k=3, verify=True)
    start = time.perf_counter()
    updates = gopher.explain_updates(explanations, verify=True)
    seconds = time.perf_counter() - start
    return gopher, explanations, updates, seconds


def test_table6_update_explanations_sqf(benchmark):
    gopher, explanations, updates, seconds = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = _update_rows(explanations, updates, gopher.original_bias)
    emit(
        render_table(
            f"Table 6: update-based explanations for SQF (tau=5%, {seconds:.1f}s)",
            ["pattern", "support", "Δbias remove", "update", "Δbias update", "vs removal"],
            rows,
            note="v = update reduces bias less than removal, ^ = more (paper's arrows)",
        ),
        filename="table6_updates_sqf.txt",
    )
    assert len(updates) == len(explanations)
