"""Incremental ``delta_audit`` vs a cold rebuild after a training-data edit.

The §5 debugging loop is audit → repair → re-audit.  The naive re-audit
pays the whole per-model start-up again — re-encode, rebuild gradients,
re-factorize the Hessian, regenerate the predicate alphabet — and then
re-runs every engine search.  ``delta_audit`` instead patches every cache
in place (rank-k solver updates, mask patches) and *replays* each
recorded search against the patched artifacts: one packed batch over the
recorded candidates plus a drift-screened boundary re-score, instead of
a full lattice merge pass.

Three claims, asserted:

1. **Speedup** — re-certifying a 3-metric audit after a 1%-row removal is
   ≥5× faster (≥3× under ``--smoke``) than a cold rebuild: a brand-new
   session over the edited data with the *same* fitted model and encoder
   (no model refit on either side — influence debugging measures edits
   from the current optimum, so training cost is excluded from both).
2. **Identical answers** — the replayed ranking equals re-running the
   engine search through the patched session, patterns and
   responsibilities to 1e-8, with ``recheck="never"`` pinning the fast
   path (any certificate refusal fails the run instead of silently
   re-searching).  The cold rebuild is a *timing* baseline only: it
   re-derives quantile bin edges from the edited table, so after a
   row-changing edit it speaks a slightly different pattern language by
   design (the frozen-language tests pin cold equality for relabel
   edits, where the table — hence the bins — is unchanged).
3. **No rebuild accounting** — after the delta pass the counters still
   show exactly one Hessian factorization and one alphabet build; the
   edit's cost appears only under ``solver_updates`` /
   ``alphabet_patches``.  The replay also evaluates far fewer subsets
   than the engine did (reported per query).
"""

from __future__ import annotations

import time

from repro.bench import build_pipeline, emit, render_table
from repro.core import AuditSession
from repro.datasets import random_edit

METRICS = ["statistical_parity", "equal_opportunity", "average_odds"]

CONFIG = dict(
    estimator="series",
    estimator_kwargs={"evaluation": "smooth"},
    engine="lattice",
    support_threshold=0.05,
    max_predicates=2,
)


def _assert_identical(delta_after, fresh, abs_tol=1e-8):
    for qd, qf in zip(delta_after, fresh):
        assert qd.metric == qf.metric
        d, f = qd.explanations, qf.explanations
        assert [e.pattern for e in d] == [e.pattern for e in f], (
            f"{qd.metric}: replay diverged from the fresh search:\n"
            f"  replay: {[str(e.pattern) for e in d]}\n"
            f"  fresh:  {[str(e.pattern) for e in f]}"
        )
        for a, b in zip(d, f):
            assert abs(a.est_responsibility - b.est_responsibility) < abs_tol
            assert abs(a.est_bias_change - b.est_bias_change) < abs_tol


def test_delta_audit(benchmark, smoke):
    rows = 400 if smoke else 1000
    bar = 3.0 if smoke else 5.0
    bundle = build_pipeline("german", "logistic_regression", n_rows=rows, seed=1)

    def run():
        session = AuditSession(bundle.model, **CONFIG)
        session.fit(bundle.train, bundle.test)
        session.audit(metrics=METRICS, k=3)  # the "before" side, warm
        # The level-2 merge skeleton is one-time session state: a pure
        # function of the level-1 alphabet, cached inside it and reused by
        # every delta_audit of the debugging loop (edits that keep the
        # entry list keep the skeleton).  Build it with the warm-up so the
        # timed region below measures the steady-state loop iteration.
        cfg = session.config
        session.alphabet_cache.get(
            cfg.support_threshold, cfg.num_bins, cfg.exclude_features or None
        ).pair_skeleton()
        edit = random_edit(session.train_data, "remove", max(1, rows // 100), seed=0)

        delta_start = time.perf_counter()
        delta = session.delta_audit(edit, metrics=METRICS, k=3, recheck="never")
        delta_seconds = time.perf_counter() - delta_start
        assert delta.num_certified == len(delta.queries)

        # Claim 3: nothing heavy rebuilt — the edit cost is patch-shaped.
        stats = session.stats
        assert stats["influence.hessian_factorizations"] == 1
        assert stats["mining.alphabet_builds"] == 1
        assert stats["mining.tidlist_builds"] == 0
        assert stats["mining.alphabet_patches"] == 1
        assert stats["influence.edits"] == 1
        assert stats["influence.solver_updates"] >= 1

        # Claim 2 (a): replay == re-running the engine on the patched session.
        fresh = session.audit(metrics=METRICS, k=3)
        _assert_identical(delta.after, fresh)

        # Claim 1: cold rebuild — new session on the edited data, same
        # fitted model and encoder, full start-up + engine searches.
        edited_train = session.train_data
        cold_start = time.perf_counter()
        cold = AuditSession(bundle.model, **CONFIG)
        cold.fit(edited_train, session.test_data, encoder=session.encoder)
        cold_result = cold.audit(metrics=METRICS, k=3)
        cold_seconds = time.perf_counter() - cold_start

        # The cold result is a timing baseline only: a cold session
        # re-derives quantile bin edges from the edited table, so its
        # pattern *language* legitimately differs from the session's frozen
        # one after a row-changing edit (tests/core/test_delta_audit.py
        # pins cold-rebuild equality for relabel edits, where it holds).
        assert len(cold_result.queries) == len(delta.queries)

        evaluated = [
            (bq.explanations.lattice.num_evaluated, dq.after.lattice.num_evaluated)
            for bq, dq in zip(delta.before.queries, delta.queries)
        ]
        return delta_seconds, cold_seconds, delta, evaluated

    delta_seconds, cold_seconds, delta, evaluated = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = cold_seconds / delta_seconds
    rows_out = [
        [
            q.metric,
            "yes" if q.certified else "NO",
            n_fresh,
            n_replay,
            f"{q.seconds * 1e3:.0f}ms",
        ]
        for q, (n_fresh, n_replay) in zip(delta.queries, evaluated)
    ]
    rows_out.append(
        [
            "total",
            f"{delta.num_certified}/{len(delta.queries)}",
            "-",
            "-",
            f"{delta_seconds:.3f}s vs cold {cold_seconds:.3f}s = {speedup:.1f}x",
        ]
    )
    emit(
        render_table(
            f"delta_audit after {delta.edit.describe()}: replay vs cold rebuild "
            f"(german n={rows}, series/smooth{', smoke' if smoke else ''})",
            ["query", "certified", "engine evals", "replay evals", "time"],
            rows_out,
            note="replay = apply_edit (rank-k solver update + mask patches) + "
            "per-query record replay with drift-screened boundary re-scores; "
            "cold = new AuditSession.fit + full engine searches over the edited "
            "data (same fitted model/encoder on both sides; timing baseline "
            "only — a cold session re-bins the edited table).  Asserted: the "
            "replay equals re-running the engine through the patched session "
            "(patterns + responsibilities to 1e-8) and every query certified "
            "under recheck='never'",
        ),
        filename="delta_audit.txt",
    )
    assert speedup >= bar, (
        f"delta_audit speedup fell below {bar}x: {speedup:.1f}x "
        f"({delta_seconds:.3f}s vs cold {cold_seconds:.3f}s)"
    )
