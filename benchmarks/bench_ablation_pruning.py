"""Ablation — how much work Algorithm 1's pruning heuristics save.

Not a table in the paper, but DESIGN.md calls out the two pruning rules as
load-bearing design choices; this bench quantifies them on German:

* responsibility-must-increase merge pruning: candidate count and runtime
  with the rule on vs off;
* support threshold τ sweep: candidate counts at τ ∈ {1%, 5%, 10%, 25%};
* containment threshold c sweep: how diversity changes the selected top-3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import build_pipeline, emit, render_table
from repro.influence import FirstOrderInfluence
from repro.patterns import compute_candidates, select_top_k
from repro.utils.timing import Timer


@pytest.fixture(scope="module")
def setup():
    bundle = build_pipeline("german", "logistic_regression", n_rows=1000, seed=1)
    estimator = FirstOrderInfluence(
        bundle.model, bundle.X_train, bundle.train.labels, bundle.metric, bundle.test_ctx
    )
    return bundle, estimator


def test_ablation_responsibility_pruning(benchmark, setup):
    bundle, estimator = setup

    def run():
        rows = []
        for prune in (True, False):
            with Timer() as timer:
                result = compute_candidates(
                    bundle.train.table, estimator, 0.05, max_predicates=3,
                    prune_by_responsibility=prune,
                )
            rows.append(
                [
                    "on" if prune else "off",
                    result.num_candidates,
                    sum(lv.num_merges_tried for lv in result.levels),
                    f"{timer.elapsed:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            "Ablation: responsibility-must-increase pruning (German, 3 predicates)",
            ["pruning", "#candidates", "#merges tried", "seconds"],
            rows,
        ),
        filename="ablation_pruning.txt",
    )
    assert rows[0][1] < rows[1][1]


def test_ablation_support_threshold(benchmark, setup):
    bundle, estimator = setup

    def run():
        rows = []
        for tau in (0.01, 0.05, 0.10, 0.25):
            result = compute_candidates(
                bundle.train.table, estimator, tau, max_predicates=2
            )
            top, _ = select_top_k(result.candidates, 3, 0.5)
            best = top[0].responsibility if top else float("nan")
            rows.append([f"{tau:.0%}", result.num_candidates, f"{best:.2%}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            "Ablation: support threshold tau (German, 2 predicates)",
            ["tau", "#candidates", "top-1 est. responsibility"],
            rows,
            note="the paper: tau as low as 1% adds low-support patterns without better bias reduction",
        ),
        filename="ablation_support.txt",
    )
    counts = [row[1] for row in rows]
    assert counts == sorted(counts, reverse=True)


def test_ablation_containment_threshold(benchmark, setup):
    bundle, estimator = setup
    result = compute_candidates(bundle.train.table, estimator, 0.05, max_predicates=2)

    def run():
        rows = []
        for c in (0.25, 0.5, 0.75, 1.0):
            top, _ = select_top_k(result.candidates, 3, c)
            overlap = 0.0
            masks = [s.mask() for s in top]
            for i in range(len(masks)):
                for j in range(i + 1, len(masks)):
                    inter = (masks[i] & masks[j]).sum()
                    overlap = max(overlap, inter / masks[i].sum())
            rows.append([f"{c:.2f}", len(top), f"{overlap:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            "Ablation: containment threshold c (German, top-3 diversity)",
            ["c", "selected", "max pairwise overlap"],
            rows,
            note="smaller c forces more diverse (less overlapping) explanations",
        ),
        filename="ablation_containment.txt",
    )
