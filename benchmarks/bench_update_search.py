"""Vectorized §5 update search vs the per-coordinate loop (the PR-2 bar).

Two workloads on German Credit, both over the planted Table-4 patterns:

1. **pattern features** — δ restricted to each pattern's own features, the
   default (and the shape of the paper's Tables 4–6).  Few active
   coordinates, so the loop is merely slow, not pathological.
2. **full repair** — δ may touch *every* feature.  Here the loop pays
   2·|active| ≈ 100 finite-difference objective evaluations per ascent
   step and the analytic ``input_grads`` fast path pays one model call, so
   this workload is where the engine must clear ≥5× (asserted; ≥2× under
   ``--smoke``).

Both workloads assert the batched engine reproduces the ``batch=False``
reference outputs: the same δ per pattern, the same estimated bias change,
and the same described update.  A third experiment reports the
``verify=True`` ground-truth retrains through the shared process-parallel
helper (serial vs one-worker-per-CPU; informational — single-CPU runners
show ~1×).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench import build_pipeline, emit, render_table
from repro.patterns import Pattern, Predicate
from repro.updates import UpdateSearchContext, find_update_explanations

PATTERNS = [
    Pattern([Predicate("age", ">=", 45.0), Predicate("gender", "=", "Female")]),
    Pattern([Predicate("gender", "=", "Female")]),
    Pattern([Predicate("age", ">=", 45.0)]),
]

DELTA_ATOL = 1e-6
CHANGE_ATOL = 1e-9


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_identical(batched, loop) -> None:
    for b, l in zip(batched, loop):
        assert np.allclose(b.delta, l.delta, atol=DELTA_ATOL), (
            f"batched delta diverged for {b.pattern}: "
            f"max |Δ| = {np.abs(b.delta - l.delta).max():.2e}"
        )
        assert abs(b.est_bias_change - l.est_bias_change) < CHANGE_ATOL, (
            f"batched bias change diverged for {b.pattern}: "
            f"{b.est_bias_change} vs {l.est_bias_change}"
        )
        assert b.changed_features == l.changed_features, (
            f"batched update description diverged for {b.pattern}"
        )


def _run(smoke: bool):
    n_rows = 600 if smoke else 1000
    num_steps = 40 if smoke else 120
    repeats = 2 if smoke else 3
    bundle = build_pipeline("german", "logistic_regression", n_rows=n_rows, seed=1)
    subsets = [np.flatnonzero(p.mask(bundle.train.table)) for p in PATTERNS]
    context = UpdateSearchContext(
        bundle.model, bundle.X_train, bundle.train.labels, bundle.metric, bundle.test_ctx
    )

    def search(**kwargs):
        return find_update_explanations(
            bundle.model, bundle.encoder, bundle.X_train, bundle.train.labels,
            bundle.metric, bundle.test_ctx, PATTERNS, subsets,
            num_steps=num_steps, context=context, **kwargs,
        )

    all_features = set(bundle.train.table.column_names)
    rows, speedups = [], {}
    for label, allowed in [("pattern features", None), ("full repair", all_features)]:
        loop_s, loop = _best_of(lambda a=allowed: search(batch=False, allowed_features=a), repeats)
        batch_s, batched = _best_of(lambda a=allowed: search(batch=True, allowed_features=a), repeats)
        _assert_identical(batched, loop)
        speedups[label] = loop_s / batch_s
        rows.append(
            [
                label,
                len(PATTERNS),
                f"{loop_s * 1e3:.1f}",
                f"{batch_s * 1e3:.1f}",
                f"{speedups[label]:.1f}x",
                "yes",
            ]
        )

    verify_rows = []
    serial_s, _ = _best_of(lambda: search(batch=True, verify=True, n_jobs=1), 1)
    parallel_s, _ = _best_of(lambda: search(batch=True, verify=True, n_jobs=None), 1)
    verify_rows.append(
        [
            len(PATTERNS),
            os.cpu_count() or 1,
            f"{serial_s * 1e3:.1f}",
            f"{parallel_s * 1e3:.1f}",
            f"{serial_s / parallel_s:.1f}x",
        ]
    )
    return n_rows, num_steps, rows, speedups, verify_rows


def test_update_search_speedup(benchmark, smoke):
    n_rows, num_steps, rows, speedups, verify_rows = benchmark.pedantic(
        lambda: _run(smoke), rounds=1, iterations=1
    )
    emit(
        render_table(
            f"Vectorized update search (German, {n_rows} rows, {num_steps} steps, "
            "loop vs batched engine)",
            ["workload", "patterns", "loop (ms)", "batch (ms)", "speedup", "identical"],
            rows,
            note="identical = same delta, estimated Δbias, and described update "
            "from both paths (asserted)",
        ),
        filename="update_search_speedup.txt",
    )
    emit(
        render_table(
            "Update verification retrains (shared parallel helper)",
            ["updates", "cpus", "serial (ms)", "parallel (ms)", "speedup"],
            verify_rows,
            note="informational; single-CPU runners resolve to the serial loop",
        ),
        filename="update_search_verify.txt",
    )
    # The acceptance bar: the full-repair workload must clear 5x (2x under
    # --smoke, where step counts are too small to amortize fixed overheads).
    bar = 2.0 if smoke else 5.0
    assert speedups["full repair"] >= bar, (
        f"full-repair update-search speedup fell below {bar}x: "
        f"{speedups['full repair']:.1f}x"
    )
    # The pattern-features workload is reported but not gated: its active
    # sets are 1-3 coordinates, so loop and batch times are both tiny and a
    # hard >=1x bar would flake on noisy shared runners.
