"""Shared benchmark configuration.

Benchmarks are heavyweight experiments; each is executed once via
``benchmark.pedantic(..., rounds=1)`` on a representative kernel while the
full experiment result (the paper-shaped table) is emitted through
``repro.bench.emit`` so it survives pytest's output capture.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.bench import build_pipeline

_RESULTS_DIR = Path(__file__).parent / "results"
_SESSION_START = time.time()


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="reduced dataset sizes / step counts and relaxed speedup bars, "
        "for the CI smoke run",
    )


@pytest.fixture(scope="session")
def smoke(request):
    """True when the benchmark should run its reduced CI configuration."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def german_lr():
    """The default paper setup: German Credit + logistic regression."""
    return build_pipeline("german", "logistic_regression", n_rows=1000, seed=1)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the paper-shaped tables after pytest's capture has ended.

    ``emit`` archives every table under ``benchmarks/results/``; pytest's
    file-descriptor capture swallows live prints, so the tables produced by
    *this* session are echoed here, where they reach the real terminal (and
    any ``tee`` of it).
    """
    fresh = [
        path
        for path in sorted(_RESULTS_DIR.glob("*.txt"))
        if path.stat().st_mtime >= _SESSION_START - 1.0
    ]
    if not fresh:
        return
    terminalreporter.section("reproduced tables and figures")
    for path in fresh:
        terminalreporter.write(path.read_text())
