"""Table 1 — top-3 explanations for German Credit (τ = 5%, LR, §6.4).

Runs the full Gopher pipeline and prints pattern / support / ground-truth
Δbias rows.  Expected shape (paper Table 1): small-support patterns with
large verified bias reductions, the protected attribute (age) prominent,
and the top pattern centred on the older-female subgroup.
"""

from __future__ import annotations

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_german, train_test_split
from repro.models import LogisticRegression


def _run():
    data = load_german(1000, seed=1)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        support_threshold=0.05,
        max_predicates=3,
    )
    gopher.fit(train, test)
    result = gopher.explain(k=3, verify=True)
    return gopher, result


def test_table1_top3_explanations_german(benchmark):
    gopher, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [str(e.pattern), f"{e.support:.2%}", f"{e.gt_responsibility:.1%}"]
        for e in result
    ]
    emit(
        render_table(
            "Table 1: top-3 explanations for German "
            f"(tau=5%, logistic regression, bias={gopher.original_bias:.3f}, "
            f"search={result.search_seconds:.1f}s)",
            ["pattern", "support", "Δbias (retrained)"],
            rows,
            note="Δbias = relative reduction in statistical parity when the subset is removed",
        ),
        filename="table1_german.txt",
    )
    assert result[0].gt_responsibility > 0
