"""Artifact-cached `AuditSession` vs one fresh explainer per query.

A real audit asks many questions of one model — here 3 fairness metrics ×
2 protected attributes, the workload the session API exists for.  The
per-query cost split (see ``repro.core.session``):

* **per-model, paid once by the session** — model training, the encoder,
  per-sample gradients, the Hessian build + factorization, and the
  level-1 predicate alphabet (plus packed tidlists under the mining
  engine);
* **per-query, paid 6×** — ∇F, the original bias, the group context, and
  the candidate search itself.

The fresh baseline is what the pre-session API forces: one
``GopherExplainer`` per (metric, group), each re-running the entire
start-up — exactly the per-query rebuild the session eliminates.

Three claims:

1. **End-to-end amortization** — the 3-metric × 2-group audit through one
   session is ≥3× faster than six fresh explainers (≥2× under ``--smoke``
   for shared CI runners), on German and Adult with the neural network
   (the model whose training cost makes per-query refits hurt most).
2. **Identical answers** — every query's explanations (patterns and
   estimated responsibilities to 1e-10) match the fresh explainer's; the
   caches change where work happens, never the result.
3. **Single-build accounting** — after the whole audit the session's
   stats counters show exactly one Hessian factorization, one per-sample
   gradient build, and one alphabet build; a mining-engine audit
   additionally shows exactly one packed-tidlist build.  Asserted, not
   inferred from timings.

``--smoke`` shrinks the datasets and drops Adult; every structural
assertion (parity, counters) is kept.
"""

from __future__ import annotations

import time

from repro.bench import build_pipeline, emit, render_table
from repro.core import AuditSession, GopherExplainer
from repro.datasets import ProtectedGroup

METRICS = ["statistical_parity", "equal_opportunity", "average_odds"]

GROUPS = {
    "german": [
        ProtectedGroup(attribute="age", privileged_threshold=45.0),
        ProtectedGroup(attribute="gender", privileged_category="Male"),
    ],
    "adult": [
        ProtectedGroup(attribute="gender", privileged_category="Male"),
        ProtectedGroup(attribute="age", privileged_threshold=40.0),
    ],
}


def _workloads(smoke: bool):
    if smoke:
        return [("german", 400)]
    return [("german", 1000), ("adult", 2500)]


def _search_config(engine: str = "lattice") -> dict:
    return dict(
        estimator="series",
        estimator_kwargs={"evaluation": "smooth"},
        engine=engine,
        support_threshold=0.05,
        max_predicates=2,
    )


def _assert_identical(name, fresh_sets, audit_result):
    for (metric, group, fresh), query in zip(fresh_sets, audit_result):
        assert query.metric == metric and query.group == group
        fresh_patterns = [e.pattern for e in fresh]
        audit_patterns = [e.pattern for e in query.explanations]
        assert fresh_patterns == audit_patterns, (
            f"{name}: {metric} × {group.describe()} diverged:\n"
            f"  fresh:   {[str(p) for p in fresh_patterns]}\n"
            f"  session: {[str(p) for p in audit_patterns]}"
        )
        for a, b in zip(fresh, query.explanations):
            assert abs(a.est_responsibility - b.est_responsibility) < 1e-10
            assert abs(a.est_bias_change - b.est_bias_change) < 1e-10


def _run_audit(dataset: str, rows: int, model_factory, engine: str, k: int = 3):
    """One workload: fresh-per-query baseline vs one session, timed."""
    bundle = build_pipeline(dataset, "logistic_regression", n_rows=rows, seed=1)
    groups = GROUPS[dataset]
    config = _search_config(engine)

    # Baseline: one fresh explainer per (group, metric) — each pays model
    # training, gradients, factorization, and alphabet generation again.
    fresh_sets = []
    fresh_start = time.perf_counter()
    for group in groups:
        train = bundle.train.with_protected(group)
        test = bundle.test.with_protected(group)
        for metric in METRICS:
            gopher = GopherExplainer(model_factory(), metric=metric, **config)
            gopher.fit(train, test)
            fresh_sets.append((metric, group, gopher.explain(k=k, verify=False)))
    fresh_seconds = time.perf_counter() - fresh_start

    # Session: the per-model start-up once, then 6 cheap queries.
    session_start = time.perf_counter()
    session = AuditSession(model_factory(), **config)
    session.fit(bundle.train, bundle.test)
    result = session.audit(metrics=METRICS, groups=groups, k=k, verify=False)
    session_seconds = time.perf_counter() - session_start

    _assert_identical(f"{dataset} ({engine})", fresh_sets, result)
    stats = session.stats
    for counter in ("hessian_factorizations", "per_sample_grad_builds", "alphabet_builds"):
        assert stats[counter] == 1, (
            f"{dataset} ({engine}): {counter} = {stats[counter]} after a "
            f"{len(result)}-query audit; the session failed to amortize"
        )
    if engine == "mining":
        assert stats["tidlist_builds"] == 1, (
            f"{dataset} (mining): tidlist_builds = {stats['tidlist_builds']}"
        )
    return fresh_seconds, session_seconds, result, stats


def test_audit_session(benchmark, smoke):
    bar = 2.0 if smoke else 3.0
    from repro.bench.workloads import MODELS

    nn_factory = MODELS["neural_network"]
    lr_factory = MODELS["logistic_regression"]

    def run():
        rows_out, speedups = [], {}
        for dataset, rows in _workloads(smoke):
            fresh_s, session_s, result, _ = _run_audit(dataset, rows, nn_factory, "lattice")
            speedup = fresh_s / session_s
            speedups[dataset] = speedup
            rows_out.append(
                [
                    f"{dataset} (n={rows}, nn, lattice)",
                    len(result),
                    f"{fresh_s:.2f}",
                    f"{session_s:.2f}",
                    f"{result.setup_seconds:.2f}",
                    f"{speedup:.1f}x",
                    "yes",
                ]
            )
        # The mining engine rides the same caches plus the packed-tidlist
        # build; the counter assertion is the point, not the timing.
        mine_rows = 400 if smoke else 600
        fresh_s, session_s, result, stats = _run_audit(
            "german", mine_rows, lr_factory, "mining"
        )
        rows_out.append(
            [
                f"german (n={mine_rows}, lr, mining)",
                len(result),
                f"{fresh_s:.2f}",
                f"{session_s:.2f}",
                f"{result.setup_seconds:.2f}",
                f"{fresh_s / session_s:.1f}x",
                "yes",
            ]
        )
        return rows_out, speedups

    rows_out, speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            "AuditSession amortization: 3 metrics × 2 protected groups, one model"
            + (" (smoke)" if smoke else ""),
            [
                "workload", "queries", "fresh (s)", "session (s)",
                "setup once (s)", "speedup", "identical",
            ],
            rows_out,
            note="fresh = one GopherExplainer per query (model refit + full start-up "
            "each time); session = one AuditSession.audit over the same grid; "
            "identical = same patterns, responsibilities to 1e-10, and the session "
            "performed exactly one Hessian factorization / gradient build / "
            "alphabet build (one tidlist build under the mining engine)",
        ),
        filename="audit_session.txt",
    )
    for dataset, speedup in speedups.items():
        assert speedup >= bar, (
            f"audit-session speedup on {dataset} fell below {bar}x: {speedup:.1f}x"
        )
