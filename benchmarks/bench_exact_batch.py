"""Woodbury-batched exact second-order influence vs the per-subset loop.

The ``exact`` variant solves a *different* reduced matrix ``n·H − m·H_S``
per subset, so until the Woodbury batch it was the one influence path the
lattice could not amortize: every query paid a fresh subset-Hessian build
plus an O(p³) factorization.  The batch path rewrites each query as a
rank-|S| downdate of the one cached eigendecomposition — a shifted
diagonal solve plus an |S|×|S| capacitance system, block-batched across
the mask batch (see ``repro.influence.second_order``).

Three claims:

1. **Query throughput** — m ``bias_change`` calls in a loop vs one
   ``bias_change_batch`` over the same subsets (sizes drawn below the
   ``|S| ≥ p`` crossover, where the Woodbury path applies), for growing
   batch sizes on German/logistic.  Asserted ≥5× at m ≥ 256 (relaxed to
   2.5× under ``--smoke`` for shared CI runners).
2. **Routing accounting** — a mixed batch straddling the crossover is
   reported with its ``exact_batch_stats`` split: the fast path must
   carry the sub-crossover subsets while oversized ones take the dense
   fallback (asserted: both routes used, nothing silently dropped).
3. **End-to-end parity** — the full lattice search under
   ``estimator="exact"`` with ``batch=False`` (per-subset loop) vs the
   default batched search must produce identical top-k explanations
   (patterns and scores to 1e-10; also pinned by
   ``tests/integration/test_exact_golden.py``).

``--smoke`` shrinks the dataset and batch list for CI and keeps every
assertion (parity and routing are structural, not tuning outcomes).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import build_pipeline, emit, render_table, subset_mask_matrix
from repro.influence import make_estimator
from repro.patterns import select_top_k
from repro.patterns.lattice import compute_candidates
from repro.utils.rng import ensure_rng

TOP_K = 5


def _build(rows: int):
    bundle = build_pipeline("german", "logistic_regression", n_rows=rows, seed=1)
    estimator = make_estimator(
        "exact", bundle.model, bundle.X_train, bundle.train.labels,
        bundle.metric, bundle.test_ctx, evaluation="smooth",
    )
    return bundle, estimator


def _woodbury_subsets(num_train: int, num_params: int, count: int, seed: int = 5):
    """Random subsets sized below the |S| >= p crossover."""
    rng = ensure_rng(seed)
    hi = max(num_params - 5, 12)
    sizes = rng.integers(10, hi, size=count)
    return [np.sort(rng.choice(num_train, size=int(s), replace=False)) for s in sizes]


def _best_of_pair(fn_a, fn_b, repeats: int = 5) -> tuple[float, float]:
    """Best wall time of each callable, with the repeats interleaved so CPU
    frequency / contention drift hits both sides equally."""
    best_a = best_b = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _throughput_rows(estimator, batch_sizes):
    rows, speedups = [], {}
    estimator.bias_change_batch([np.arange(10)])  # warm every cache
    for batch_size in batch_sizes:
        subsets = _woodbury_subsets(
            estimator.num_train, estimator.model.num_params, batch_size
        )
        masks = subset_mask_matrix(subsets, estimator.num_train)
        loop_s, batch_s = _best_of_pair(
            lambda: [estimator.bias_change(s) for s in subsets],
            lambda: estimator.bias_change_batch(masks),
        )
        loop = np.array([estimator.bias_change(s) for s in subsets])
        batch = estimator.bias_change_batch(masks)
        max_err = float(np.abs(batch - loop).max())
        assert max_err < 1e-8, f"batched exact diverged from the loop: {max_err:.2e}"
        speedup = loop_s / batch_s
        speedups[batch_size] = speedup
        rows.append(
            [
                batch_size,
                f"{batch_size / loop_s:,.0f}",
                f"{batch_size / batch_s:,.0f}",
                f"{speedup:.1f}x",
                f"{max_err:.1e}",
            ]
        )
    return rows, speedups


def _routing_row(estimator):
    """A batch straddling the crossover: report how subsets were routed."""
    n, p = estimator.num_train, estimator.model.num_params
    rng = ensure_rng(9)
    small = [np.sort(rng.choice(n, size=int(s), replace=False))
             for s in rng.integers(5, p - 1, size=96)]
    large = [np.sort(rng.choice(n, size=int(s), replace=False))
             for s in rng.integers(p, min(3 * p, n - 1), size=32)]
    masks = subset_mask_matrix(small + large, n)
    before = dict(estimator.exact_batch_stats)
    batch = estimator.bias_change_batch(masks)
    loop = np.array([estimator.bias_change(s) for s in small + large])
    assert float(np.abs(batch - loop).max()) < 1e-8
    woodbury = estimator.exact_batch_stats["woodbury"] - before["woodbury"]
    fallback = (
        estimator.exact_batch_stats["fallback_size"] - before["fallback_size"]
    )
    assert woodbury == len(small), "sub-crossover subsets must ride the fast path"
    assert fallback == len(large), "oversized subsets must take the dense fallback"
    return [[len(small) + len(large), woodbury, fallback, f"p = {p}"]]


def _parity_rows(bundle, estimator, max_predicates):
    rows = []
    start = time.perf_counter()
    loop = compute_candidates(
        bundle.train.table, estimator, 0.05, max_predicates, batch=False
    )
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = compute_candidates(
        bundle.train.table, estimator, 0.05, max_predicates, batch=True
    )
    batch_s = time.perf_counter() - start
    top_loop, _ = select_top_k(loop, TOP_K, containment_threshold=0.5)
    top_batch, _ = select_top_k(batched, TOP_K, containment_threshold=0.5)
    assert [s.pattern for s in top_loop] == [s.pattern for s in top_batch], (
        "batched exact lattice search changed the top-k explanations"
    )
    for a, b in zip(top_loop, top_batch):
        assert abs(a.responsibility - b.responsibility) < 1e-10
        assert abs(a.bias_change - b.bias_change) < 1e-10
    rows.append(
        [
            f"exact (smooth), {max_predicates} levels",
            loop.num_candidates,
            f"{loop_s:.2f}",
            f"{batch_s:.2f}",
            f"{loop_s / batch_s:.1f}x",
            "yes",
        ]
    )
    return rows


def test_exact_batch_throughput(benchmark, smoke):
    rows_count = 400 if smoke else 1000
    batch_sizes = [64, 256] if smoke else [64, 256, 512]
    bar = 2.5 if smoke else 5.0
    bundle, estimator = _build(rows_count)

    def run():
        throughput, speedups = _throughput_rows(estimator, batch_sizes)
        routing = _routing_row(estimator)
        parity = _parity_rows(bundle, estimator, 2 if smoke else 3)
        return throughput, speedups, routing, parity

    throughput, speedups, routing, parity = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            f"Woodbury-batched exact influence (German {rows_count}, loop vs one batch call)",
            ["batch", "loop subsets/s", "batch subsets/s", "speedup", "max |Δ|"],
            throughput,
            note="subset sizes below the |S| >= p crossover; masks pre-built outside the timer",
        ),
        filename="exact_batch_throughput.txt",
    )
    emit(
        render_table(
            "Crossover routing (mixed batch)",
            ["subsets", "woodbury", "dense fallback", "crossover"],
            routing,
            note="exact_batch_stats split for a batch straddling |S| >= p",
        ),
        filename="exact_batch_routing.txt",
    )
    emit(
        render_table(
            f"Exact-estimator lattice search end-to-end (German {rows_count})",
            ["estimator", "candidates", "loop (s)", "batch (s)", "speedup", "identical top-k"],
            parity,
            note=f"identical = same top-{TOP_K} patterns and scores from both paths",
        ),
        filename="exact_batch_lattice.txt",
    )
    # The acceptance bar: >=5x on batched exact queries at m >= 256.
    for batch_size in batch_sizes:
        if batch_size < 256:
            continue
        assert speedups[batch_size] >= bar, (
            f"exact batch speedup at m={batch_size} fell below {bar}x: "
            f"{speedups[batch_size]:.1f}x"
        )
