"""§6.7 — detecting anchoring-attack poison with influence-ranked clusters.

Injects non-random anchoring poison into German Credit, then compares three
detectors at the same inspection budget:

* LocalOutlierFactor (the paper's failing baseline),
* k-means clusters ranked by second-order influence,
* GMM clusters ranked by second-order influence.

Expected shape (paper's numbers): LOF recall ≈ 0; the top-2 influence-ranked
clusters contain ~70% (or more) of the poisoned points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import emit, render_table
from repro.cluster import local_outlier_factor
from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.poisoning import AnchoringAttack, rank_clusters_by_influence

POISON_FRACTIONS = [0.05, 0.10]


def _run() -> list[list[object]]:
    metric = get_metric("statistical_parity")
    rows = []
    for fraction in POISON_FRACTIONS:
        data = load_german(1000, seed=1, bias_strength=0.3)
        train, test = train_test_split(data, 0.25, seed=1)
        poisoned = AnchoringAttack(
            poison_fraction=fraction, num_anchors=5, seed=5
        ).poison(train)
        encoder = TabularEncoder().fit(poisoned.dataset.table)
        X = encoder.transform(poisoned.dataset.table)
        model = LogisticRegression(1e-3).fit(X, poisoned.dataset.labels)
        ctx = FairnessContext(
            encoder.transform(test.table), test.labels, test.privileged_mask(), 1
        )
        # Bias amplification caused by the attack (clean model for reference).
        clean_enc = TabularEncoder().fit(train.table)
        clean_model = LogisticRegression(1e-3).fit(
            clean_enc.transform(train.table), train.labels
        )
        clean_ctx = FairnessContext(
            clean_enc.transform(test.table), test.labels, test.privileged_mask(), 1
        )
        clean_bias = metric.value(clean_model, clean_ctx)
        poisoned_bias = metric.value(model, ctx)

        estimator = make_estimator(
            "second_order", model, X, poisoned.dataset.labels, metric, ctx
        )
        recalls = {}
        for method in ("kmeans", "gmm"):
            report = rank_clusters_by_influence(
                X, estimator, n_clusters=8, method=method, seed=0
            )
            recalls[method] = report.fraction_in_top(poisoned.is_poisoned, 2)
        lof = local_outlier_factor(X, n_neighbors=20)
        flagged = np.zeros(len(X), dtype=bool)
        flagged[np.argsort(-lof)[: poisoned.num_poisoned]] = True
        lof_recall = (flagged & poisoned.is_poisoned).sum() / poisoned.num_poisoned

        rows.append(
            [
                f"{fraction:.0%}",
                f"{clean_bias:.3f}",
                f"{poisoned_bias:.3f}",
                f"{lof_recall:.1%}",
                f"{recalls['kmeans']:.1%}",
                f"{recalls['gmm']:.1%}",
            ]
        )
    return rows


def test_poison_detection(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        render_table(
            "§6.7: anchoring-attack detection on German (top-2 clusters, SO-ranked)",
            ["poison", "clean bias", "poisoned bias", "LOF recall",
             "kmeans top-2 recall", "gmm top-2 recall"],
            rows,
            note="paper: LOF detects none; top-2 SO-ranked clusters hold ~70% of poison",
        ),
        filename="poison_detection.txt",
    )
    # The qualitative claims must hold for the 10% attack.
    lof_recall = float(rows[-1][3].rstrip("%")) / 100
    gmm_recall = float(rows[-1][5].rstrip("%")) / 100
    assert lof_recall < 0.1
    assert gmm_recall > 0.5
