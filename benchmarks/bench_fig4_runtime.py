"""Figure 4 — influence-computation runtime vs fraction removed (§6.3).

Measures the per-query time of each estimator when subsets of growing size
(0–50% of German's training data) are removed, averaged over repetitions,
for all three model families.

Expected shape: influence functions are orders of magnitude faster than
retraining; first-order is the cheapest and roughly flat; retraining (warm
started) sits near one-step GD only because of the warm start, exactly as
the paper notes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import build_pipeline, emit, render_table
from repro.influence import make_estimator
from repro.utils.rng import ensure_rng

FRACTIONS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
ESTIMATORS = ["first_order", "second_order", "retrain", "one_step_gd"]
REPETITIONS = 10


def _run(model_name: str, n_rows: int, repetitions: int) -> list[list[object]]:
    bundle = build_pipeline("german", model_name, n_rows=n_rows, seed=1)
    labels = bundle.train.labels
    estimators = {
        name: make_estimator(
            name, bundle.model, bundle.X_train, labels, bundle.metric, bundle.test_ctx
        )
        for name in ESTIMATORS
    }
    # Touch the caches once so the timing loop measures the per-query cost,
    # mirroring the paper's "pre-computed Hessian and gradients at start-up".
    warmup = np.arange(10)
    for est in estimators.values():
        est.bias_change(warmup)

    rng = ensure_rng(3)
    n = bundle.train.num_rows
    rows = []
    for fraction in FRACTIONS:
        size = max(int(fraction * n), 1)
        row: list[object] = [f"{fraction:.0%}"]
        for name in ESTIMATORS:
            est = estimators[name]
            reps = repetitions if name not in ("retrain",) else max(repetitions // 2, 2)
            elapsed = []
            for _ in range(reps):
                idx = rng.choice(n, size=size, replace=False)
                start = time.perf_counter()
                est.bias_change(idx)
                elapsed.append(time.perf_counter() - start)
            row.append(f"{np.mean(elapsed):.2e}")
        rows.append(row)
    return rows


@pytest.mark.parametrize(
    "model_name,n_rows",
    [("logistic_regression", 800), ("svm", 800), ("neural_network", 400)],
)
def test_fig4_runtime_vs_fraction_removed(benchmark, model_name, n_rows):
    reps = REPETITIONS if model_name != "neural_network" else 3
    rows = benchmark.pedantic(_run, args=(model_name, n_rows, reps), rounds=1, iterations=1)
    emit(
        render_table(
            f"Figure 4 ({model_name}): per-query influence runtime (seconds) on German",
            ["removed", *ESTIMATORS],
            rows,
            note="mean over repetitions; retraining is warm-started from θ*",
        ),
        filename=f"fig4_{model_name}.txt",
    )
