"""Closed-pattern mining engine vs the lattice search (the PR-3 bars).

Three claims, measured on the paper's default estimator configuration
(second-order, series variant, smooth evaluation):

1. **Candidate-space reduction** — the miner scores one candidate per
   distinct *extent* (closed patterns only), so it issues strictly fewer
   influence evaluations than the lattice's per-pattern search
   (``num_evaluated`` on both engines; asserted on every workload).
2. **Peak-memory reduction** — the miner's working set is packed
   tidlists: ``O(depth · n/8)`` per search path plus a packed
   ``batch_size × n/8`` evaluation buffer, streamed through the packed
   influence fast path in fixed-size unpack chunks.  The lattice holds
   every level's boolean masks, stacks an (m, n) bool mask matrix per
   batched call, and pays the estimator's float intermediates at full
   batch width.  Peak traced allocations (``tracemalloc``) during the
   search are asserted strictly lower for the miner, and the miner's
   peak is additionally asserted below a *chunk-scale* bound
   (``8 · _PACKED_CHUNK · n`` float64 cells) that is independent of how
   many candidates the search visits — the operational form of "never
   materializes an (m, n) matrix over the frontier": the lattice's peak
   grows with level width, the miner's only with n.
3. **End-to-end parity** — both engines feed ``select_top_k`` and must
   return identical top-k explanations (patterns, supports, and
   responsibilities to 1e-10) on German and Adult.

``--smoke`` shrinks the workloads for CI and keeps the closed-count <
lattice-count assertion — the candidate-space reduction is a structural
property, not a tuning outcome, so it must hold at smoke scale too.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.bench import build_pipeline, emit, render_table
from repro.influence import make_estimator
from repro.influence.estimators import _PACKED_CHUNK
from repro.mining import make_engine
from repro.patterns import select_top_k

TOP_K = 5
SEARCH = dict(support_threshold=0.05, max_predicates=3)


def _workloads(smoke: bool):
    # The (german, 800 rows, depth 3, seed 11) row is the regression anchor
    # for the miner's descent-bar cache: with the one-sided DFS-parent bars
    # it *over*-evaluated the lattice at depth 3 on exactly this workload;
    # the sub-extent bar lookup must keep it at or below the lattice.
    if smoke:
        return [("german", 600, 2, 1), ("adult", 1500, 2, 1), ("german", 800, 3, 11)]
    return [("german", 1000, 3, 1), ("adult", 4000, 3, 1), ("german", 800, 3, 11)]


def _build(dataset: str, rows: int, seed: int = 1):
    bundle = build_pipeline(dataset, "logistic_regression", n_rows=rows, seed=seed)
    estimator = make_estimator(
        "second_order", bundle.model, bundle.X_train, bundle.train.labels,
        bundle.metric, bundle.test_ctx, variant="series", evaluation="smooth",
    )
    return bundle, estimator


def _traced_generate(engine_name: str, table, estimator, max_predicates: int):
    """Run one engine under tracemalloc; returns (result, seconds, peak_bytes)."""
    engine = make_engine(engine_name)
    tracemalloc.start()
    start = time.perf_counter()
    result = engine.generate(
        table, estimator,
        support_threshold=SEARCH["support_threshold"],
        max_predicates=max_predicates,
    )
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _assert_identical_top_k(name, lattice, mined, k=TOP_K):
    top_lattice, _ = select_top_k(lattice, k, containment_threshold=0.5)
    top_mined, _ = select_top_k(mined, k, containment_threshold=0.5)
    assert [s.pattern for s in top_lattice] == [s.pattern for s in top_mined], (
        f"{name}: top-{k} patterns diverged between engines:\n"
        f"  lattice: {[str(s.pattern) for s in top_lattice]}\n"
        f"  mining:  {[str(s.pattern) for s in top_mined]}"
    )
    for a, b in zip(top_lattice, top_mined):
        assert abs(a.responsibility - b.responsibility) < 1e-10, (
            f"{name}: responsibility diverged for {a.pattern}: "
            f"{a.responsibility} vs {b.responsibility}"
        )
        assert abs(a.support - b.support) < 1e-12


def _run(smoke: bool):
    rows = []
    for name, n_rows, max_predicates, seed in _workloads(smoke):
        bundle, estimator = _build(name, n_rows, seed)
        table = bundle.train.table
        n_train = table.num_rows
        # Warm every estimator cache (per-sample grads, factorization) so
        # tracemalloc sees the search, not the shared start-up state.
        estimator.bias_change_batch([[0, 1, 2]])
        lattice, lattice_s, lattice_peak = _traced_generate(
            "lattice", table, estimator, max_predicates
        )
        mined, mined_s, mined_peak = _traced_generate(
            "mining", table, estimator, max_predicates
        )

        # Claim 1 — closed-only candidate space: strictly fewer influence
        # evaluations (this is the CI smoke assertion).  This holds on the
        # seed-11 depth-3 anchor only since the descent-bar cache; keep it
        # strict so a pruning regression re-opening the over-evaluation
        # fails loudly.
        assert mined.num_evaluated < lattice.num_evaluated, (
            f"{name}: mining evaluated {mined.num_evaluated} candidates, "
            f"lattice {lattice.num_evaluated} — no reduction"
        )
        # Claim 2 — packed working set: strictly lower traced peak, and
        # bounded by the fixed unpack chunk rather than the frontier width.
        assert mined_peak < lattice_peak, (
            f"{name}: mining peak {mined_peak / 1e6:.1f}MB not below "
            f"lattice peak {lattice_peak / 1e6:.1f}MB"
        )
        chunk_bound = 8 * _PACKED_CHUNK * n_train * 8  # 8 chunk-wide float64 buffers
        assert mined_peak < chunk_bound, (
            f"{name}: mining peak {mined_peak / 1e6:.1f}MB exceeds the "
            f"chunk-scale bound ({chunk_bound / 1e6:.1f}MB) — an (m, n) "
            f"frontier-sized matrix is leaking into the search"
        )
        # Claim 3 — end-to-end parity of the explanations.
        _assert_identical_top_k(name, lattice, mined)

        rows.append(
            [
                f"{name} (n={n_train}, L={max_predicates}, seed={seed})",
                lattice.num_evaluated,
                mined.num_evaluated,
                f"{1.0 - mined.num_evaluated / lattice.num_evaluated:.1%}",
                f"{lattice_peak / 1e6:.2f}",
                f"{mined_peak / 1e6:.2f}",
                f"{lattice_peak / max(mined_peak, 1):.1f}x",
                f"{lattice_s:.2f}",
                f"{mined_s:.2f}",
                "yes",
            ]
        )
    return rows


def test_candidate_mining(benchmark, smoke):
    rows = benchmark.pedantic(_run, args=(smoke,), rounds=1, iterations=1)
    emit(
        render_table(
            "Closed-pattern mining vs lattice search "
            + ("(smoke)" if smoke else "(second-order series, smooth)"),
            [
                "workload", "lattice evals", "mining evals", "fewer by",
                "lattice peak MB", "mining peak MB", "mem ratio",
                "lattice s", "mining s", "top-k identical",
            ],
            rows,
            note="evals = influence evaluations issued during the search; "
            "peak = tracemalloc during candidate generation (start-up caches "
            "pre-warmed); top-k compared at k=5, scores to 1e-10",
        ),
        filename="candidate_mining.txt",
    )
