"""Figure 3 — accuracy of influence approximations (paper §6.3).

For each model family (LR / NN / SVM) and each fairness metric, remove many
coherent and random subsets of German Credit, compute the ground-truth bias
change by retraining, and report each estimator's mean absolute error
bucketed by the ground-truth influence (as % of original bias) — the exact
layout of Figures 3a-3c.

Expected shape (the paper's takeaway): second-order IF errors are the
smallest, first-order IF in the middle, one-step GD largest; errors grow in
the outer buckets where model parameters change substantially.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import build_pipeline, coherent_subsets, emit, render_table
from repro.fairness import get_metric
from repro.influence import (
    FirstOrderInfluence,
    OneStepGradientDescent,
    RetrainInfluence,
    SecondOrderInfluence,
)

MODELS = ["logistic_regression", "neural_network", "svm"]
METRICS = ["statistical_parity", "equal_opportunity", "predictive_parity"]
NUM_SUBSETS = 24
BUCKETS = [(-200.0, -20.0), (-20.0, 20.0), (20.0, 200.0)]


def _bucket_label(lo: float, hi: float) -> str:
    return f"[{lo:g},{hi:g}]"


def _run_model(model_name: str, n_rows: int = 800) -> list[list[object]]:
    bundle = build_pipeline("german", model_name, n_rows=n_rows, seed=1)
    subsets = coherent_subsets(bundle, NUM_SUBSETS, seed=7)
    labels = bundle.train.labels

    # Ground-truth retrained parameters are metric-independent: compute once.
    retrainer = RetrainInfluence(
        bundle.model, bundle.X_train, labels, get_metric(METRICS[0]), bundle.test_ctx
    )
    retrained = [retrainer.retrained_theta(idx) for idx in subsets]

    rows: list[list[object]] = []
    for metric_name in METRICS:
        metric = get_metric(metric_name)
        original = metric.value(bundle.model, bundle.test_ctx)
        if original == 0.0:
            continue
        estimators = {
            "first_order": FirstOrderInfluence(
                bundle.model, bundle.X_train, labels, metric, bundle.test_ctx,
                evaluation="hard",
            ),
            "second_order": SecondOrderInfluence(
                bundle.model, bundle.X_train, labels, metric, bundle.test_ctx,
                evaluation="hard",
            ),
            "one_step_gd": OneStepGradientDescent(
                bundle.model, bundle.X_train, labels, metric, bundle.test_ctx
            ),
        }
        gt_changes = [
            metric.value(bundle.model, bundle.test_ctx, theta) - original
            for theta in retrained
        ]
        errors: dict[tuple[str, str], list[float]] = {}
        for idx, gt in zip(subsets, gt_changes):
            gt_pct = -100.0 * gt / original  # ground-truth influence in %
            for lo, hi in BUCKETS:
                if lo <= gt_pct < hi:
                    bucket = _bucket_label(lo, hi)
                    break
            else:
                continue
            for est_name, est in estimators.items():
                err = abs(est.bias_change(idx) - gt)
                errors.setdefault((bucket, est_name), []).append(err)
        for lo, hi in BUCKETS:
            bucket = _bucket_label(lo, hi)
            row: list[object] = [metric_name, bucket]
            for est_name in ("first_order", "second_order", "one_step_gd"):
                values = errors.get((bucket, est_name), [])
                row.append(f"{np.mean(values):.4f}" if values else "-")
            row.append(len(errors.get((bucket, "first_order"), [])))
            rows.append(row)
    return rows


@pytest.mark.parametrize("model_name", MODELS)
def test_fig3_influence_estimation_error(benchmark, model_name):
    n_rows = 800 if model_name != "neural_network" else 500
    rows = benchmark.pedantic(_run_model, args=(model_name, n_rows), rounds=1, iterations=1)
    emit(
        render_table(
            f"Figure 3 ({model_name}): influence-estimation absolute error on German",
            ["metric", "gt influence %", "first-order IF", "second-order IF", "one-step GD", "#subsets"],
            rows,
            note="error = |estimated ΔF − retrained ΔF|; buckets follow Fig. 3's x-axis",
        ),
        filename=f"fig3_{model_name}.txt",
    )
