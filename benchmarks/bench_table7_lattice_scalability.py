"""Table 7 — lattice-search scalability in the number of candidates (§6.6).

Generates the top-5 German explanations with an increasing cap on pattern
length (the lattice "level") and reports, per level: cumulative execution
time, the diversity-filtering time, and the number of candidate patterns —
the three rows of the paper's Table 7.

Expected shape: candidate counts and execution time grow steeply with the
level while the filtering step stays in the milliseconds.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench import build_pipeline, emit, render_table
from repro.influence import FirstOrderInfluence
from repro.patterns import compute_candidates, select_top_k

MAX_LEVEL = int(os.environ.get("REPRO_TABLE7_MAX_LEVEL", "5"))


def _run(max_level: int) -> list[list[object]]:
    bundle = build_pipeline("german", "logistic_regression", n_rows=1000, seed=1)
    estimator = FirstOrderInfluence(
        bundle.model, bundle.X_train, bundle.train.labels, bundle.metric, bundle.test_ctx
    )
    rows = []
    for level in range(1, max_level + 1):
        result = compute_candidates(
            bundle.train.table,
            estimator,
            support_threshold=0.05,
            max_predicates=level,
            num_bins=6,
        )
        _, filter_seconds = select_top_k(result.candidates, k=5, containment_threshold=0.5)
        execution = sum(lv.seconds for lv in result.levels)
        rows.append(
            [
                level,
                f"{execution:.2f}",
                f"{filter_seconds * 1000:.0f}",
                result.num_candidates,
                sum(lv.num_merges_tried for lv in result.levels),
            ]
        )
    return rows


def test_table7_lattice_scalability(benchmark):
    rows = benchmark.pedantic(_run, args=(MAX_LEVEL,), rounds=1, iterations=1)
    emit(
        render_table(
            "Table 7: scalability in the number of candidate patterns (German, top-5)",
            ["level", "execution (s)", "filtering (ms)", "#candidates", "#merges tried"],
            rows,
            note="level = max predicates per pattern; FO influence drives the search "
            f"(set REPRO_TABLE7_MAX_LEVEL to change the cap, default {MAX_LEVEL})",
        ),
        filename="table7_lattice_scalability.txt",
    )
    counts = [row[3] for row in rows]
    assert counts == sorted(counts)  # candidate count is monotone in the level
