"""Table 5 — update-based explanations for Adult's top-3 patterns (§6.5).

Expected shape: marital/gender flips dominate; some updates recover the
removal's bias reduction, others fail (the paper's Table 5 likewise shows a
mix of ↓ and ↑ rows).
"""

from __future__ import annotations

import time

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_adult, train_test_split
from repro.models import NeuralNetwork

from bench_table4_updates_german import _update_rows


def _run():
    # Same pipeline as Table 2 — the paper's Table 5 updates the very
    # patterns Table 2 reports.
    data = load_adult(3000, seed=0)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        NeuralNetwork(hidden_units=10, l2_reg=1e-3, seed=0),
        estimator="first_order",
        support_threshold=0.05,
        max_predicates=3,
    )
    gopher.fit(train, test)
    explanations = gopher.explain(k=3, verify=True)
    start = time.perf_counter()
    updates = gopher.explain_updates(explanations, verify=True)
    seconds = time.perf_counter() - start
    return gopher, explanations, updates, seconds


def test_table5_update_explanations_adult(benchmark):
    gopher, explanations, updates, seconds = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = _update_rows(explanations, updates, gopher.original_bias)
    emit(
        render_table(
            f"Table 5: update-based explanations for Adult (tau=5%, {seconds:.1f}s)",
            ["pattern", "support", "Δbias remove", "update", "Δbias update", "vs removal"],
            rows,
            note="v = update reduces bias less than removal, ^ = more (paper's arrows)",
        ),
        filename="table5_updates_adult.txt",
    )
    assert len(updates) == len(explanations)
