"""Table 2 — top-3 explanations for Adult Income (τ = 5%, NN, §6.4).

The paper runs this table with the feed-forward network and notes that
second-order influence underestimates ground truth for NNs; the search
still finds gender/marital-centred patterns that reduce bias.  First-order
influence drives the lattice here (as the paper's §6.4 observation
suggests SO adds little for NNs), and every winner is verified by
retraining.
"""

from __future__ import annotations

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_adult, train_test_split
from repro.models import NeuralNetwork


def _run():
    data = load_adult(3000, seed=0)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        NeuralNetwork(hidden_units=10, l2_reg=1e-3, seed=0),
        metric="statistical_parity",
        estimator="first_order",
        support_threshold=0.05,
        max_predicates=3,
    )
    gopher.fit(train, test)
    result = gopher.explain(k=3, verify=True)
    return gopher, result


def test_table2_top3_explanations_adult(benchmark):
    gopher, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [str(e.pattern), f"{e.support:.2%}", f"{e.gt_responsibility:.1%}"]
        for e in result
    ]
    emit(
        render_table(
            "Table 2: top-3 explanations for Adult "
            f"(tau=5%, neural network, bias={gopher.original_bias:.3f}, "
            f"search={result.search_seconds:.1f}s)",
            ["pattern", "support", "Δbias (retrained)"],
            rows,
            note="gender/marital patterns reflect the household-income artifact",
        ),
        filename="table2_adult.txt",
    )
    assert len(result) >= 1
