"""Table 3 — top-3 explanations for Stop-Question-Frisk (τ = 5%, LR, §6.4).

SQF flips the favorable outcome (not being frisked); expected shape:
race-centred patterns — Black individuals frisked without fitting a
description, and White individuals not frisked despite casing behaviour.
"""

from __future__ import annotations

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_sqf, train_test_split
from repro.models import LogisticRegression


def _run():
    data = load_sqf(5000, seed=0)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        support_threshold=0.05,
        max_predicates=4,
    )
    gopher.fit(train, test)
    result = gopher.explain(k=3, verify=True)
    return gopher, result


def test_table3_top3_explanations_sqf(benchmark):
    gopher, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [str(e.pattern), f"{e.support:.2%}", f"{e.gt_responsibility:.1%}"]
        for e in result
    ]
    emit(
        render_table(
            "Table 3: top-3 explanations for SQF "
            f"(tau=5%, logistic regression, bias={gopher.original_bias:.3f}, "
            f"search={result.search_seconds:.1f}s)",
            ["pattern", "support", "Δbias (retrained)"],
            rows,
            note="favorable outcome = not frisked; positive bias = Whites favored",
        ),
        filename="table3_sqf.txt",
    )
    assert len(result) >= 1
