"""Within-audit amortization: extent caches + shared update context.

`bench_audit_session` measures what a session amortizes *across* queries
when start-up is expensive (model training, factorization, alphabet).
This benchmark pins the complementary case that used to gain almost
nothing (~1.2×): a **cheap-to-train** model under a **deep search**,
where per-query cost is dominated by the influence linear algebra the
search re-runs for every metric.  Candidate masks are metric-independent,
so within one audit the session now pays each distinct extent's GEMMs
and solves exactly once:

* ``g_S = M @ grads`` rows and per-estimator-spec Δθ rows are cached on
  ``ModelArtifacts`` keyed by packed extent bytes — later metrics serve
  every repeated extent from the cache and only re-run the metric-bound
  ∇F dot products;
* ``explain_updates`` views share one metric-independent update context
  (Hessian + η) built once per audit, and the §5 ascent runs all k
  patterns of a query through one batched gradient stream.

The baseline is one fresh ``GopherExplainer`` per metric — explain plus
Section-5 repairs, everything recomputed from scratch.  Claims:

1. **≥1.5× end-to-end** on the 4-metric deep-search German workload
   (logistic regression, ``max_predicates=3``), audit + repairs
   (≥1.3× under ``--smoke`` for shared CI runners).
2. **Identical answers** — patterns, responsibilities, bias changes, and
   update deltas match the fresh baseline to 1e-10.
3. **Amortization accounting** — every distinct extent's Δθ is computed
   exactly once (the miss counter equals the cache population and a
   repeated audit over the same grid recomputes nothing), and exactly
   one ``update_context_builds`` across all repair views.

``--smoke`` shrinks the dataset; every assertion is kept.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import build_pipeline, emit, render_table
from repro.core import AuditSession, GopherExplainer

METRICS = [
    "statistical_parity",
    "equal_opportunity",
    "predictive_parity",
    "average_odds",
]


def _search_config() -> dict:
    # Deep search, default (exact second-order) estimator: the per-query
    # cost is candidate enumeration + per-extent linear algebra, not
    # model training — the regime the extent caches exist for.
    return dict(support_threshold=0.05, max_predicates=3)


def _assert_identical(fresh_answers, audit_result, view_updates):
    for (metric, fresh_set, fresh_updates), query in zip(fresh_answers, audit_result):
        assert query.metric == metric
        assert [e.pattern for e in fresh_set] == [
            e.pattern for e in query.explanations
        ], f"{metric}: explanation patterns diverged"
        for a, b in zip(fresh_set, query.explanations):
            assert abs(a.est_responsibility - b.est_responsibility) < 1e-10
            assert abs(a.est_bias_change - b.est_bias_change) < 1e-10
        amortized = view_updates[metric]
        assert [u.pattern for u in fresh_updates] == [u.pattern for u in amortized]
        for a, b in zip(fresh_updates, amortized):
            np.testing.assert_allclose(b.delta, a.delta, atol=1e-10)
            assert abs(a.est_bias_change - b.est_bias_change) < 1e-10


def _run_workload(rows: int, k: int = 3):
    bundle = build_pipeline("german", "logistic_regression", n_rows=rows, seed=1)
    config = _search_config()
    from repro.bench.workloads import MODELS

    factory = MODELS["logistic_regression"]

    # Baseline: one fresh pipeline per metric, explain + Section-5 repairs.
    fresh_answers = []
    fresh_start = time.perf_counter()
    for metric in METRICS:
        gopher = GopherExplainer(factory(), metric=metric, **config)
        gopher.fit(bundle.train, bundle.test)
        explanations = gopher.explain(k=k, verify=False)
        updates = gopher.explain_updates(explanations, verify=False)
        fresh_answers.append((metric, explanations, updates))
    fresh_seconds = time.perf_counter() - fresh_start

    # Session: one audit over the same metrics, then one repair view each.
    session_start = time.perf_counter()
    session = AuditSession(factory(), **config)
    session.fit(bundle.train, bundle.test)
    result = session.audit(metrics=METRICS, k=k, verify=False)
    view_updates = {}
    for query in result.queries:
        view = session.explainer(metric=query.metric)
        view_updates[query.metric] = view.explain_updates(
            query.explanations, verify=False
        )
    session_seconds = time.perf_counter() - session_start

    _assert_identical(fresh_answers, result, view_updates)
    stats = session.stats
    assert stats["update_context_builds"] == 1, (
        f"update context built {stats['update_context_builds']}× across "
        f"{len(METRICS)} repair views; the shared half failed to amortize"
    )
    assert stats["param_change_cache_hits"] > 0
    return fresh_seconds, session_seconds, result, session


def _assert_one_compute_per_distinct_extent(session: AuditSession):
    """Counter half of claim 3: Δθ is computed once per distinct extent.

    A deep score-guided search legitimately explores some metric-specific
    level-3 candidates (those are genuine misses), but no extent is ever
    computed twice — the miss counter equals the cache population — and a
    repeated audit over the same grid recomputes nothing at all.
    """
    stats = session.stats
    assert stats["param_change_cache_misses"] == len(
        session.artifacts._param_change_cache
    ), "an already-cached extent was recomputed"
    misses = stats["param_change_cache_misses"]
    session.audit(metrics=METRICS, k=3, verify=False)
    assert session.stats["param_change_cache_misses"] == misses, (
        "re-auditing the same grid recomputed Δθ rows"
    )


def test_audit_amortization(benchmark, smoke):
    rows = 400 if smoke else 800
    bar = 1.3 if smoke else 1.5  # shared CI runners are noisy at smoke size

    def run():
        return _run_workload(rows)

    fresh_s, session_s, result, session = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = session.stats
    _assert_one_compute_per_distinct_extent(session)
    speedup = fresh_s / session_s
    emit(
        render_table(
            "Within-audit amortization: 4 metrics, deep search, audit + repairs"
            + (" (smoke)" if smoke else ""),
            [
                "workload", "queries", "fresh (s)", "session (s)",
                "speedup", "Δθ cache hits", "identical",
            ],
            [
                [
                    f"german (n={rows}, lr, lattice, max_predicates=3)",
                    len(result),
                    f"{fresh_s:.2f}",
                    f"{session_s:.2f}",
                    f"{speedup:.1f}x",
                    stats["param_change_cache_hits"],
                    "yes",
                ]
            ],
            note="fresh = one GopherExplainer per metric (explain + Section-5 "
            "repairs from scratch); session = one AuditSession.audit plus one "
            "repair view per metric; identical = same patterns, scores, and "
            "update deltas to 1e-10, with each distinct extent's Δθ computed "
            "exactly once and one update-context build across all views",
        ),
        filename="audit_amortization.txt",
    )
    assert speedup >= bar, (
        f"within-audit amortization speedup fell below {bar}x: {speedup:.2f}x"
    )
