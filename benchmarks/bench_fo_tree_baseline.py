"""§6.4 baseline comparison — Gopher vs the FO-tree competitor.

For each dataset, prints the top-3 explanations of both systems with their
supports and *ground-truth* (retrained) bias reductions.

Expected shape: FO-tree paths have larger supports and usually smaller
verified bias reductions than Gopher's patterns — the paper's qualitative
finding that the tree baseline is coarser and less interesting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FOTreeExplainer
from repro.bench import build_pipeline, emit, render_table
from repro.core import GopherExplainer
from repro.influence import FirstOrderInfluence, RetrainInfluence


def _run(dataset: str, n_rows: int):
    bundle = build_pipeline(dataset, "logistic_regression", n_rows=n_rows, seed=1)
    fo = FirstOrderInfluence(
        bundle.model, bundle.X_train, bundle.train.labels, bundle.metric, bundle.test_ctx
    )
    retrainer = RetrainInfluence(
        bundle.model, bundle.X_train, bundle.train.labels, bundle.metric, bundle.test_ctx
    )

    # Gopher (reusing the already fitted model through the public API).
    gopher = GopherExplainer(
        bundle.model, estimator="second_order", support_threshold=0.05, max_predicates=3
    )
    gopher.fit(bundle.train, bundle.test)
    gopher_result = gopher.explain(k=3, verify=True)

    # FO-tree baseline, verified with the same retraining ground truth.
    tree = FOTreeExplainer(max_depth=3, min_samples_leaf=25).fit(bundle.train.table, fo)
    rows = []
    for e in gopher_result:
        rows.append(
            ["gopher", str(e.pattern), f"{e.support:.2%}", f"{e.gt_responsibility:.1%}"]
        )
    for e in tree.top_k(3):
        mask = np.zeros(bundle.train.num_rows, dtype=bool)
        # Recover node membership from the tree path conditions via support:
        # FOTreeExplanation keeps sizes; for ground truth we re-derive rows
        # by replaying the path on the training table.
        rows.append(
            [
                "fo-tree",
                " ∧ ".join(e.conditions),
                f"{e.support:.2%}",
                f"{retrainer.responsibility(_node_rows(tree, e)):.1%}",
            ]
        )
    return bundle, rows


def _node_rows(tree: FOTreeExplainer, explanation) -> np.ndarray:
    """Find the tree node matching the explanation and return its row ids."""
    for node in tree.tree.nodes():
        if node.depth == explanation.node_depth and node.size == explanation.size:
            if abs(node.total - explanation.total_influence) < 1e-12:
                return node.indices
    raise AssertionError("explanation does not correspond to a tree node")


@pytest.mark.parametrize("dataset,n_rows", [("german", 1000), ("adult", 3000), ("sqf", 5000)])
def test_fo_tree_baseline_comparison(benchmark, dataset, n_rows):
    bundle, rows = benchmark.pedantic(_run, args=(dataset, n_rows), rounds=1, iterations=1)
    emit(
        render_table(
            f"§6.4 baseline: Gopher vs FO-tree on {dataset} "
            f"(bias={bundle.original_bias:.3f})",
            ["system", "explanation", "support", "Δbias (retrained)"],
            rows,
            note="expected: FO-tree paths are coarser (higher support, lower Δbias)",
        ),
        filename=f"fo_tree_{dataset}.txt",
    )
