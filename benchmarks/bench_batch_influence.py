"""Batched vs per-candidate influence throughput (the Figure-5 cost model,
batch edition).

Two experiments:

1. **Subset-evaluation throughput** — for each closed-form estimator, time
   m ``bias_change`` calls in a Python loop against one
   ``bias_change_batch`` call over the same m subsets, for growing batch
   sizes.  The mask matrix is pre-built outside the timed region, so the
   comparison isolates the influence queries themselves.
2. **End-to-end lattice search** — ``compute_candidates`` on the Adult
   workload with ``batch=False`` vs ``batch=True``, asserting the candidate
   sets are identical and reporting the wall-time drop.

Expected shape: batch throughput grows with batch size (one GEMM amortized
over m subsets) while the loop stays flat; first-order at m ≥ 256 clears
5× comfortably, and second-order (series) gains the most because its
per-candidate path rebuilds a (p, p) subset Hessian per query.  The
end-to-end experiment uses the estimators whose per-candidate path does
real work per query (a solve and/or a surrogate evaluation): first-order
under ``linear`` evaluation already collapses each scalar query to a
masked sum over pre-computed point influences, so batching that path wins
on query throughput but not on whole-search wall time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import build_pipeline, emit, render_table, subset_mask_matrix
from repro.influence import make_estimator
from repro.patterns.lattice import compute_candidates
from repro.utils.rng import ensure_rng

BATCH_SIZES = [64, 256, 512]
ESTIMATOR_SETUPS = [
    ("first_order", "linear", {}),
    ("second_order", "smooth", {"variant": "series"}),
    ("one_step_gd", "hard", {}),
]
LATTICE_SETUPS = [
    ("second_order", "smooth", {"variant": "series"}),  # the paper's default
    ("first_order", "smooth", {}),
]


def _random_subsets(num_train: int, count: int, seed: int = 5) -> list[np.ndarray]:
    rng = ensure_rng(seed)
    sizes = rng.integers(10, max(11, num_train // 10), size=count)
    return [np.sort(rng.choice(num_train, size=int(s), replace=False)) for s in sizes]


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _throughput_rows() -> tuple[list[list[object]], dict[tuple[str, int], float]]:
    bundle = build_pipeline("german", "logistic_regression", n_rows=1000, seed=1)
    rows: list[list[object]] = []
    speedups: dict[tuple[str, int], float] = {}
    for name, evaluation, kwargs in ESTIMATOR_SETUPS:
        estimator = make_estimator(
            name,
            bundle.model,
            bundle.X_train,
            bundle.train.labels,
            bundle.metric,
            bundle.test_ctx,
            evaluation=evaluation,
            **kwargs,
        )
        estimator.bias_change_batch([np.arange(10)])  # warm every cache
        for batch_size in BATCH_SIZES:
            subsets = _random_subsets(estimator.num_train, batch_size)
            masks = subset_mask_matrix(subsets, estimator.num_train)
            loop_s = _best_of(lambda: [estimator.bias_change(s) for s in subsets])
            batch_s = _best_of(lambda: estimator.bias_change_batch(masks))
            speedup = loop_s / batch_s
            speedups[(name, batch_size)] = speedup
            rows.append(
                [
                    f"{name} ({evaluation})",
                    batch_size,
                    f"{batch_size / loop_s:,.0f}",
                    f"{batch_size / batch_s:,.0f}",
                    f"{speedup:.1f}x",
                ]
            )
    return rows, speedups


def _lattice_rows() -> list[list[object]]:
    bundle = build_pipeline("adult", "logistic_regression", n_rows=4000, seed=1)
    rows: list[list[object]] = []
    for name, evaluation, kwargs in LATTICE_SETUPS:
        estimator = make_estimator(
            name,
            bundle.model,
            bundle.X_train,
            bundle.train.labels,
            bundle.metric,
            bundle.test_ctx,
            evaluation=evaluation,
            **kwargs,
        )
        start = time.perf_counter()
        loop = compute_candidates(bundle.train.table, estimator, 0.05, 3, batch=False)
        loop_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = compute_candidates(bundle.train.table, estimator, 0.05, 3, batch=True)
        batch_s = time.perf_counter() - start
        identical = [s.pattern for s in loop.candidates] == [
            s.pattern for s in batched.candidates
        ]
        assert identical, f"batched lattice diverged from the loop for {name}"
        assert batch_s < loop_s, (
            f"batched compute_candidates was not faster for {name}: "
            f"{batch_s:.2f}s vs {loop_s:.2f}s"
        )
        rows.append(
            [
                f"{name} ({evaluation})",
                loop.num_candidates,
                f"{loop_s:.2f}",
                f"{batch_s:.2f}",
                f"{loop_s / batch_s:.1f}x",
                "yes" if identical else "NO",
            ]
        )
    return rows


def _run() -> tuple[list[list[object]], dict[tuple[str, int], float], list[list[object]]]:
    rows, speedups = _throughput_rows()
    return rows, speedups, _lattice_rows()


def test_batch_influence_throughput(benchmark):
    rows, speedups, lattice = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        render_table(
            "Batched influence throughput (German, per-candidate loop vs one batch call)",
            ["estimator", "batch", "loop subsets/s", "batch subsets/s", "speedup"],
            rows,
            note="pre-computation excluded; mask matrices built outside the timer",
        ),
        filename="batch_influence_throughput.txt",
    )
    emit(
        render_table(
            "Lattice search end-to-end (Adult, 4000 rows, 3 levels)",
            ["estimator", "candidates", "loop (s)", "batch (s)", "speedup", "identical"],
            lattice,
            note="identical = same candidate patterns from both paths",
        ),
        filename="batch_influence_lattice.txt",
    )
    # The acceptance bar: ≥5× on first-order subset evaluation at m ≥ 256.
    for batch_size in (256, 512):
        assert speedups[("first_order", batch_size)] >= 5.0, (
            f"first-order batch speedup at m={batch_size} fell below 5x: "
            f"{speedups[('first_order', batch_size)]:.1f}x"
        )
