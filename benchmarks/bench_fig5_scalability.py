"""Figure 5 — influence runtime vs dataset size (§6.6).

German Credit is replicated ×50 … ×400 (50k–400k rows; the paper goes to
1.6M — the ×800/×1600 points exceed this container's memory budget, so the
sweep is truncated but spans the same regime) and the per-query time of
each estimator is measured for a fixed 5% subset.

Expected shape: all methods scale roughly linearly; influence functions
stay orders of magnitude faster than retraining; the one-time
pre-computation (per-sample gradients + Hessian factorization) is reported
separately, as in the paper's discussion.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import emit, render_table
from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.utils.rng import ensure_rng

FACTORS = [50, 100, 200, 400]
ESTIMATORS = ["first_order", "second_order", "retrain", "one_step_gd"]


def _run() -> list[list[object]]:
    base = load_german(1000, seed=1)
    train_base, test = train_test_split(base, 0.25, seed=1)
    metric = get_metric("statistical_parity")
    rng = ensure_rng(5)
    rows = []
    for factor in FACTORS:
        train = train_base.replicate(factor)
        encoder = TabularEncoder().fit(train.table)
        X = encoder.transform(train.table)
        model = LogisticRegression(l2_reg=1e-3).fit(X, train.labels)
        ctx = FairnessContext(
            encoder.transform(test.table), test.labels, test.privileged_mask(), 1
        )
        n = len(X)
        idx = rng.choice(n, size=int(0.05 * n), replace=False)
        row: list[object] = [f"{n:,}"]
        for name in ESTIMATORS:
            start = time.perf_counter()
            est = make_estimator(name, model, X, train.labels, metric, ctx)
            est.bias_change(np.arange(10))  # force the pre-computation
            setup_seconds = time.perf_counter() - start
            start = time.perf_counter()
            est.bias_change(idx)
            query_seconds = time.perf_counter() - start
            row.append(f"{query_seconds:.2e}")
            if name == "second_order":
                row_setup = setup_seconds
        row.append(f"{row_setup:.2f}")
        rows.append(row)
    return rows


def test_fig5_runtime_vs_dataset_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        render_table(
            "Figure 5: influence runtime vs dataset size (German replicated, 5% subset)",
            ["rows", *ESTIMATORS, "precompute (s)"],
            rows,
            note="per-query seconds after pre-computation; precompute = SO start-up cost",
        ),
        filename="fig5_scalability.txt",
    )
