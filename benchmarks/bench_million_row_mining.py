"""Million-row mining: projection + compressed tidlists + row blocks.

Two claims about the conditional-database machinery of the closed-pattern
miner (``projection="auto"``), measured on the first-order estimator's
linear packed path — the configuration whose per-extent cost is pure
byte traffic, so representation wins and losses are visible undiluted:

1. **Bounded mining memory** — the traced peak of a whole mining search
   stays under one fixed budget across a 22× sweep of training-set size
   (0.45M → 10M rows).  Everything the search touches is either a fixed
   buffer (the scoring fold's 64 MiB float block, the 32 MiB flush-group
   cap), local to a conditional space (``count/8``-byte tidlists),
   sparse (4–8 bytes × count indices), or row-width-scale state carried
   a handful of times (digest values, emitted representative masks, the
   level-1 packed extents) — tens of bytes per training row in total,
   measured ~0.93 GiB at 10M rows, where one ``(batch, n)`` float
   materialization alone would cost ~20 GiB and a frontier-wide boolean
   mask matrix far more.  Nothing scales with ``n × frontier``.
   Start-up state (model fit, per-sample gradients, packed alphabet) is
   warmed outside the traced region — the claim is about the *search*,
   not the pipeline.
2. **Deep-mining speedup** — at depth 3 under a sparse support threshold
   (τ = 0.3%), ``auto`` beats the flat ``never`` traversal ≥ 2× once the
   table passes a million training rows, with byte-identical candidates
   (pattern, support, and responsibility to 1e-10).  The flat search
   pays ``O(n)`` per deep extent for scoring casts and full-width ANDs;
   the projected search pays ``O(count)`` once the extent lives in a
   conditional space or an index tidlist.

A third row pins the *gate*: below ``_AUTO_DIGEST_MIN_ROWS`` table rows
(sqf at benchmark scale) ``auto`` must run the flat search by
construction — zero projection builds, zero compressions — because on
cache-resident tables the digest machinery can only lose.

``--smoke`` keeps one above-gate synthetic point (450k training rows)
and the sqf gate row, with a relaxed speedup floor for shared CI
runners; the memory budget and the identical-candidates assertions are
structural and stay strict.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.bench import build_pipeline, emit, render_table
from repro.influence import make_estimator
from repro.mining.alphabet import PredicateAlphabet
from repro.mining.closed import mine_closed_candidates

NUM_BINS = 4
BATCH_SIZE = 256

#: One fixed traced-peak budget for every sweep point.  Measured peaks:
#: ~115 MiB at 0.45M training rows, ~369 MiB at 4.2M, ~928 MiB at 10M —
#: tens of bytes per row (digest values, sparse frontier extents,
#: emitted representative masks, the fixed fold/flush buffers).  The
#: budget leaves ~1.4× headroom at the top of the sweep yet sits ~16×
#: below the ~20 GiB a single (batch, n) float materialization would
#: cost at 10M rows — the failure mode the budget exists to catch.
MINING_PEAK_BUDGET_MIB = 1280

#: Speedup floors for never/auto at depth 3, τ = 0.3%.  Measured 2.87×
#: at 4.2M training rows and 3.72× at 10M; the 2× floor is the
#: acceptance bar, not the expectation.  Smoke runs a single sub-million
#: point on a shared runner, so its floor only guards against the
#: machinery *losing* outright.
SPEEDUP_FLOOR = 2.0
SPEEDUP_FLOOR_SMOKE = 1.1

SCALE_SEARCH = dict(support_threshold=0.003, max_predicates=3)
GATE_SEARCH = dict(support_threshold=0.01, max_predicates=3)


def _workloads(smoke: bool):
    """(dataset, n_rows, search, floor) rows; train rows = 0.75 · n_rows.

    ``floor=None`` marks the gate row: auto must equal the flat search
    there (no projection machinery), so no speedup is claimed.
    """
    if smoke:
        return [
            ("synth_scale", 600_000, SCALE_SEARCH, SPEEDUP_FLOOR_SMOKE),
            ("sqf", 24_000, GATE_SEARCH, None),
        ]
    return [
        ("synth_scale", 600_000, SCALE_SEARCH, SPEEDUP_FLOOR_SMOKE),
        ("synth_scale", 5_600_000, SCALE_SEARCH, SPEEDUP_FLOOR),
        ("synth_scale", 13_400_000, SCALE_SEARCH, SPEEDUP_FLOOR),
        ("sqf", 72_000, GATE_SEARCH, None),
    ]


def _build(dataset: str, n_rows: int, support_threshold: float):
    bundle = build_pipeline(dataset, "logistic_regression", n_rows=n_rows, seed=7)
    estimator = make_estimator(
        "first_order", bundle.model, bundle.X_train, bundle.train.labels,
        bundle.metric, bundle.test_ctx,
    )
    # Warm every shared lazy build — per-sample gradients, the packed
    # (and, past a million rows, block-streamed) tidlist matrix — so the
    # traced region below sees the search and only the search.
    estimator.warm()
    alphabet = PredicateAlphabet(
        bundle.train.table, support_threshold, NUM_BINS, None, packed=True
    ).warm()
    return bundle, estimator, alphabet


def _mine(table, estimator, alphabet, search, mode):
    start = time.perf_counter()
    result = mine_closed_candidates(
        table, estimator,
        support_threshold=search["support_threshold"],
        max_predicates=search["max_predicates"],
        alphabet=alphabet, projection=mode, batch_size=BATCH_SIZE,
    )
    return result, time.perf_counter() - start


def _signature(result):
    return [
        (str(stats.pattern), round(stats.support, 12), round(stats.responsibility, 10))
        for stats in result.candidates
    ]


def _run(smoke: bool):
    rows = []
    for dataset, n_rows, search, floor in _workloads(smoke):
        bundle, estimator, alphabet = _build(
            dataset, n_rows, search["support_threshold"]
        )
        table = bundle.train.table
        never, never_s = _mine(table, estimator, alphabet, search, "never")
        auto, auto_s = _mine(table, estimator, alphabet, search, "auto")

        # Identical candidates — representation must never leak into
        # results, whichever side of the gate the workload is on.
        assert _signature(never) == _signature(auto), (
            f"{dataset} n={table.num_rows}: auto and never candidates diverged"
        )

        projections = alphabet._stats["projection_builds"]
        if floor is None:
            # Gate row: the auto search must have been the flat search.
            assert projections == 0, (
                f"{dataset} n={table.num_rows}: {projections} projection "
                f"builds below the auto gate — _AUTO_DIGEST_MIN_ROWS is "
                f"not being honored"
            )
        else:
            assert projections > 0, (
                f"{dataset} n={table.num_rows}: auto never projected — the "
                f"sweep is not exercising the conditional-database path"
            )
            assert never_s / auto_s >= floor, (
                f"{dataset} n={table.num_rows}: speedup "
                f"{never_s / auto_s:.2f}x below the {floor:.1f}x floor "
                f"(never {never_s:.2f}s, auto {auto_s:.2f}s)"
            )

        # Traced peak of a full auto search, warm caches: the memory the
        # mining layer itself is responsible for.
        tracemalloc.start()
        mine_closed_candidates(
            table, estimator,
            support_threshold=search["support_threshold"],
            max_predicates=search["max_predicates"],
            alphabet=alphabet, projection="auto", batch_size=BATCH_SIZE,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_mib = peak / 2**20
        assert peak_mib < MINING_PEAK_BUDGET_MIB, (
            f"{dataset} n={table.num_rows}: mining peak {peak_mib:.1f} MiB "
            f"exceeds the fixed {MINING_PEAK_BUDGET_MIB} MiB budget — "
            f"something in the search scales with n × frontier again"
        )

        rows.append(
            [
                f"{dataset} (train={table.num_rows:,}, "
                f"tau={search['support_threshold']:.3f})",
                f"{never_s:.2f}",
                f"{auto_s:.2f}",
                f"{never_s / auto_s:.2f}x"
                + ("" if floor is not None else " (gate)"),
                f"{peak_mib:.1f}",
                len(auto.candidates),
                "yes" if projections else "no",
                "yes",
            ]
        )
        del bundle, estimator, alphabet, never, auto
    return rows


def test_million_row_mining(benchmark, smoke):
    rows = benchmark.pedantic(_run, args=(smoke,), rounds=1, iterations=1)
    emit(
        render_table(
            "Million-row mining: conditional projection + compressed tidlists "
            + ("(smoke)" if smoke else "(first-order linear, depth 3)"),
            [
                "workload", "never s", "auto s", "speedup",
                "auto peak MiB", "candidates", "projected", "identical",
            ],
            rows,
            note=f"peak = tracemalloc over one full auto search, start-up "
            f"caches warmed outside the traced region; fixed budget "
            f"{MINING_PEAK_BUDGET_MIB} MiB at every n (train rows span "
            f"0.45M-10M full / one 0.45M point smoke); the sqf row pins "
            f"the _AUTO_DIGEST_MIN_ROWS gate: auto == flat search below "
            f"it, zero projections, ratio ~1x by construction",
        ),
        filename="million_row_mining.txt",
    )
