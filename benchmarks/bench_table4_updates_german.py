"""Table 4 — update-based explanations for German's top-3 patterns (§6.5).

For each removal explanation, search (projected gradient descent, Section 5)
for the homogeneous update of the covered subset that maximally reduces
bias, verify by retraining on the updated data, and print the paper's
layout: original pattern, the update, and whether the update reduces bias
by less (↓) or more (↑) than deleting the subset would.

Expected shape: updates flip the protected/gender attributes of the top
patterns (Age≥45∧Female → younger/male) and recover much of the removal's
bias reduction.
"""

from __future__ import annotations

import time

from repro.bench import emit, render_table
from repro.core import GopherExplainer
from repro.datasets import load_german, train_test_split
from repro.models import LogisticRegression


def _run():
    data = load_german(1000, seed=1)
    train, test = train_test_split(data, 0.25, seed=1)
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        estimator="second_order",
        support_threshold=0.05,
        max_predicates=3,
    )
    gopher.fit(train, test)
    explanations = gopher.explain(k=3, verify=True)
    start = time.perf_counter()
    updates = gopher.explain_updates(explanations, verify=True)
    seconds = time.perf_counter() - start
    return gopher, explanations, updates, seconds


def _update_rows(explanations, updates, original_bias):
    rows = []
    for e, u in zip(explanations, updates):
        change = ", ".join(f"{f}: {a}->{b}" for f, (a, b) in sorted(u.changed_features.items()))
        arrow = "v(less)" if u.direction_vs_removal == "less" else "^(more)"
        rows.append(
            [
                str(e.pattern),
                f"{e.support:.2%}",
                f"{e.gt_responsibility:.1%}",
                change or "(no change found)",
                f"{-u.gt_bias_change / original_bias:.1%}",
                arrow,
            ]
        )
    return rows


def test_table4_update_explanations_german(benchmark):
    gopher, explanations, updates, seconds = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = _update_rows(explanations, updates, gopher.original_bias)
    emit(
        render_table(
            f"Table 4: update-based explanations for German (tau=5%, {seconds:.1f}s)",
            ["pattern", "support", "Δbias remove", "update", "Δbias update", "vs removal"],
            rows,
            note="v = update reduces bias less than removal, ^ = more (paper's arrows)",
        ),
        filename="table4_updates_german.txt",
    )
    assert any(u.gt_bias_change < 0 for u in updates)
