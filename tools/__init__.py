"""Developer tooling that ships with the repository (no install required).

Import as ``tools.<name>`` from the repository root; ``python -m
tools.reprolint src`` is the supported entry point for the shared-state
contract analyzer.
"""
