"""The parsed-project model reprolint's rules run against.

Everything is plain stdlib ``ast``: a :class:`Project` owns one
:class:`ModuleInfo` per parsed file, with classes, methods, module
functions, import aliases, and the inheritance links that can be resolved
*within* the parsed tree.  On top of that it offers the one non-local
analysis every contract rule needs — a conservative (over-approximating)
call-graph reachability from a set of root functions.

Resolution strategy
-------------------
Python call targets cannot be resolved exactly without running the
program, so the model deliberately over-approximates by *name*:

* ``self.m(...)`` resolves to every method named ``m`` in the enclosing
  class's family (ancestors and descendants linked by base-class names);
* ``obj.m(...)`` resolves to every method named ``m`` in every parsed
  class — unless the attribute chain is rooted at an alias of an external
  module (``np``, ``linalg``, ``time`` …), which cannot be a project
  method;
* ``f(...)`` resolves through the module's own functions, its imports,
  and class constructors (``__init__`` / ``__post_init__``);
* a bare attribute *load* whose name matches a known ``@property``
  resolves to that property's getter — lazy cache builds hide behind
  property reads, and missing them would miss exactly the writes the
  read-path rule exists to find.

Over-approximation errs toward *reporting* a shared-state write, which is
the correct direction for a race analyzer: a false reachability edge
costs a pragma with a written justification, a missed one costs a data
race under the worker pool.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Names that never denote project methods even when a parsed class
#: happens to define an attribute of the same name.
_DUNDER_CALLS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: "ModuleInfo"
    cls: "ClassInfo | None"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_property: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.cls.name}.{self.name}"
        return self.name

    @property
    def path(self) -> Path:
        return self.module.path

    def __hash__(self) -> int:  # identity semantics for worklists
        return id(self.node)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionInfo) and other.node is self.node


@dataclass
class ClassInfo:
    """One class definition with its directly-declared methods."""

    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def __hash__(self) -> int:
        return id(self.node)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassInfo) and other.node is self.node


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str
    tree: ast.Module
    source: str
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local alias -> dotted import target (``np`` -> ``numpy``).
    imports: dict[str, str] = field(default_factory=dict)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for ``path``, stripping ``src``-style layout roots."""
    rel = path.relative_to(root) if path.is_relative_to(root) else path
    parts = list(rel.parts)
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


class Project:
    """All parsed modules plus the cross-module indexes rules query."""

    def __init__(self, files: list[Path], root: Path | None = None) -> None:
        self.root = root if root is not None else Path.cwd()
        self.modules: dict[str, ModuleInfo] = {}
        for path in files:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
            module = ModuleInfo(
                path=path, name=_module_name(path, self.root), tree=tree, source=source
            )
            self._index_module(module)
            self.modules[module.name] = module
        # Cross-module indexes.
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.properties_by_name: dict[str, list[FunctionInfo]] = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for fn in cls.methods.values():
                    self.methods_by_name.setdefault(fn.name, []).append(fn)
                    if fn.is_property:
                        self.properties_by_name.setdefault(fn.name, []).append(fn)
        #: Top-level package names of the parsed tree ("repro", …): imports
        #: resolving outside these are external and break method matching.
        self.internal_packages = {name.split(".")[0] for name in self.modules}
        self._family_cache: dict[int, set[ClassInfo]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for dec in node.decorator_list:
            if isinstance(dec, ast.Name) and dec.id in ("property", "cached_property"):
                return True
            if isinstance(dec, ast.Attribute) and dec.attr == "cached_property":
                return True
        return False

    def _index_module(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(module, node)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    module=module,
                    node=node,
                    base_names=[self._base_name(b) for b in node.bases],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls.methods[item.name] = FunctionInfo(
                            module=module,
                            cls=cls,
                            node=item,
                            is_property=self._is_property(item),
                        )
                module.classes[cls.name] = cls
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[node.name] = FunctionInfo(module=module, cls=None, node=node)

    @staticmethod
    def _base_name(base: ast.expr) -> str:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        if isinstance(base, ast.Subscript):  # Generic[...] style bases
            return Project._base_name(base.value)
        return ""

    @staticmethod
    def _index_import(module: ModuleInfo, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name
        else:
            base = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # -- class hierarchy ------------------------------------------------
    def subclasses(self, names: set[str]) -> set[ClassInfo]:
        """All parsed classes whose name is in ``names`` or that (transitively)
        inherit from one that is — matched by base-class *name*."""
        matched: set[ClassInfo] = set()
        known = set(names)
        changed = True
        while changed:
            changed = False
            for classes in self.classes_by_name.values():
                for cls in classes:
                    if cls in matched:
                        continue
                    if cls.name in known or any(b in known for b in cls.base_names):
                        matched.add(cls)
                        known.add(cls.name)
                        changed = True
        return matched

    def family(self, cls: ClassInfo) -> set[ClassInfo]:
        """``cls`` plus every ancestor and descendant reachable by name links."""
        cached = self._family_cache.get(id(cls))
        if cached is not None:
            return cached
        out = {cls}
        # ancestors
        frontier = list(cls.base_names)
        seen = set(frontier)
        while frontier:
            base = frontier.pop()
            for parent in self.classes_by_name.get(base, []):
                if parent not in out:
                    out.add(parent)
                    for grand in parent.base_names:
                        if grand not in seen:
                            seen.add(grand)
                            frontier.append(grand)
        # descendants (of anything already in the family)
        changed = True
        while changed:
            changed = False
            names = {c.name for c in out}
            for classes in self.classes_by_name.values():
                for candidate in classes:
                    if candidate not in out and any(b in names for b in candidate.base_names):
                        out.add(candidate)
                        changed = True
        self._family_cache[id(cls)] = out
        return out

    # -- call-target resolution -----------------------------------------
    def _is_external_root(self, node: ast.expr, module: ModuleInfo) -> bool:
        """True when an attribute chain is rooted at an external-module alias."""
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            target = module.imports.get(node.id)
            if target is not None:
                return target.split(".")[0] not in self.internal_packages
        return False

    def resolve_function_name(self, name: str, module: ModuleInfo) -> list[FunctionInfo]:
        """Targets of a bare-name call ``name(...)`` from ``module``."""
        out: list[FunctionInfo] = []
        if name in module.functions:
            out.append(module.functions[name])
        for cls in self._classes_named(name, module):
            for ctor in ("__init__", "__post_init__"):
                fn = self._family_method(cls, ctor)
                if fn is not None:
                    out.append(fn)
        target = module.imports.get(name)
        if target is not None and target.split(".")[0] in self.internal_packages:
            mod_name, _, leaf = target.rpartition(".")
            imported = self.modules.get(mod_name)
            if imported is not None and leaf in imported.functions:
                out.append(imported.functions[leaf])
        return out

    def _classes_named(self, name: str, module: ModuleInfo) -> list[ClassInfo]:
        if name in module.classes:
            return [module.classes[name]]
        target = module.imports.get(name)
        if target is not None:
            if target.split(".")[0] not in self.internal_packages:
                return []
            leaf = target.rpartition(".")[2]
            return self.classes_by_name.get(leaf, [])
        return self.classes_by_name.get(name, [])

    def _family_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for member in self.family(cls):
            if name in member.methods:
                return member.methods[name]
        return None

    def callees(self, fn: FunctionInfo) -> list[FunctionInfo]:
        """Every project function ``fn`` may call (over-approximated)."""
        out: list[FunctionInfo] = []
        module = fn.module
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if self._is_external_root(func, module):
                        continue
                    if func.attr in _DUNDER_CALLS:
                        continue
                    if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
                        if fn.cls is not None:
                            out.extend(
                                member.methods[func.attr]
                                for member in self.family(fn.cls)
                                if func.attr in member.methods
                            )
                            continue
                    # ClassName.method(...) or obj.method(...)
                    if isinstance(func.value, ast.Name):
                        for cls in self._classes_named(func.value.id, module):
                            target = self._family_method(cls, func.attr)
                            if target is not None:
                                out.append(target)
                                break
                        else:
                            out.extend(self.methods_by_name.get(func.attr, []))
                        continue
                    out.extend(self.methods_by_name.get(func.attr, []))
                elif isinstance(func, ast.Name):
                    out.extend(self.resolve_function_name(func.id, module))
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                # Bare attribute loads reach property getters (lazy builds).
                if node.attr not in self.properties_by_name:
                    continue
                if self._is_external_root(node, module):
                    continue
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                    and fn.cls is not None
                ):
                    out.extend(
                        member.methods[node.attr]
                        for member in self.family(fn.cls)
                        if node.attr in member.methods and member.methods[node.attr].is_property
                    )
                else:
                    out.extend(self.properties_by_name.get(node.attr, []))
        return out

    def reachable_from(
        self, roots: list[FunctionInfo]
    ) -> dict[FunctionInfo, FunctionInfo | None]:
        """Predecessor map of every function reachable from ``roots``.

        ``result[fn]`` is the function through which ``fn`` was first
        reached (``None`` for a root) — enough to render a human-readable
        "via" chain in findings.
        """
        pred: dict[FunctionInfo, FunctionInfo | None] = {fn: None for fn in roots}
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in self.callees(current):
                if callee not in pred:
                    pred[callee] = current
                    frontier.append(callee)
        return pred

    @staticmethod
    def chain(pred: dict[FunctionInfo, FunctionInfo | None], fn: FunctionInfo) -> str:
        """Render the reach chain of ``fn`` back to its root, newest first."""
        parts: list[str] = []
        node: FunctionInfo | None = pred.get(fn)
        while node is not None and len(parts) < 4:
            parts.append(node.qualname)
            node = pred.get(node)
        return " <- ".join(parts) if parts else "declared read root"


def collect_python_files(paths: list[Path]) -> list[Path]:
    """Every ``*.py`` file under the given files/directories, sorted."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)
