"""The repo-specific contracts reprolint checks.

A :class:`ContractSet` is the analyzer's entire knowledge of the
repository: which classes hold *shared* state (one instance serves many
queries — the future worker pool's common ground), which methods form the
declared read API, which methods are *allowed* to build or patch caches
(and which ``stats`` counter each must bump), where factorizations are
allowed to live, and which paths carry fairness-metric arithmetic.

The rules take the contract set as an argument, so fixture tests inject
tiny synthetic contracts and the CLI injects :data:`REPRO_CONTRACTS` —
the registry below, which is the authoritative list of this repo's cache
entry points.  Adding a cache elsewhere in the tree without registering
it here is exactly what RL001 exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BuildContract:
    """One registered cache build/patch entry point.

    ``counter`` names the stats key the method must bump (RL002); ``None``
    means the method is exempt from counter discipline and ``reason`` must
    say why.  ``stats_attr`` is the attribute holding the counter dict
    (``stats`` for most classes, ``_stats`` for the alphabet, whose dict is
    owned by the enclosing cache).  ``kind`` distinguishes lazy builds from
    edit-time patches — informational today, it lets future rules treat
    the two differently.
    """

    counter: str | None
    stats_attr: str = "stats"
    kind: str = "build"  # "build" | "edit"
    reason: str = ""


@dataclass(frozen=True)
class ContractSet:
    """Everything the rules know about one codebase."""

    #: Class names holding cross-query shared state.  Subclasses (matched
    #: by base-class name, transitively) inherit shared-class status.
    shared_classes: frozenset[str] = frozenset()
    #: The declared read API: (class name, method name) pairs — class name
    #: ``""`` declares a module-level function root, matched by
    #: (module suffix, function name).
    read_roots: tuple[tuple[str, str], ...] = ()
    #: (class name, method name) -> BuildContract.
    build_methods: dict[tuple[str, str], BuildContract] = field(default_factory=dict)
    #: Path suffixes where linalg factorizations of Hessian-shaped state
    #: are allowed (RL004).
    factorization_authority: tuple[str, ...] = ("influence/hessian.py",)
    #: Regex an argument must match to count as Hessian-shaped (RL004).
    hessian_pattern: str = r"(?i)hess"
    #: Path fragments whose divisions RL005 audits.
    metric_paths: tuple[str, ...] = ("fairness/",)
    #: Regex recognizing an epsilon guard in a denominator (RL005).
    eps_pattern: str = r"(?i)(^|[^a-z])(_?eps(ilon)?)([^a-z]|$)"
    #: Batch query methods whose packed form must thread num_rows (RL003).
    packed_batch_methods: frozenset[str] = frozenset(
        {"param_change_batch", "bias_change_batch", "responsibility_batch"}
    )


#: The authoritative contract set of this repository.
REPRO_CONTRACTS = ContractSet(
    shared_classes=frozenset(
        {
            "ModelArtifacts",
            "HessianSolver",
            "PredicateAlphabet",
            "AlphabetCache",
            "AuditSession",
            "FairnessContext",
            # Estimators are shared in the hammer/worker-pool sense: one
            # estimator object serves many batch queries.  Subclass
            # expansion pulls in FirstOrder/SecondOrder/OneStepGD/Retrain.
            "InfluenceEstimator",
        }
    ),
    read_roots=(
        # The estimator query surface (inherited by every estimator family).
        ("InfluenceEstimator", "param_change"),
        ("InfluenceEstimator", "param_change_batch"),
        ("InfluenceEstimator", "bias_change"),
        ("InfluenceEstimator", "bias_change_batch"),
        ("InfluenceEstimator", "responsibility"),
        ("InfluenceEstimator", "responsibility_batch"),
        ("InfluenceEstimator", "subset_grad_sum"),
        ("FirstOrderInfluence", "point_influences"),
        # The session query surface.
        ("AuditSession", "context_for"),
        ("AuditSession", "audit"),
        ("AuditSession", "report"),
        ("AuditSession", "estimator_for"),
        ("AuditSession", "explainer"),
        ("AuditSession", "stats"),
        # Delta replay: read-only re-scoring of a recorded search.
        ("", "repro.core.delta.replay_search"),
        ("", "repro.core.delta.replay_geometry"),
    ),
    build_methods={
        # -- ModelArtifacts: the per-model cache bundle --------------------
        ("ModelArtifacts", "per_sample_grads"): BuildContract("per_sample_grad_builds"),
        ("ModelArtifacts", "hessian"): BuildContract("hessian_builds"),
        ("ModelArtifacts", "solver"): BuildContract("hessian_factorizations"),
        ("ModelArtifacts", "hessian_factors"): BuildContract("rank_one_factor_builds"),
        ("ModelArtifacts", "exact_rotation"): BuildContract("exact_rotation_builds"),
        ("ModelArtifacts", "auto_learning_rate"): BuildContract("learning_rate_builds"),
        ("ModelArtifacts", "gradient_sums"): BuildContract("gradient_sum_cache_misses"),
        ("ModelArtifacts", "cached_param_changes"): BuildContract(
            "param_change_cache_misses"
        ),
        ("ModelArtifacts", "update_search_state"): BuildContract("update_context_builds"),
        ("ModelArtifacts", "enable_extent_caching"): BuildContract(
            None,
            reason="session start-up switch flipped by AuditSession.fit before the "
            "instance is shared; bare estimators never call it",
        ),
        ("ModelArtifacts", "apply_edit"): BuildContract("edits", kind="edit"),
        ("ModelArtifacts", "warm"): BuildContract(
            None, reason="eager driver: every build it triggers is counted by its own entry"
        ),
        # -- HessianSolver -------------------------------------------------
        ("HessianSolver", "eigendecomposition"): BuildContract("eigendecompositions"),
        ("HessianSolver", "factor"): BuildContract(
            None,
            reason="lazy Cholesky materialization for explicit factor consumers; "
            "eigendecomposition-mode solvers never touch it on the read path",
        ),
        ("HessianSolver", "_factorize"): BuildContract(
            None, reason="constructor helper, called from __init__ only"
        ),
        ("HessianSolver", "from_eigendecomposition"): BuildContract(
            None, reason="alternate constructor: writes initialize a brand-new instance"
        ),
        # -- PredicateAlphabet / AlphabetCache ----------------------------
        ("PredicateAlphabet", "miner_items"): BuildContract(
            "tidlist_builds", stats_attr="_stats"
        ),
        ("PredicateAlphabet", "pair_skeleton"): BuildContract(
            "skeleton_builds", stats_attr="_stats"
        ),
        ("PredicateAlphabet", "apply_edit"): BuildContract(
            "tidlist_patches", stats_attr="_stats", kind="edit"
        ),
        ("PredicateAlphabet", "_build"): BuildContract(
            None, reason="constructor helper, called from __init__ only"
        ),
        ("PredicateAlphabet", "_build_packed"): BuildContract(
            "block_streams", stats_attr="_stats"
        ),
        ("PredicateAlphabet", "record_mining_counters"): BuildContract(
            "projection_builds", stats_attr="_stats"
        ),
        ("PredicateAlphabet", "_filter_entries"): BuildContract(
            None, reason="constructor/edit helper of the counted _build/apply_edit entries"
        ),
        ("PredicateAlphabet", "warm"): BuildContract(
            None, reason="eager driver: every build it triggers is counted by its own entry"
        ),
        ("AlphabetCache", "get"): BuildContract("alphabet_builds"),
        ("AlphabetCache", "apply_edit"): BuildContract("alphabet_patches", kind="edit"),
        # -- Estimators ----------------------------------------------------
        ("InfluenceEstimator", "grad_f"): BuildContract(
            None,
            reason="per-query ∇F memo, eagerly built by warm(); idempotent value, so a "
            "racing double-build is benign under the GIL",
        ),
        ("InfluenceEstimator", "warm"): BuildContract(
            None, reason="eager driver: every build it triggers is counted by its own entry"
        ),
        ("FirstOrderInfluence", "point_influences"): BuildContract(
            None,
            reason="per-query influence memo, eagerly built by warm(); idempotent value, "
            "so a racing double-build is benign under the GIL",
        ),
        # -- Session -------------------------------------------------------
        ("AuditSession", "fit"): BuildContract(
            None,
            reason="the session's one-time start-up entry: everything it builds runs "
            "before the session instance is shared with any reader",
        ),
        ("AuditSession", "warm"): BuildContract(
            None, reason="eager driver: every build it triggers is counted by its own entry"
        ),
        ("AuditSession", "audit"): BuildContract(
            None,
            reason="read path except for the last-audit bookmark delta_audit diffs "
            "against; both bookmark writes happen under the session lock",
        ),
    },
)
