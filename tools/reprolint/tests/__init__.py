"""Fixture tests for the reprolint analyzer (run under plain pytest)."""
