"""CLI exit codes and the whole-tree integration run.

``test_src_is_clean`` is the analyzer's standing gate: the real ``src``
tree, under the real :data:`REPRO_CONTRACTS`, must produce zero findings
— every surviving write suppressed only by a justified pragma.  A new
lazy cache added without registering it (or a pragma without a reason)
fails this test before it fails in CI.
"""

from pathlib import Path

from tools.reprolint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[3]
FIXTURES = Path(__file__).parent / "fixtures"


def test_src_is_clean(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src"]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    # Under the real contracts the RL004 fixture still violates RL004
    # (its authority is influence/hessian.py, not the fixture).
    assert main([str(FIXTURES / "rl004_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RL004" in out


def test_missing_path_exits_two(capsys):
    assert main(["no/such/path.py"]) == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in out
