"""Pragma semantics: suppression, strictness, and dead-pragma detection."""

from pathlib import Path

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import run_analysis
from tools.reprolint.pragmas import parse_pragmas
from tools.reprolint.rules.rl004_factorization import RULE as RL004

FIXTURES = Path(__file__).parent / "fixtures"


def rl004(name: str) -> list:
    return run_analysis([FIXTURES / name], contracts=ContractSet(), rules=[RL004])


def test_justified_pragmas_suppress_standalone_and_trailing():
    assert rl004("pragma_ok.py") == []


def test_malformed_pragmas_are_findings_and_suppress_nothing():
    findings = rl004("pragma_errors.py")
    rl000 = [f for f in findings if f.rule == "RL000"]
    surviving = [f for f in findings if f.rule == "RL004"]
    assert len(rl000) == 3
    messages = [f.message for f in rl000]
    assert any("no '-- reason'" in m for m in messages)
    assert any("unknown rule id" in m for m in messages)
    assert any("lists no rules" in m for m in messages)
    # None of the broken pragmas bought a suppression.
    assert len(surviving) == 3


def test_unused_pragma_is_a_finding():
    findings = rl004("pragma_unused.py")
    assert len(findings) == 1
    assert findings[0].rule == "RL000"
    assert "unused pragma" in findings[0].message


def test_parse_pragmas_coverage_forms(tmp_path):
    source = (
        "x = 1  # reprolint: ignore[RL001] -- trailing covers its own line\n"
        "# reprolint: ignore[RL002, RL003] -- standalone covers the next code line\n"
        "\n"
        "y = 2\n"
        "# reprolint: file-ignore[RL004] -- whole-file suppression\n"
    )
    pragmas, errors = parse_pragmas(tmp_path / "f.py", source)
    assert errors == []
    trailing, standalone, file_ignore = pragmas
    assert trailing.covers == (1,) and trailing.rules == ("RL001",)
    assert standalone.covers == (2, 4) and standalone.rules == ("RL002", "RL003")
    assert file_ignore.kind == "file-ignore" and file_ignore.covers == ()
