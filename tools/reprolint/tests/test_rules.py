"""Each rule against its positive (seeded-violation) and negative fixtures.

Every positive test here fails if the rule stops seeing its seeded
violation — the acceptance gate for the analyzer itself.  The contract
sets are tiny synthetic registries, so the fixtures stay self-contained
and the tests exercise the injection path the CLI uses with
:data:`REPRO_CONTRACTS`.
"""

from pathlib import Path

from tools.reprolint.contracts import BuildContract, ContractSet
from tools.reprolint.engine import run_analysis
from tools.reprolint.rules.rl001_read_purity import RULE as RL001
from tools.reprolint.rules.rl002_counters import RULE as RL002
from tools.reprolint.rules.rl003_packed import RULE as RL003
from tools.reprolint.rules.rl004_factorization import RULE as RL004
from tools.reprolint.rules.rl005_nan import RULE as RL005

FIXTURES = Path(__file__).parent / "fixtures"


def analyze(name: str, contracts: ContractSet, rule) -> list:
    return run_analysis([FIXTURES / name], contracts=contracts, rules=[rule])


# -- RL001 ---------------------------------------------------------------

RL001_CONTRACTS = ContractSet(
    shared_classes=frozenset({"SharedCache"}),
    read_roots=(("SharedCache", "get"),),
    build_methods={("SharedCache", "build"): BuildContract("builds")},
)


def test_rl001_flags_seeded_read_path_writes():
    findings = analyze("rl001_bad.py", RL001_CONTRACTS, RL001)
    assert len(findings) == 3
    messages = [f.message for f in findings]
    assert any("SharedCache.get assigns self._value" in m for m in messages)
    assert any("SharedCache._refresh mutates self.version" in m for m in messages)
    assert any("DerivedCache.get assigns self._hits" in m for m in messages)
    # The helper finding must explain *how* the read API reaches it.
    (refresh,) = [f for f in findings if "_refresh" in f.message]
    assert "via" in refresh.message and "get" in refresh.message


def test_rl001_clean_when_writes_live_in_registered_build():
    assert analyze("rl001_good.py", RL001_CONTRACTS, RL001) == []


# -- RL002 ---------------------------------------------------------------

RL002_BAD = ContractSet(
    build_methods={
        ("Registry", "build"): BuildContract("builds"),
        ("Registry", "patch"): BuildContract("patches", kind="edit"),
        ("Registry", "vanished"): BuildContract("ghost_builds"),
        ("Registry", "helper"): BuildContract(None),
    },
)

RL002_GOOD = ContractSet(
    build_methods={
        ("Registry", "build"): BuildContract("builds"),
        ("Registry", "helper"): BuildContract(None, reason="plain accessor"),
    },
)


def test_rl002_flags_missing_bump_drift_and_reasonless_exemption():
    findings = analyze("rl002_bad.py", RL002_BAD, RL002)
    assert len(findings) == 4
    messages = [f.message for f in findings]
    assert any('never bumps self.stats["builds"]' in m for m in messages)
    assert any("registry drift: Registry.vanished" in m for m in messages)
    assert any("exempt from counter discipline without" in m for m in messages)
    assert any('counter "patches" of Registry.patch is not declared' in m for m in messages)


def test_rl002_clean_when_counter_bumped_and_declared():
    assert analyze("rl002_good.py", RL002_GOOD, RL002) == []


RL002_REGISTRY = ContractSet(
    build_methods={
        ("Registry", "build"): BuildContract("builds"),
        ("Registry", "broken"): BuildContract("never_bumped"),
    },
)


def test_rl002_accepts_registry_backed_inc_and_statsview_declaration():
    findings = analyze("rl002_registry.py", RL002_REGISTRY, RL002)
    # build() is clean: stats.inc("builds") bumps, StatsView({...}) declares.
    assert not any("Registry.build" in f.message for f in findings)
    messages = [f.message for f in findings]
    assert any('never bumps self.stats["never_bumped"]' in m for m in messages)
    assert any('counter "never_bumped" of Registry.broken is not declared' in m for m in messages)
    assert len(findings) == 2


# -- RL003 ---------------------------------------------------------------


def test_rl003_flags_packed_batches_without_num_rows():
    findings = analyze("rl003_bad.py", ContractSet(), RL003)
    assert len(findings) == 3
    messages = [f.message for f in findings]
    assert any("bias_change_batch" in m and "num_rows" in m for m in messages)
    assert any("responsibility_batch" in m for m in messages)
    assert any("unpackbits without count=" in m for m in messages)


def test_rl003_clean_when_row_counts_are_threaded():
    assert analyze("rl003_good.py", ContractSet(), RL003) == []


# -- RL004 ---------------------------------------------------------------

RL004_CONTRACTS = ContractSet(factorization_authority=("rl004_authority.py",))


def test_rl004_flags_linalg_on_hessians_outside_authority():
    findings = analyze("rl004_bad.py", RL004_CONTRACTS, RL004)
    assert len(findings) == 2
    messages = [f.message for f in findings]
    assert any("linalg.cholesky" in m and "hessian" in m for m in messages)
    assert any("linalg.eigh" in m and "hess" in m for m in messages)
    # The covariance factorization is deliberately out of scope.
    assert not any("covariance" in m for m in messages)


def test_rl004_authority_file_is_exempt():
    assert analyze("rl004_authority.py", RL004_CONTRACTS, RL004) == []


# -- RL005 ---------------------------------------------------------------

RL005_CONTRACTS = ContractSet(metric_paths=("fixtures/",))


def test_rl005_flags_unguarded_metric_division():
    findings = analyze("rl005_bad.py", RL005_CONTRACTS, RL005)
    assert len(findings) == 1
    assert "unguarded metric division by denom" in findings[0].message


def test_rl005_accepts_eps_clamp_guard_pow_and_docstring():
    assert analyze("rl005_good.py", RL005_CONTRACTS, RL005) == []


def test_rl005_ignores_files_outside_metric_paths():
    off_path = ContractSet(metric_paths=("somewhere-else/",))
    assert analyze("rl005_bad.py", off_path, RL005) == []
