"""RL001 positive fixture: lazy writes on the declared read path.

Analyzed by the fixture tests with a synthetic contract set declaring
``SharedCache`` shared, ``get`` a read root, and ``build`` the only
registered build method.  Three violations are seeded: a direct lazy
write in the root, an indirect write in a helper the root calls, and a
write in a subclass override of the root.
"""


class SharedCache:
    def __init__(self):
        self._value = None
        self.version = 0
        self.stats = {"builds": 0}

    def get(self):
        if self._value is None:
            self._value = self._compute()
        return self._refresh()

    def _refresh(self):
        self.version += 1
        return self._value

    def _compute(self):
        return 42

    def build(self):
        self._value = self._compute()
        self.stats["builds"] += 1
        return self._value


class DerivedCache(SharedCache):
    def get(self):
        self._hits = 1
        return super().get()
