"""Pragma fixture: malformed pragmas are RL000 findings and suppress nothing."""

import numpy as np


def no_reason(hessian):
    # reprolint: ignore[RL004]
    return np.linalg.cholesky(hessian)


def unknown_rule(hessian):
    # reprolint: ignore[RL9999] -- not a valid rule id
    return np.linalg.eigh(hessian)


def empty_rules(hessian):
    # reprolint: ignore[] -- lists no rules
    return np.linalg.eigvalsh(hessian)
