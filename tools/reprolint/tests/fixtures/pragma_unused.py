"""Pragma fixture: a pragma that suppresses nothing is itself a finding."""


def add(a, b):
    # reprolint: ignore[RL004] -- nothing here for this pragma to suppress
    return a + b
