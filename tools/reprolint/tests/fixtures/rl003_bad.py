"""RL003 positive fixture: packed batches without num_rows / count."""

import numpy as np


def score(estimator, masks):
    packed = np.packbits(masks, axis=1)
    scores = estimator.bias_change_batch(packed)
    rows = np.unpackbits(packed, axis=1)
    return scores, rows


def score_inline(estimator, masks):
    return estimator.responsibility_batch(np.packbits(masks, axis=1))
