"""RL002 positive fixture: counter discipline violations.

With the synthetic registry of the fixture tests this seeds four
findings: ``build`` never bumps its registered counter, ``vanished`` is
registered but not defined (registry drift), ``helper`` is exempt
without a written reason, and ``patch`` bumps a counter no stats dict
declares.
"""


class Registry:
    def __init__(self):
        self.stats = {"builds": 0}
        self._value = None

    def build(self):
        self._value = 1
        return self._value

    def patch(self):
        self._value = 2
        self.stats["patches"] += 1
        return self._value

    def helper(self):
        return 2
