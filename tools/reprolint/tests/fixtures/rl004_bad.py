"""RL004 positive fixture: linalg on Hessian-shaped state outside the authority."""

import numpy as np
from scipy import linalg


def factorize(hessian):
    return np.linalg.cholesky(hessian)


def spectrum(hess):
    return linalg.eigh(hess)


def unrelated(covariance):
    # Not Hessian-shaped: deliberately out of scope.
    return np.linalg.cholesky(covariance)
