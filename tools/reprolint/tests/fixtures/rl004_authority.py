"""RL004 negative fixture: this file *is* the registered factorization authority."""

import numpy as np


def factorize(hessian):
    return np.linalg.cholesky(hessian)
