"""RL003 negative fixture: packed calls thread num_rows=, unpackbits count=."""

import numpy as np


def score(estimator, masks):
    packed = np.packbits(masks, axis=1)
    scores = estimator.bias_change_batch(packed, num_rows=masks.shape[1])
    rows = np.unpackbits(packed, axis=1, count=masks.shape[1])
    return scores, rows


def dense(estimator, masks):
    # Dense boolean masks carry their row count in the shape: no keyword
    # needed, and the name does not look packed.
    return estimator.bias_change_batch(masks)
