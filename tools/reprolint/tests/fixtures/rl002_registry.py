"""RL002 negative fixture: registry-backed counters satisfy the discipline.

The build method bumps via ``self.stats.inc("builds")`` instead of the
dict-style ``+=``, and the counter is declared inside a ``StatsView``
dict-literal argument rather than a bare stats dict — both forms the rule
must accept.  ``broken`` bumps a counter that is neither the registered
one nor declared anywhere, so one seeded violation stays visible.
"""


class StatsView(dict):
    def __init__(self, counters, *, registry=None, namespace=""):
        super().__init__(counters)

    def inc(self, key, n=1):
        self[key] = self.get(key, 0) + n


class Registry:
    def __init__(self):
        self.stats = StatsView({"builds": 0}, namespace="registry")
        self._value = None

    def build(self):
        self._value = 1
        self.stats.inc("builds")
        return self._value

    def broken(self):
        self._value = 2
        self.stats.inc("wrong_counter")
        return self._value
