"""RL005 negative fixture: every division is guarded or documented."""

_EPS = 1e-9


def guarded_gap(num, denom):
    return num / (denom + _EPS)


def clamped_gap(num, denom):
    return num / max(denom, 1e-12)


def checked_gap(num, denom):
    if denom == 0:
        raise ZeroDivisionError("empty group")
    return num / denom


def squared_gap(num, denom):
    d = denom + _EPS
    return num / d**2


def documented_gap(num, denom):
    """Degenerate denominators are reported as nan rather than failing."""
    return num / denom
