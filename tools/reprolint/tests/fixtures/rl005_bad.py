"""RL005 positive fixture: an unguarded, undocumented metric division."""


def rate_gap(num, denom):
    return num / denom
