"""RL002 negative fixture: the registered build bumps its declared counter."""


class Registry:
    def __init__(self):
        self.stats = {"builds": 0}
        self._value = None

    def build(self):
        self._value = 1
        self.stats["builds"] += 1
        return self._value

    def helper(self):
        return 2
