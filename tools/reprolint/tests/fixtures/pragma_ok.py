"""Pragma fixture: a justified pragma suppresses the finding, no RL000."""

import numpy as np


def factorize(hessian):
    # reprolint: ignore[RL004] -- fixture: a deliberate, justified suppression
    return np.linalg.cholesky(hessian)


def trailing(hessian):
    return np.linalg.eigh(hessian)  # reprolint: ignore[RL004] -- trailing form
