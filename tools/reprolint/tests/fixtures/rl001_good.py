"""RL001 negative fixture: all writes live in the registered build method."""


class SharedCache:
    def __init__(self):
        self._value = None
        self.stats = {"builds": 0}

    def build(self):
        self._value = 42
        self.stats["builds"] += 1
        return self._value

    def get(self):
        if self._value is None:
            raise RuntimeError("call build() first")
        return self._value
