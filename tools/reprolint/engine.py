"""Rule driver: parse once, run every rule, apply pragma suppression.

``run_analysis`` is the programmatic entry point (the CLI and the fixture
tests both go through it); it returns the surviving findings sorted by
location.  Pragma handling is strict in both directions: a malformed or
reason-less pragma is itself a finding (``RL000``), and so is a pragma
that suppressed nothing — dead suppressions never accumulate silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from tools.reprolint.contracts import REPRO_CONTRACTS, ContractSet
from tools.reprolint.model import Project, collect_python_files
from tools.reprolint.pragmas import PragmaIndex


@dataclass(frozen=True)
class Finding:
    rule: str
    path: Path
    line: int
    message: str

    def render(self, root: Path | None = None) -> str:
        path = self.path
        if root is not None and path.is_relative_to(root):
            path = path.relative_to(root)
        return f"{path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One pluggable check: parse-level state in, findings out."""

    id: str
    name: str
    description: str
    check: Callable[[Project, ContractSet], list[Finding]]


def all_rules() -> list[Rule]:
    from tools.reprolint.rules import ALL_RULES

    return ALL_RULES


def run_analysis(
    paths: list[Path],
    contracts: ContractSet | None = None,
    rules: list[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run every rule over the python files under ``paths``.

    Returns findings that survived pragma suppression, plus RL000 findings
    for pragma problems, sorted by (path, line, rule).
    """
    contracts = contracts if contracts is not None else REPRO_CONTRACTS
    rules = rules if rules is not None else all_rules()
    files = collect_python_files(paths)
    project = Project(files, root=root)
    pragmas = PragmaIndex()
    for module in project.modules.values():
        pragmas.add_file(module.path, module.source)

    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project, contracts))

    kept = [f for f in raw if not pragmas.suppressed(f.path, f.line, f.rule)]
    for error in pragmas.errors:
        kept.append(Finding("RL000", error.path, error.line, error.message))
    for pragma in pragmas.unused():
        kept.append(
            Finding(
                "RL000",
                pragma.path,
                pragma.line,
                f"unused pragma: no {'/'.join(pragma.rules)} finding here to suppress",
            )
        )
    kept.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return kept
