"""reprolint — the repo's shared-state / cache-contract static analyzer.

Run as ``python -m tools.reprolint src``.  See ``tools/reprolint/README.md``
for the rule catalog and pragma syntax.
"""

from tools.reprolint.contracts import REPRO_CONTRACTS, BuildContract, ContractSet
from tools.reprolint.engine import Finding, Rule, all_rules, run_analysis

__all__ = [
    "BuildContract",
    "ContractSet",
    "Finding",
    "REPRO_CONTRACTS",
    "Rule",
    "all_rules",
    "run_analysis",
]
