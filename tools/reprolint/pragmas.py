"""Suppression pragmas: ``# reprolint: ignore[RL001] -- reason``.

A pragma suppresses matching findings on its own line, or — when it is
the only thing on its line — on the next code line below it.  Every
pragma must carry a ``-- reason`` justification; malformed pragmas and
pragmas that suppressed nothing are themselves findings (``RL000``), so
dead suppressions can't silently accumulate.

``file-ignore`` variants suppress a rule for the whole file (used for
fixture modules that exist to be broken).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>ignore|file-ignore)"
    r"\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*))?"
)
_RULE_RE = re.compile(r"^RL\d{3}$")


@dataclass
class Pragma:
    path: Path
    line: int
    kind: str  # "ignore" | "file-ignore"
    rules: tuple[str, ...]
    reason: str
    #: line numbers this pragma covers ("ignore" only)
    covers: tuple[int, ...] = ()
    used: bool = field(default=False, compare=False)


@dataclass
class PragmaError:
    path: Path
    line: int
    message: str


def _next_code_line(lines: list[str], idx: int) -> int | None:
    """1-based number of the first non-blank, non-comment line after ``idx``."""
    for j in range(idx + 1, len(lines)):
        stripped = lines[j].strip()
        if stripped and not stripped.startswith("#"):
            return j + 1
    return None


def parse_pragmas(path: Path, source: str) -> tuple[list[Pragma], list[PragmaError]]:
    pragmas: list[Pragma] = []
    errors: list[PragmaError] = []
    lines = source.splitlines()
    for idx, text in enumerate(lines):
        if "reprolint" not in text or "#" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            if re.search(r"#\s*reprolint\b", text):
                errors.append(
                    PragmaError(path, idx + 1, "malformed reprolint pragma (expected 'reprolint: ignore[RLxxx] -- reason')")
                )
            continue
        lineno = idx + 1
        rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
        reason = (match.group("reason") or "").strip()
        if not rules:
            errors.append(PragmaError(path, lineno, "pragma lists no rules"))
            continue
        bad = [r for r in rules if not _RULE_RE.match(r)]
        if bad:
            errors.append(PragmaError(path, lineno, f"unknown rule id(s) in pragma: {', '.join(bad)}"))
            continue
        if not reason:
            errors.append(
                PragmaError(path, lineno, "pragma has no '-- reason' justification")
            )
            continue
        kind = match.group("kind")
        covers: tuple[int, ...] = ()
        if kind == "ignore":
            own_line = text[: match.start()].strip()
            if own_line:
                covers = (lineno,)  # trailing comment: covers its own line
            else:
                target = _next_code_line(lines, idx)
                covers = (lineno,) if target is None else (lineno, target)
        pragmas.append(Pragma(path, lineno, kind, rules, reason, covers))
    return pragmas, errors


class PragmaIndex:
    """Per-file suppression lookup with use tracking."""

    def __init__(self) -> None:
        self._by_path: dict[Path, list[Pragma]] = {}
        self.errors: list[PragmaError] = []

    def add_file(self, path: Path, source: str) -> None:
        pragmas, errors = parse_pragmas(path, source)
        self._by_path[path] = pragmas
        self.errors.extend(errors)

    def suppressed(self, path: Path, line: int, rule: str) -> bool:
        for pragma in self._by_path.get(path, []):
            if rule not in pragma.rules:
                continue
            if pragma.kind == "file-ignore" or line in pragma.covers:
                pragma.used = True
                return True
        return False

    def unused(self) -> list[Pragma]:
        return [
            pragma
            for pragmas in self._by_path.values()
            for pragma in pragmas
            if not pragma.used
        ]
