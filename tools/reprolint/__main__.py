"""CLI: ``python -m tools.reprolint [paths...]``.

Exit status 0 when the tree is clean (every remaining suppression is a
justified pragma), 1 when findings survive, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.engine import all_rules, run_analysis


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based shared-state/cache-contract analyzer for this repository",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    root = Path.cwd()
    findings = run_analysis(paths, root=root)
    for finding in findings:
        print(finding.render(root=root))
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("reprolint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
