"""RL003 — packed-mask contract.

A bit-packed uint8 subset batch is indistinguishable from a small dense
matrix by dtype alone, so the batch API requires ``num_rows=`` as the
explicit contract marker (``estimators._check_packed`` enforces it at
runtime — this rule catches the call sites statically, before a test has
to trip over silently-wrong subsets).  A batch-query call whose subset
argument *looks packed* (named ``*packed*``/``*tid*``, built by
``pack_rows``/``np.packbits``, or a local assigned from such an
expression) must therefore thread ``num_rows=``.

Sub-check: ``np.unpackbits`` without ``count=`` — the padding bits of the
last byte would materialize as phantom rows.
"""

from __future__ import annotations

import ast
import re

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import Finding, Rule
from tools.reprolint.model import Project

_PACKED_NAME = re.compile(r"(?i)packed|tids?\b|tidlist")
_PACKERS = frozenset({"pack_rows", "packbits"})


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _looks_packed(node: ast.expr, local_defs: dict[str, ast.expr], depth: int = 0) -> bool:
    if depth > 4:
        return False
    if isinstance(node, ast.Call) and _call_name(node.func) in _PACKERS:
        return True
    if isinstance(node, ast.Name):
        if _PACKED_NAME.search(node.id):
            return True
        definition = local_defs.get(node.id)
        if definition is not None:
            return _looks_packed(definition, local_defs, depth + 1)
        return False
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        return bool(_PACKED_NAME.search(ast.unparse(node)))
    return False


def _local_defs(scope: ast.AST) -> dict[str, ast.expr]:
    """name -> value of single-target assignments in a function scope.

    Reassigned names resolve to their *last* definition — an
    over-approximation either way, biased toward reporting.
    """
    defs: dict[str, ast.expr] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                defs[target.id] = node.value
    return defs


def check(project: Project, contracts: ContractSet) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules.values():
        scopes = [module.tree] + [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            defs = _local_defs(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node.func)
                if name == "unpackbits":
                    if not any(kw.arg == "count" for kw in node.keywords):
                        findings.append(
                            Finding(
                                "RL003",
                                module.path,
                                node.lineno,
                                "np.unpackbits without count=: the last byte's padding "
                                "bits become phantom rows",
                            )
                        )
                    continue
                if name not in contracts.packed_batch_methods:
                    continue
                if any(kw.arg == "num_rows" for kw in node.keywords):
                    continue
                if not node.args:
                    continue
                if _looks_packed(node.args[0], defs):
                    findings.append(
                        Finding(
                            "RL003",
                            module.path,
                            node.lineno,
                            f"{name} called with a packed-looking subset batch "
                            f"({ast.unparse(node.args[0])}) but without num_rows=; "
                            "packed uint8 batches must thread the row count",
                        )
                    )
    # The per-scope sweep above visits nested calls once per enclosing
    # scope; dedupe on (path, line, message).
    unique = {(f.path, f.line, f.message): f for f in findings}
    return list(unique.values())


RULE = Rule(
    id="RL003",
    name="packed-mask-contract",
    description="packed uint8 subset batches must thread num_rows=",
    check=check,
)
