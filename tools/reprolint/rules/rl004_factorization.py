"""RL004 — single factorization authority.

All factorizations/solves of Hessian-shaped state live in
``influence/hessian.py`` (the :class:`HessianSolver` contract: one
factorization per damping, counted, updated through rank-k algebra).  A
``np.linalg.cholesky`` / ``eigh`` / ``solve`` on something Hessian-shaped
anywhere else is a second authority — an uncached O(p³) factorization the
session's exactly-once accounting can't see.

Matched calls: any ``*.linalg.<fn>`` attribute call (or a bare name
imported from ``numpy.linalg`` / ``scipy.linalg``) with ``<fn>`` in the
factorization set, where any argument's source matches the
Hessian-name pattern.  Matrices that are not Hessian-shaped (capacitance
blocks, covariance matrices, …) are deliberately out of scope.
"""

from __future__ import annotations

import ast
import re

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import Finding, Rule
from tools.reprolint.model import Project

_LINALG_FUNCS = frozenset(
    {
        "cholesky",
        "cho_factor",
        "cho_solve",
        "eigh",
        "eigvalsh",
        "eig",
        "eigvals",
        "solve",
        "lstsq",
        "inv",
        "pinv",
    }
)


def _is_linalg_call(node: ast.Call, module_imports: dict[str, str]) -> str | None:
    """The linalg function name when this call is one, else None."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _LINALG_FUNCS:
        chain = ast.unparse(func.value)
        base = chain.split(".")[0].split("(")[0]
        target = module_imports.get(base, base)
        if "linalg" in chain or "linalg" in target:
            return func.attr
        return None
    if isinstance(func, ast.Name) and func.id in _LINALG_FUNCS:
        target = module_imports.get(func.id, "")
        if "linalg" in target:
            return func.id
    return None


def check(project: Project, contracts: ContractSet) -> list[Finding]:
    hessian = re.compile(contracts.hessian_pattern)
    findings: list[Finding] = []
    for module in project.modules.values():
        path_str = str(module.path)
        if any(path_str.endswith(suffix) for suffix in contracts.factorization_authority):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_name = _is_linalg_call(node, module.imports)
            if fn_name is None:
                continue
            offending = [
                ast.unparse(arg)
                for arg in list(node.args) + [kw.value for kw in node.keywords]
                if hessian.search(ast.unparse(arg))
            ]
            if offending:
                findings.append(
                    Finding(
                        "RL004",
                        module.path,
                        node.lineno,
                        f"linalg.{fn_name} on Hessian-shaped state ({', '.join(offending)}) "
                        "outside the factorization authority "
                        f"({', '.join(contracts.factorization_authority)}); route it "
                        "through HessianSolver",
                    )
                )
    return findings


RULE = Rule(
    id="RL004",
    name="single-factorization-authority",
    description="no linalg factorizations of Hessian-shaped state outside influence/hessian.py",
    check=check,
)
