"""RL005 — NaN silence in fairness-metric arithmetic.

A fairness metric dividing by a group rate can silently return NaN (or
raise) exactly when the audit is most interesting — a degenerate group
after an edit.  Divisions in the metric paths must therefore be *guarded*
(an epsilon in the denominator, a nonzero constant, a ``max(…, c)``
clamp, or a preceding raise/return guard on the denominator) or
*documented* — the enclosing function/class/module docstring spelling out
the nan contract the way ``fairness/report.py`` does ("reported as nan
rather than failing").

The guard check follows simple local dataflow: a denominator name (or
tuple-unpacked name) resolves through single assignments in the enclosing
function, and ``denom**2`` is guarded when ``denom`` is.
"""

from __future__ import annotations

import ast
import re

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import Finding, Rule
from tools.reprolint.model import Project

_NAN_DOC = re.compile(r"(?i)\bnan\b")


def _docs_mention_nan(stack: list[ast.AST], module_doc: str | None) -> bool:
    if module_doc and _NAN_DOC.search(module_doc):
        return True
    for node in stack:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            doc = ast.get_docstring(node)
            if doc and _NAN_DOC.search(doc):
                return True
    return False


class _Scope:
    """Local name -> defining expression, tuple unpacking included."""

    def __init__(self, fn: ast.AST) -> None:
        self.defs: dict[str, ast.expr] = {}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.defs[target.id] = node.value
            elif isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                if len(target.elts) == len(node.value.elts):
                    for t, v in zip(target.elts, node.value.elts):
                        if isinstance(t, ast.Name):
                            self.defs[t.id] = v

    def guarded_names(self, fn: ast.AST) -> set[str]:
        """Names validated by a preceding ``if <name> …: raise/return`` guard."""
        guarded: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            has_exit = any(
                isinstance(stmt, (ast.Raise, ast.Return, ast.Continue)) for stmt in node.body
            )
            if not has_exit:
                continue
            for name_node in ast.walk(node.test):
                if isinstance(name_node, ast.Name):
                    guarded.add(name_node.id)
        return guarded


def _is_guarded(node: ast.expr, scope: _Scope, eps: re.Pattern, checked: set[str], depth: int = 0) -> bool:
    if depth > 4:
        return False
    text = ast.unparse(node)
    if eps.search(text):
        return True
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and node.value != 0
    if isinstance(node, ast.UnaryOp):
        return _is_guarded(node.operand, scope, eps, checked, depth + 1)
    if isinstance(node, ast.Name):
        if node.id in checked:
            return True
        definition = scope.defs.get(node.id)
        if definition is not None:
            return _is_guarded(definition, scope, eps, checked, depth + 1)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
        return _is_guarded(node.left, scope, eps, checked, depth + 1)
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else getattr(node.func, "attr", "")
        if name in ("max", "maximum", "clip"):
            return any(
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float))
                and arg.value > 0
                for arg in node.args
            ) or any(_is_guarded(arg, scope, eps, checked, depth + 1) for arg in node.args)
    return False


def check(project: Project, contracts: ContractSet) -> list[Finding]:
    eps = re.compile(contracts.eps_pattern)
    findings: list[Finding] = []
    for module in project.modules.values():
        path_str = str(module.path)
        if not any(fragment in path_str for fragment in contracts.metric_paths):
            continue
        module_doc = ast.get_docstring(module.tree)

        def visit(node: ast.AST, stack: list[ast.AST], fn: ast.AST | None) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = node
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                scope = _Scope(fn if fn is not None else module.tree)
                checked = scope.guarded_names(fn if fn is not None else module.tree)
                if not _is_guarded(node.right, scope, eps, checked):
                    if not _docs_mention_nan(stack, module_doc):
                        findings.append(
                            Finding(
                                "RL005",
                                module.path,
                                node.lineno,
                                "unguarded metric division by "
                                f"{ast.unparse(node.right)}: guard the denominator "
                                "(epsilon / clamp / explicit raise) or document the "
                                "nan contract in the docstring",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, stack + [node], fn)

        visit(module.tree, [], None)
    return findings


RULE = Rule(
    id="RL005",
    name="nan-silence",
    description="fairness-metric divisions must be guarded or carry a documented nan contract",
    check=check,
)
