"""RL002 — counter discipline.

Every registered cache build/patch entry must bump its registered
``stats`` counter (``self.<stats_attr>["<counter>"] += …``) and that
counter key must actually be *declared* somewhere — in a stats dict
literal or a ``stats.setdefault("<counter>", …)`` call — so the dynamic
exactly-once assertions the benchmarks make stay possible.  Registry
drift (a registered method that no longer exists) and exempt entries
without a written reason are also findings.
"""

from __future__ import annotations

import ast

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import Finding, Rule
from tools.reprolint.model import FunctionInfo, Project


def _declared_counters(project: Project) -> set[str]:
    """Counter keys declared in stats-dict literals or setdefault calls.

    A dict literal anywhere inside the assigned value counts, so registry-
    backed declarations like ``self.stats = StatsView({"builds": 0}, ...)``
    declare their keys exactly as the plain ``self.stats = {"builds": 0}``
    form always has.
    """
    declared: set[str] = set()
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                if any("stats" in ast.unparse(t).lower() for t in node.targets):
                    for inner in ast.walk(node.value):
                        if isinstance(inner, ast.Dict):
                            for key in inner.keys:
                                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                                    declared.add(key.value)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "setdefault" and "stats" in ast.unparse(node.func.value).lower():
                    if node.args and isinstance(node.args[0], ast.Constant):
                        if isinstance(node.args[0].value, str):
                            declared.add(node.args[0].value)
    return declared


def _container_matches(container: str, stats_attr: str) -> bool:
    return container == f"self.{stats_attr}" or container.endswith("." + stats_attr)


def _bumps_counter(fn: FunctionInfo, stats_attr: str, counter: str) -> bool:
    """True when the method bumps the counter, by either idiom.

    Both the dict-style ``self.<stats_attr>["<counter>"] += n`` and the
    registry-backed ``self.<stats_attr>.inc("<counter>", ...)`` satisfy the
    discipline: each is an exactly-once, named, observable increment.
    """
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AugAssign):
            target = node.target
            if not isinstance(target, ast.Subscript):
                continue
            key = target.slice
            if not (isinstance(key, ast.Constant) and key.value == counter):
                continue
            if _container_matches(ast.unparse(target.value), stats_attr):
                return True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr != "inc":
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and first.value == counter):
                continue
            if _container_matches(ast.unparse(node.func.value), stats_attr):
                return True
    return False


def _find_methods(project: Project, cls_name: str, meth: str) -> list[FunctionInfo]:
    out = []
    for cls in project.classes_by_name.get(cls_name, []):
        if meth in cls.methods:
            out.append(cls.methods[meth])
    return out


def check(project: Project, contracts: ContractSet) -> list[Finding]:
    findings: list[Finding] = []
    declared = _declared_counters(project)
    for (cls_name, meth), contract in sorted(contracts.build_methods.items()):
        methods = _find_methods(project, cls_name, meth)
        if not methods:
            # Registry drift is reported against every module defining the
            # class, or as a project-level finding when the class is gone.
            classes = project.classes_by_name.get(cls_name, [])
            for cls in classes:
                findings.append(
                    Finding(
                        "RL002",
                        cls.module.path,
                        cls.node.lineno,
                        f"registry drift: {cls_name}.{meth} is a registered "
                        "build/edit method but the class defines no such method",
                    )
                )
            if not classes:
                first = next(iter(project.modules.values()))
                findings.append(
                    Finding(
                        "RL002",
                        first.path,
                        1,
                        f"registry drift: registered class {cls_name} not found in the tree",
                    )
                )
            continue
        for fn in methods:
            if contract.counter is None:
                if not contract.reason.strip():
                    findings.append(
                        Finding(
                            "RL002",
                            fn.path,
                            fn.node.lineno,
                            f"{fn.qualname} is exempt from counter discipline without a "
                            "written reason in the registry",
                        )
                    )
                continue
            if not _bumps_counter(fn, contract.stats_attr, contract.counter):
                findings.append(
                    Finding(
                        "RL002",
                        fn.path,
                        fn.node.lineno,
                        f"{fn.qualname} is a registered {contract.kind} method but never "
                        f'bumps self.{contract.stats_attr}["{contract.counter}"]',
                    )
                )
            if contract.counter not in declared:
                findings.append(
                    Finding(
                        "RL002",
                        fn.path,
                        fn.node.lineno,
                        f'counter "{contract.counter}" of {fn.qualname} is not declared '
                        "in any stats dict literal or setdefault",
                    )
                )
    return findings


RULE = Rule(
    id="RL002",
    name="counter-discipline",
    description="registered cache builds/patches must bump a declared stats counter",
    check=check,
)
