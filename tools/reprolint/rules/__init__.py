"""Rule registry.  Adding a rule = one module exporting ``RULE`` + one line here."""

from tools.reprolint.rules.rl001_read_purity import RULE as RL001
from tools.reprolint.rules.rl002_counters import RULE as RL002
from tools.reprolint.rules.rl003_packed import RULE as RL003
from tools.reprolint.rules.rl004_factorization import RULE as RL004
from tools.reprolint.rules.rl005_nan import RULE as RL005

ALL_RULES = [RL001, RL002, RL003, RL004, RL005]
