"""RL001 — read-path purity.

Methods reachable from the declared read API (estimator queries,
``context_for`` / ``audit`` / delta replay, …) may not assign ``self``
attributes on a *shared* class unless the method is a registered
build/edit entry point.  Every violation is a latent race once the read
path fans across a worker pool: two threads racing the same lazy build
write the same attribute concurrently, and a reader can observe the
half-initialized value.

Detected write forms: ``self.attr = …``, ``self.attr[...] = …`` (any
subscript depth), augmented assignments on either, ``del self.attr``, and
``object.__setattr__(self, …)`` / ``setattr(self, …)``.  Constructors
(``__init__`` / ``__post_init__`` / ``__new__``) are exempt — a not-yet-
shared instance is thread-local by construction.
"""

from __future__ import annotations

import ast

from tools.reprolint.contracts import ContractSet
from tools.reprolint.engine import Finding, Rule
from tools.reprolint.model import ClassInfo, FunctionInfo, Project

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def resolve_read_roots(project: Project, contracts: ContractSet) -> list[FunctionInfo]:
    """The FunctionInfos of the declared read API, overrides included."""
    roots: list[FunctionInfo] = []
    for cls_name, meth in contracts.read_roots:
        if cls_name == "":
            mod_name, _, func = meth.rpartition(".")
            for module in project.modules.values():
                if module.name == mod_name or module.name.endswith("." + mod_name):
                    if func in module.functions:
                        roots.append(module.functions[func])
            continue
        for cls in project.subclasses({cls_name}):
            if meth in cls.methods:
                roots.append(cls.methods[meth])
    return roots


def _subscript_base(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _self_write_target(node: ast.expr) -> str | None:
    """``"attr"`` when ``node`` writes through ``self.attr``, else None."""
    base = _subscript_base(node)
    if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        if base.value.id == "self":
            return base.attr
    return None


def iter_self_writes(fn_node: ast.AST):
    """Yield ``(lineno, description)`` for every self-attribute write."""
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                parts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                for part in parts:
                    attr = _self_write_target(part)
                    if attr is not None:
                        yield node.lineno, f"assigns self.{attr}"
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_write_target(node.target)
            if attr is not None:
                yield node.lineno, f"mutates self.{attr}"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_write_target(target)
                if attr is not None:
                    yield node.lineno, f"deletes self.{attr}"
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name == "__setattr__" or name == "setattr":
                if node.args and isinstance(node.args[0], ast.Name) and node.args[0].id == "self":
                    yield node.lineno, "calls setattr on self"


def _is_allowlisted(fn: FunctionInfo, cls: ClassInfo, project: Project, contracts: ContractSet) -> bool:
    family_names = {c.name for c in project.family(cls)}
    return any((name, fn.name) in contracts.build_methods for name in family_names)


def check(project: Project, contracts: ContractSet) -> list[Finding]:
    shared = project.subclasses(set(contracts.shared_classes))
    roots = resolve_read_roots(project, contracts)
    pred = project.reachable_from(roots)
    findings: list[Finding] = []
    for fn in pred:
        cls = fn.cls
        if cls is None or cls not in shared:
            continue
        if fn.name in _CONSTRUCTORS:
            continue
        if _is_allowlisted(fn, cls, project, contracts):
            continue
        chain = project.chain(pred, fn)
        for lineno, description in iter_self_writes(fn.node):
            findings.append(
                Finding(
                    "RL001",
                    fn.path,
                    lineno,
                    f"read-path write: {fn.qualname} {description} but is reachable "
                    f"from the read API (via {chain}) and is not a registered "
                    "build/edit method",
                )
            )
    return findings


RULE = Rule(
    id="RL001",
    name="read-path-purity",
    description="methods reachable from the read API may not write shared state",
    check=check,
)
