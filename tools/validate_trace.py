"""Validate a ``repro`` trace file: ``python -m tools.validate_trace trace.json``.

The file is the combined export :meth:`repro.obs.Tracer.export` writes via
``explain --trace-out`` — Chrome ``trace_event`` complete events under
``traceEvents`` (what Perfetto loads) merged with the structured span
forest under ``spans``.  The validator is stdlib-only so CI can run it
without the package on ``PYTHONPATH``.

Checks
------
* well-formed JSON object with ``schema_version == 1``
* ``traceEvents``: a non-empty list of complete ("X") events, each with
  the required keys and non-negative numeric ``ts``/``dur``
* balanced nesting per ``tid``: on any one thread, two events either
  nest properly or are disjoint — a partial overlap means a span escaped
  its parent, which the span protocol forbids
* the structured span forest agrees: children lie inside their parent's
  window, ``span_count`` matches the actual tree size, and the Chrome
  event list covers every structured span

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import json
import sys

#: Slack for float round-off when comparing microsecond timestamps that
#: were converted from the same monotonic clock readings.
_EPS_US = 0.5

_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


class TraceError(Exception):
    """One validation failure, formatted for the CI log."""


def _fail(message: str) -> None:
    raise TraceError(message)


def _check_events(events: object) -> dict[int, int]:
    """Validate event well-formedness; return per-tid complete-event counts."""
    if not isinstance(events, list):
        _fail(f"traceEvents must be a list, got {type(events).__name__}")
    complete: dict[int, list[tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(f"traceEvents[{i}] is not an object")
        if event.get("ph") != "X":
            continue  # other phases (metadata etc.) are legal, just untyped here
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                _fail(f"traceEvents[{i}] ({event.get('name')!r}) missing key {key!r}")
        ts, dur = event["ts"], event["dur"]
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            _fail(f"traceEvents[{i}] has non-numeric ts/dur")
        if ts < 0 or dur < 0:
            _fail(f"traceEvents[{i}] has negative ts/dur ({ts}, {dur})")
        if not isinstance(event["args"], dict):
            _fail(f"traceEvents[{i}] args must be an object")
        complete.setdefault(event["tid"], []).append((ts, ts + dur, event["name"]))
    if not complete:
        _fail("no complete ('X') events in traceEvents")
    for tid, spans in complete.items():
        _check_nesting(tid, spans)
    return {tid: len(spans) for tid, spans in complete.items()}


def _check_nesting(tid: int, spans: list[tuple[float, float, str]]) -> None:
    """Events on one thread must either nest properly or be disjoint."""
    # Sort by start ascending, then end descending, so a parent precedes
    # the children sharing its start timestamp.
    stack: list[tuple[float, float, str]] = []
    for start, end, name in sorted(spans, key=lambda s: (s[0], -s[1])):
        while stack and start >= stack[-1][1] - _EPS_US:
            stack.pop()
        if stack and end > stack[-1][1] + _EPS_US:
            _fail(
                f"unbalanced nesting on tid {tid}: {name!r} "
                f"[{start:.1f}, {end:.1f}]us overlaps the end of "
                f"{stack[-1][2]!r} [{stack[-1][0]:.1f}, {stack[-1][1]:.1f}]us"
            )
        stack.append((start, end, name))


def _check_span_tree(span: object, path: str) -> int:
    """Validate one structured span subtree; return its node count."""
    if not isinstance(span, dict):
        _fail(f"{path} is not an object")
    for key in ("name", "start", "duration", "tid", "attrs", "children"):
        if key not in span:
            _fail(f"{path} missing key {key!r}")
    start, duration = span["start"], span["duration"]
    if not isinstance(start, (int, float)) or not isinstance(duration, (int, float)):
        _fail(f"{path} has non-numeric start/duration")
    if duration < 0:
        _fail(f"{path} has negative duration")
    count = 1
    end = start + duration
    for j, child in enumerate(span["children"]):
        child_path = f"{path}.children[{j}]"
        count += _check_span_tree(child, child_path)
        c_start = child["start"]
        c_end = c_start + child["duration"]
        if c_start < start - _EPS_US * 1e-6 or c_end > end + _EPS_US * 1e-6:
            _fail(
                f"{child_path} ({child['name']!r}) escapes its parent's window: "
                f"[{c_start:.6f}, {c_end:.6f}]s outside [{start:.6f}, {end:.6f}]s"
            )
    return count


def validate(doc: object) -> str:
    """Validate a parsed trace document; return a one-line summary."""
    if not isinstance(doc, dict):
        _fail(f"trace root must be an object, got {type(doc).__name__}")
    if doc.get("schema_version") != 1:
        _fail(f"unsupported schema_version {doc.get('schema_version')!r} (expected 1)")
    per_tid = _check_events(doc.get("traceEvents"))
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        _fail("structured 'spans' forest is missing or empty")
    total = sum(_check_span_tree(root, f"spans[{i}]") for i, root in enumerate(spans))
    declared = doc.get("span_count")
    if declared != total:
        _fail(f"span_count says {declared} but the spans forest holds {total}")
    events = sum(per_tid.values())
    if events != total:
        _fail(f"{events} complete events vs {total} structured spans")
    tids = ", ".join(f"tid {tid}: {n}" for tid, n in sorted(per_tid.items()))
    return f"ok: {total} spans, nesting balanced ({tids})"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m tools.validate_trace TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"validate_trace: {argv[0]}: {error}", file=sys.stderr)
        return 1
    try:
        summary = validate(doc)
    except TraceError as error:
        print(f"validate_trace: {argv[0]}: {error}", file=sys.stderr)
        return 1
    print(f"validate_trace: {argv[0]}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
