"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail at ``bdist_wheel``.  This file lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
