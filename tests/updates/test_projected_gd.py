"""Tests for the Section-5 update search."""

import numpy as np
import pytest

from repro.patterns import Pattern, Predicate
from repro.updates import find_update_explanation


@pytest.fixture(scope="module")
def pattern_and_indices(german_train):
    pattern = Pattern(
        [Predicate("age", ">=", 45.0), Predicate("gender", "=", "Female")]
    )
    mask = pattern.mask(german_train.table)
    return pattern, np.flatnonzero(mask)


@pytest.fixture(scope="module")
def update(
    lr_model, encoder, X_train, german_train, sp_metric, test_ctx, pattern_and_indices
):
    pattern, indices = pattern_and_indices
    return find_update_explanation(
        lr_model,
        encoder,
        X_train,
        german_train.labels,
        sp_metric,
        test_ctx,
        pattern,
        indices,
        num_steps=40,
        verify=True,
    )


class TestUpdateSearch:
    def test_update_reduces_bias_estimate(self, update):
        """The planted old-female subset admits an update that lowers bias."""
        assert update.est_bias_change < 0

    def test_ground_truth_confirms_direction(self, update):
        assert update.gt_bias_change is not None
        assert update.gt_bias_change < 0
        assert update.direction == "decrease"

    def test_changes_restricted_to_pattern_features(self, update):
        assert set(update.changed_features) <= {"age", "gender"}

    def test_gender_flip_found(self, update):
        """Mirroring the paper's Table 4: the update flips the pattern's
        gender and/or pushes age below the threshold."""
        assert update.changed_features  # something changed
        if "gender" in update.changed_features:
            assert update.changed_features["gender"] == ("Female", "Male")
        if "age" in update.changed_features:
            assert float(update.changed_features["age"][1]) < 45.0

    def test_support_reported(self, update, X_train, pattern_and_indices):
        _, indices = pattern_and_indices
        assert update.support == pytest.approx(len(indices) / len(X_train))

    def test_describe_mentions_direction(self, update):
        assert "bias" in update.describe()

    def test_to_record_serializable(self, update):
        import json

        record = update.to_record()
        json.dumps(record)
        assert record["direction"] == "decrease"
        assert set(record["changed_features"]) <= {"age", "gender"}


class TestUpdateOptions:
    def test_allowed_features_override(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, allowed_features={"gender"}, num_steps=25,
        )
        assert set(update.changed_features) <= {"gender"}

    def test_empty_subset_rejected(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, _ = pattern_and_indices
        with pytest.raises(ValueError, match="empty"):
            find_update_explanation(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                pattern, np.array([], dtype=int),
            )

    def test_direction_vs_removal(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, num_steps=10, removal_bias_change=-1.0,
        )
        # Removal reduced bias by 1.0 (more than any update can) -> "less".
        assert update.direction_vs_removal == "less"

    def test_direction_vs_removal_requires_reference(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, num_steps=5,
        )
        with pytest.raises(ValueError, match="removal_bias_change"):
            update.direction_vs_removal
