"""Tests for the Section-5 update search."""

import numpy as np
import pytest

from repro.fairness import FairnessContext
from repro.patterns import Pattern, Predicate
from repro.updates import UpdateExplanation, find_update_explanation


@pytest.fixture(scope="module")
def pattern_and_indices(german_train):
    pattern = Pattern(
        [Predicate("age", ">=", 45.0), Predicate("gender", "=", "Female")]
    )
    mask = pattern.mask(german_train.table)
    return pattern, np.flatnonzero(mask)


@pytest.fixture(scope="module")
def update(
    lr_model, encoder, X_train, german_train, sp_metric, test_ctx, pattern_and_indices
):
    pattern, indices = pattern_and_indices
    return find_update_explanation(
        lr_model,
        encoder,
        X_train,
        german_train.labels,
        sp_metric,
        test_ctx,
        pattern,
        indices,
        num_steps=40,
        verify=True,
    )


class TestUpdateSearch:
    def test_update_reduces_bias_estimate(self, update):
        """The planted old-female subset admits an update that lowers bias."""
        assert update.est_bias_change < 0

    def test_ground_truth_confirms_direction(self, update):
        assert update.gt_bias_change is not None
        assert update.gt_bias_change < 0
        assert update.direction == "decrease"

    def test_changes_restricted_to_pattern_features(self, update):
        assert set(update.changed_features) <= {"age", "gender"}

    def test_gender_flip_found(self, update):
        """Mirroring the paper's Table 4: the update flips the pattern's
        gender and/or pushes age below the threshold."""
        assert update.changed_features  # something changed
        if "gender" in update.changed_features:
            assert update.changed_features["gender"] == ("Female", "Male")
        if "age" in update.changed_features:
            assert float(update.changed_features["age"][1]) < 45.0

    def test_support_reported(self, update, X_train, pattern_and_indices):
        _, indices = pattern_and_indices
        assert update.support == pytest.approx(len(indices) / len(X_train))

    def test_describe_mentions_direction(self, update):
        assert "bias" in update.describe()

    def test_to_record_serializable(self, update):
        import json

        record = update.to_record()
        json.dumps(record)
        assert record["direction"] == "decrease"
        assert set(record["changed_features"]) <= {"age", "gender"}


class TestUpdateOptions:
    def test_allowed_features_override(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, allowed_features={"gender"}, num_steps=25,
        )
        assert set(update.changed_features) <= {"gender"}

    def test_empty_subset_rejected(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, _ = pattern_and_indices
        with pytest.raises(ValueError, match="empty"):
            find_update_explanation(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                pattern, np.array([], dtype=int),
            )

    def test_direction_vs_removal(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, num_steps=10,
        )
        # A removal that exactly zeroes the bias beats any projected update.
        update.removal_bias_change = -update.original_bias
        assert update.direction_vs_removal == "less"
        # A removal that overshoots far past zero leaves *more* |bias| than
        # the update does — the old signed comparison got this backwards.
        update.removal_bias_change = -1.0
        assert update.direction_vs_removal == "more"

    def test_direction_vs_removal_requires_reference(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, num_steps=5,
        )
        with pytest.raises(ValueError, match="removal_bias_change"):
            _ = update.direction_vs_removal


class TestSignConventions:
    """Regression tests for the signed-bias direction bugs: a model whose
    signed bias is *negative* is repaired by a positive ΔF, which the old
    signed-ΔF reading mislabeled as "increase"."""

    @staticmethod
    def _make(original, change, removal=None):
        return UpdateExplanation(
            pattern=Pattern([Predicate("age", ">=", 45.0)]),
            support=0.1,
            delta=np.zeros(3),
            changed_features={},
            est_bias_change=change,
            removal_bias_change=removal,
            original_bias=original,
        )

    def test_negative_bias_repair_reads_decrease(self):
        # bias −0.2 → −0.12: |bias| shrank; the old code reported "increase".
        assert self._make(-0.2, +0.08).direction == "decrease"

    def test_negative_bias_worsening_reads_increase(self):
        # bias −0.2 → −0.28: |bias| grew; the old code reported "decrease".
        assert self._make(-0.2, -0.08).direction == "increase"

    def test_positive_bias_directions_unchanged(self):
        assert self._make(0.2, -0.08).direction == "decrease"
        assert self._make(0.2, +0.08).direction == "increase"

    def test_overshoot_past_zero_reads_increase(self):
        # bias 0.2 → −0.35: the signed ΔF is negative but |bias| grew.
        assert self._make(0.2, -0.55).direction == "increase"

    def test_direction_vs_removal_negative_bias(self):
        # Removal leaves |−0.02|, the update leaves |−0.15| → update is "less".
        assert self._make(-0.2, +0.05, removal=+0.18).direction_vs_removal == "less"
        # Update nearly zeroes the bias, removal barely moves it → "more".
        assert self._make(-0.2, +0.19, removal=+0.05).direction_vs_removal == "more"

    def test_signed_fallback_without_original_bias(self):
        # Hand-built instances without original_bias keep the legacy signed
        # reading (correct in the positive-bias regime).
        legacy = UpdateExplanation(
            pattern=Pattern([Predicate("age", ">=", 45.0)]),
            support=0.1,
            delta=np.zeros(3),
            changed_features={},
            est_bias_change=-0.05,
        )
        assert legacy.direction == "decrease"

    def test_negative_bias_end_to_end(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        """With the privileged groups swapped the signed bias is negative;
        the search must still shrink |bias| and say so."""
        flipped = FairnessContext(
            X=test_ctx.X,
            y=test_ctx.y,
            privileged=~test_ctx.privileged,
            favorable_label=test_ctx.favorable_label,
        )
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, flipped,
            pattern, indices, num_steps=40,
        )
        assert update.original_bias < 0
        assert update.est_bias_change > 0  # pushed toward zero
        assert update.direction == "decrease"

    def test_record_carries_sources(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        pattern_and_indices,
    ):
        pattern, indices = pattern_and_indices
        update = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            pattern, indices, num_steps=5,
            removal_bias_change=-0.05, removal_source="estimated",
        )
        record = update.to_record()
        assert record["removal_bias_source"] == "estimated"
        assert record["original_bias"] == pytest.approx(update.original_bias)
