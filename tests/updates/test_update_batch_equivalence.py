"""Batch-vs-loop equivalence for the vectorized §5 update-search engine.

The batched engine must produce the same δ's, estimated bias changes, and
described updates as the ``batch=False`` per-coordinate reference loop —
both through the stacked finite-difference path and through the analytic
``input_grads`` fast path — mirroring PR 1's estimator-equivalence suite.
"""

import json

import numpy as np
import pytest

from repro.patterns import Pattern, Predicate
from repro.updates import (
    UpdateSearchContext,
    find_update_explanation,
    find_update_explanations,
)

# Single-feature (numeric and categorical), multi-feature, and
# all-categorical patterns — the shapes the engine special-cases least.
PATTERNS = [
    Pattern([Predicate("age", ">=", 45.0), Predicate("gender", "=", "Female")]),
    Pattern([Predicate("gender", "=", "Female")]),
    Pattern([Predicate("age", ">=", 45.0)]),
    Pattern([Predicate("gender", "=", "Female"), Predicate("housing", "=", "Own")]),
]

DELTA_ATOL = 1e-6
CHANGE_ATOL = 1e-9


@pytest.fixture(scope="module")
def subsets(german_train):
    subsets = [np.flatnonzero(p.mask(german_train.table)) for p in PATTERNS]
    assert all(s.size > 0 for s in subsets)
    return subsets


@pytest.fixture(scope="module")
def context(lr_model, X_train, german_train, sp_metric, test_ctx):
    return UpdateSearchContext(
        lr_model, X_train, german_train.labels, sp_metric, test_ctx
    )


@pytest.fixture(scope="module")
def engine(lr_model, encoder, X_train, german_train, sp_metric, test_ctx, subsets, context):
    def run(**kwargs):
        kwargs.setdefault("num_steps", 40)
        kwargs.setdefault("context", context)
        return find_update_explanations(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            PATTERNS, subsets, **kwargs,
        )

    return run


@pytest.fixture(scope="module")
def loop_result(engine):
    return engine(batch=False)


def _assert_equivalent(batched, loop):
    assert len(batched) == len(loop)
    for b, l in zip(batched, loop):
        np.testing.assert_allclose(b.delta, l.delta, atol=DELTA_ATOL)
        assert b.est_bias_change == pytest.approx(l.est_bias_change, abs=CHANGE_ATOL)
        assert b.changed_features == l.changed_features
        assert b.support == l.support
        assert b.direction == l.direction


class TestBatchEquivalence:
    def test_analytic_fast_path_matches_loop(self, engine, loop_result):
        _assert_equivalent(engine(batch=True), loop_result)

    def test_stacked_fd_matches_loop(self, engine, loop_result):
        _assert_equivalent(engine(batch=True, use_input_grads=False), loop_result)

    def test_allowed_features_override(self, engine, loop_result):
        allowed = {"gender", "age", "housing", "amount"}
        batched = engine(batch=True, allowed_features=allowed)
        loop = engine(batch=False, allowed_features=allowed)
        _assert_equivalent(batched, loop)

    def test_verified_changes_match(self, engine):
        batched = engine(batch=True, verify=True, num_steps=15)
        loop = engine(batch=False, verify=True, num_steps=15)
        for b, l in zip(batched, loop):
            assert b.gt_bias_change is not None and l.gt_bias_change is not None
            assert b.gt_bias_change == pytest.approx(l.gt_bias_change, abs=1e-8)

    def test_context_reuse_matches_fresh(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        subsets, engine,
    ):
        shared = engine(batch=True)
        fresh = find_update_explanations(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            PATTERNS, subsets, num_steps=40,
        )
        _assert_equivalent(fresh, shared)

    def test_singular_wrapper_matches_engine(
        self, lr_model, encoder, X_train, german_train, sp_metric, test_ctx,
        subsets, engine, context,
    ):
        single = find_update_explanation(
            lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
            PATTERNS[0], subsets[0], num_steps=40, context=context,
        )
        _assert_equivalent([single], [engine(batch=True)[0]])


class TestEngineResult:
    def test_misaligned_inputs_rejected(self, engine, subsets,
                                        lr_model, encoder, X_train, german_train,
                                        sp_metric, test_ctx):
        with pytest.raises(ValueError, match="aligned"):
            find_update_explanations(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                PATTERNS, subsets[:-1],
            )
        with pytest.raises(ValueError, match="one entry per pattern"):
            find_update_explanations(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                PATTERNS, subsets, removal_bias_changes=[0.0],
            )

    def test_foreign_context_rejected(self, lr_model, encoder, X_train, german_train,
                                      sp_metric, test_ctx, subsets, context):
        other = lr_model.clone().fit(X_train, german_train.labels)
        with pytest.raises(ValueError, match="different model"):
            find_update_explanations(
                other, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                PATTERNS, subsets, context=context,
            )

    def test_empty_pattern_list(self, lr_model, encoder, X_train, german_train,
                                sp_metric, test_ctx, context):
        # Zero surviving explanations (e.g. an over-tight support threshold)
        # must yield an empty set on both paths, not a concatenate crash.
        for batch in (True, False):
            result = find_update_explanations(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                [], [], batch=batch, context=context,
            )
            assert len(result) == 0
            assert result.original_bias == pytest.approx(context.original_bias)

    def test_empty_subset_rejected(self, lr_model, encoder, X_train, german_train,
                                   sp_metric, test_ctx):
        with pytest.raises(ValueError, match="empty"):
            find_update_explanations(
                lr_model, encoder, X_train, german_train.labels, sp_metric, test_ctx,
                [PATTERNS[0]], [np.array([], dtype=np.int64)],
            )

    def test_set_protocol_and_timings(self, engine):
        result = engine(batch=True)
        assert len(result) == len(PATTERNS)
        assert [u.pattern for u in result] == PATTERNS
        assert result[0] is result.updates[0]
        assert result.search_seconds > 0
        assert result.verify_seconds == 0.0
        assert result.metric_name == "statistical_parity"

    def test_render_and_records(self, engine):
        result = engine(batch=True, removal_bias_changes=[-0.05] * len(PATTERNS),
                        removal_sources=["estimated"] * len(PATTERNS))
        text = result.render()
        assert "Update-based explanations" in text
        assert "vs removal" in text
        records = result.to_records()
        json.dumps(records)
        assert all(r["removal_bias_source"] == "estimated" for r in records)

    def test_render_without_removal_reference(self, engine):
        assert "n/a" in engine(batch=True).render()
