"""Tests for repro.updates.perturbation."""

import numpy as np
import pytest

from repro.datasets.encoding import TabularEncoder
from repro.tabular import Table
from repro.updates import apply_delta, describe_update


@pytest.fixture
def encoder_and_X():
    table = Table.from_dict(
        {
            "gender": ["F", "F", "M"],
            "age": [50.0, 60.0, 30.0],
        }
    )
    encoder = TabularEncoder().fit(table)
    return encoder, encoder.transform(table)


class TestApplyDelta:
    def test_only_selected_rows_change(self, encoder_and_X):
        _, X = encoder_and_X
        delta = np.full(X.shape[1], 0.5)
        out = apply_delta(X, np.array([0]), delta)
        np.testing.assert_array_equal(out[1], X[1])
        np.testing.assert_allclose(out[0], X[0] + 0.5)

    def test_original_untouched(self, encoder_and_X):
        _, X = encoder_and_X
        before = X.copy()
        apply_delta(X, np.array([0, 1]), np.ones(X.shape[1]))
        np.testing.assert_array_equal(X, before)


class TestDescribeUpdate:
    def test_categorical_flip_reported(self, encoder_and_X):
        encoder, X = encoder_and_X
        before = X[:2]
        after = before.copy()
        group = encoder.group_for("gender")
        after[:, group.start:group.stop] = 0.0
        male = group.categories.index("M")
        after[:, group.start + male] = 1.0
        changes = describe_update(encoder, before, after)
        assert changes["gender"] == ("F", "M")

    def test_numeric_shift_reported(self, encoder_and_X):
        encoder, X = encoder_and_X
        before = X[:2]
        after = before.copy()
        group = encoder.group_for("age")
        after[:, group.start] -= 2.0  # standardized units
        changes = describe_update(encoder, before, after)
        assert "age" in changes
        assert float(changes["age"][1]) < float(changes["age"][0])

    def test_no_change_empty(self, encoder_and_X):
        encoder, X = encoder_and_X
        assert describe_update(encoder, X, X.copy()) == {}

    def test_shape_mismatch(self, encoder_and_X):
        encoder, X = encoder_and_X
        with pytest.raises(ValueError, match="identical shapes"):
            describe_update(encoder, X[:1], X[:2])

    def test_modal_category_on_mixed_rows(self, encoder_and_X):
        encoder, X = encoder_and_X
        changes = describe_update(encoder, X, X[::-1].copy())
        # Majority gender before and after is F either way -> no change row.
        assert "gender" not in changes
