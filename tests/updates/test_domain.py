"""Tests for repro.updates.domain."""

import numpy as np
import pytest

from repro.datasets.encoding import TabularEncoder
from repro.tabular import Table
from repro.updates import UpdateDomain


@pytest.fixture
def encoder_and_X():
    table = Table.from_dict(
        {
            "color": ["red", "blue", "red", "green"],
            "size": [1.0, 2.0, 3.0, 4.0],
        }
    )
    encoder = TabularEncoder().fit(table)
    return encoder, encoder.transform(table)


class TestMask:
    def test_all_features_by_default(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X)
        assert domain.mask.all()

    def test_restricted_features(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X, allowed_features={"size"})
        group = encoder.group_for("size")
        expected = np.zeros(encoder.num_features, dtype=bool)
        expected[group.start] = True
        np.testing.assert_array_equal(domain.mask, expected)

    def test_unknown_feature_rejected(self, encoder_and_X):
        encoder, X = encoder_and_X
        with pytest.raises(ValueError, match="unknown features"):
            UpdateDomain(encoder, X, allowed_features={"nope"})

    def test_empty_subset_rejected(self, encoder_and_X):
        encoder, X = encoder_and_X
        with pytest.raises(ValueError, match="empty subset"):
            UpdateDomain(encoder, X[:0])


class TestProjectDelta:
    def test_zeroes_untouchable(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X, allowed_features={"size"})
        delta = np.ones(encoder.num_features)
        projected = domain.project_delta(delta)
        group = encoder.group_for("color")
        assert (projected[group.start:group.stop] == 0).all()

    def test_numeric_delta_keeps_rows_in_range(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X, allowed_features={"size"})
        group = encoder.group_for("size")
        delta = np.zeros(encoder.num_features)
        delta[group.start] = 100.0
        projected = domain.project_delta(delta)
        shifted = X[:, group.start] + projected[group.start]
        hi = (group.maximum - group.mean) / group.std
        assert (shifted <= hi + 1e-9).all()

    def test_categorical_delta_bounded(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X)
        group = encoder.group_for("color")
        delta = np.zeros(encoder.num_features)
        delta[group.start] = 5.0
        delta[group.start + 1] = -5.0
        projected = domain.project_delta(delta)
        block = X[:, group.start:group.stop] + projected[group.start:group.stop]
        assert block.min() >= -1e-9
        assert block.max() <= 1.0 + 1e-9

    def test_snap_rows_delegates_to_encoder(self, encoder_and_X):
        encoder, X = encoder_and_X
        domain = UpdateDomain(encoder, X)
        perturbed = X + 0.3
        snapped = domain.snap_rows(perturbed)
        group = encoder.group_for("color")
        block = snapped[:, group.start:group.stop]
        np.testing.assert_array_equal(block.sum(axis=1), np.ones(len(X)))
