"""Tests for repro.tabular.csv_io."""

import pytest

from repro.tabular import Table, read_csv, write_csv


@pytest.fixture
def table():
    return Table.from_dict({"x": [1.5, 2.5], "name": ["a", "b"]})


class TestRoundTrip:
    def test_write_then_read(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.to_dict() == table.to_dict()

    def test_numeric_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        t = read_csv(path)
        assert t.is_numeric("a")
        assert t.is_categorical("b")

    def test_forced_numeric_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        t = read_csv(path, numeric_columns={"a"})
        assert t.is_numeric("a")

    def test_mixed_column_stays_categorical(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\nx\n")
        t = read_csv(path)
        assert t.is_categorical("a")


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            read_csv(path)
