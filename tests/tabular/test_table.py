"""Tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular import CategoricalColumn, NumericColumn, Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "age": [30.0, 50.0, 45.0, 22.0],
            "gender": ["F", "M", "F", "M"],
        }
    )


class TestConstruction:
    def test_from_dict_infers_types(self, table):
        assert table.is_numeric("age")
        assert table.is_categorical("gender")

    def test_bool_values_become_categorical(self):
        t = Table.from_dict({"flag": [True, False]})
        assert t.is_categorical("flag")
        assert t.distinct("flag") == ["False", "True"]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="inconsistent lengths"):
            Table([NumericColumn("a", [1.0]), NumericColumn("b", [1.0, 2.0])])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table([NumericColumn("a", [1.0]), NumericColumn("a", [2.0])])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one column"):
            Table([])


class TestAccess:
    def test_num_rows_len(self, table):
        assert table.num_rows == len(table) == 4

    def test_contains(self, table):
        assert "age" in table
        assert "nope" not in table

    def test_missing_column_raises(self, table):
        with pytest.raises(KeyError, match="no column named"):
            table.column("nope")

    def test_distinct(self, table):
        assert table.distinct("gender") == ["F", "M"]

    def test_row(self, table):
        assert table.row(1) == {"age": 50.0, "gender": "M"}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(10)


class TestRowOps:
    def test_filter(self, table):
        mask = table.column("age").greater_equal_mask(45)
        sub = table.filter(mask)
        assert sub.num_rows == 2
        assert sub.column("gender").to_list() == ["M", "F"]

    def test_filter_wrong_shape(self, table):
        with pytest.raises(ValueError, match="mask shape"):
            table.filter(np.ones(3, dtype=bool))

    def test_take_order(self, table):
        sub = table.take(np.array([3, 0]))
        assert sub.column("age").to_list() == [22.0, 30.0]

    def test_select_and_drop(self, table):
        assert table.select(["gender"]).column_names == ["gender"]
        assert table.drop(["gender"]).column_names == ["age"]

    def test_drop_missing_raises(self, table):
        with pytest.raises(KeyError, match="missing"):
            table.drop(["nope"])

    def test_with_column_replaces(self, table):
        t2 = table.with_column(NumericColumn("age", [1.0, 2.0, 3.0, 4.0]))
        assert t2.column("age").to_list() == [1.0, 2.0, 3.0, 4.0]
        assert table.column("age").to_list()[0] == 30.0  # original untouched

    def test_with_column_wrong_length(self, table):
        with pytest.raises(ValueError, match="length"):
            table.with_column(NumericColumn("z", [1.0]))

    def test_concat(self, table):
        combined = table.concat(table)
        assert combined.num_rows == 8
        assert combined.column("gender").to_list()[:4] == ["F", "M", "F", "M"]

    def test_concat_schema_mismatch(self, table):
        other = Table.from_dict({"age": [1.0]})
        with pytest.raises(ValueError, match="schema"):
            table.concat(other)

    def test_replicate(self, table):
        assert table.replicate(3).num_rows == 12

    def test_replicate_invalid(self, table):
        with pytest.raises(ValueError, match=">= 1"):
            table.replicate(0)


class TestAggregation:
    def test_group_by_count_categorical(self, table):
        assert table.group_by_count("gender") == {"F": 2, "M": 2}

    def test_group_by_count_numeric(self):
        t = Table.from_dict({"x": [1.0, 1.0, 2.0]})
        assert t.group_by_count("x") == {1.0: 2, 2.0: 1}

    def test_to_dict_roundtrip(self, table):
        data = table.to_dict()
        rebuilt = Table.from_dict(data)
        assert rebuilt.to_dict() == data
