"""Tests for repro.tabular.columns."""

import numpy as np
import pytest

from repro.tabular import CategoricalColumn, NumericColumn


class TestNumericColumn:
    def test_length_and_values(self):
        col = NumericColumn("x", [1, 2, 3])
        assert len(col) == 3
        np.testing.assert_array_equal(col.values, [1.0, 2.0, 3.0])

    def test_comparison_masks(self):
        col = NumericColumn("x", [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(col.less_mask(3), [True, True, False, False])
        np.testing.assert_array_equal(col.less_equal_mask(3), [True, True, True, False])
        np.testing.assert_array_equal(col.greater_mask(2), [False, False, True, True])
        np.testing.assert_array_equal(col.greater_equal_mask(2), [False, True, True, True])
        np.testing.assert_array_equal(col.equals_mask(2), [False, True, False, False])

    def test_take_preserves_order(self):
        col = NumericColumn("x", [10.0, 20.0, 30.0])
        taken = col.take(np.array([2, 0]))
        np.testing.assert_array_equal(taken.values, [30.0, 10.0])

    def test_distinct_sorted(self):
        col = NumericColumn("x", [3.0, 1.0, 3.0, 2.0])
        assert col.distinct() == [1.0, 2.0, 3.0]

    def test_min_max(self):
        col = NumericColumn("x", [5.0, -1.0, 3.0])
        assert col.min() == -1.0
        assert col.max() == 5.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            NumericColumn("x", np.zeros((2, 2)))


class TestCategoricalColumn:
    def test_dictionary_encoding_roundtrip(self):
        col = CategoricalColumn("c", ["b", "a", "b", "c"])
        assert col.to_list() == ["b", "a", "b", "c"]
        assert sorted(col.categories) == ["a", "b", "c"]

    def test_equals_mask(self):
        col = CategoricalColumn("c", ["x", "y", "x"])
        np.testing.assert_array_equal(col.equals_mask("x"), [True, False, True])

    def test_equals_mask_missing_value(self):
        col = CategoricalColumn("c", ["x", "y"])
        np.testing.assert_array_equal(col.equals_mask("nope"), [False, False])

    def test_distinct_only_present(self):
        col = CategoricalColumn(
            "c", codes=np.array([0, 0], dtype=np.int32), categories=["a", "b"]
        )
        assert col.distinct() == ["a"]

    def test_take(self):
        col = CategoricalColumn("c", ["a", "b", "c"])
        assert col.take(np.array([1])).to_list() == ["b"]

    def test_code_of(self):
        col = CategoricalColumn("c", ["a", "b"])
        assert col.code_of("b") == col.categories.index("b")
        assert col.code_of("zzz") == -1

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CategoricalColumn("c", codes=np.array([5], dtype=np.int32), categories=["a"])

    def test_requires_values_or_codes(self):
        with pytest.raises(ValueError, match="values or codes"):
            CategoricalColumn("c")

    def test_codes_without_categories_rejected(self):
        with pytest.raises(ValueError, match="categories"):
            CategoricalColumn("c", codes=np.array([0], dtype=np.int32))
