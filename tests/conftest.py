"""Shared fixtures: one small German pipeline reused across the suite.

Session-scoped because fitting models and factorizing Hessians repeatedly
would dominate test time; all fixtures are treated as read-only by tests.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression

# REPRO_SANITIZE=1 runs the whole suite against write-sanitized sessions:
# every fitted AuditSession is warmed and its shared arrays frozen, so an
# in-place mutation anywhere on the read path fails the offending test
# with "assignment destination is read-only" at the write site.
if os.environ.get("REPRO_SANITIZE") == "1":
    from repro.utils.freeze import install_session_sanitizer

    install_session_sanitizer()


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "keep_auto_gate: do not drop the miner's auto-projection row-count "
        "gate for this test (tests/mining/test_projection_equivalence.py)",
    )


@pytest.fixture(scope="session")
def german():
    # Seed chosen so the fitted model shows a clear positive statistical
    # parity violation (~0.22) — the regime every sign-convention test
    # assumes.  Other seeds are exercised in the generator tests.
    return load_german(800, seed=11)


@pytest.fixture(scope="session")
def german_split(german):
    return train_test_split(german, test_fraction=0.25, seed=1)


@pytest.fixture(scope="session")
def german_train(german_split):
    return german_split[0]


@pytest.fixture(scope="session")
def german_test(german_split):
    return german_split[1]


@pytest.fixture(scope="session")
def encoder(german_train):
    return TabularEncoder().fit(german_train.table)


@pytest.fixture(scope="session")
def X_train(encoder, german_train):
    return encoder.transform(german_train.table)


@pytest.fixture(scope="session")
def X_test(encoder, german_test):
    return encoder.transform(german_test.table)


@pytest.fixture(scope="session")
def lr_model(X_train, german_train):
    return LogisticRegression(l2_reg=1e-3).fit(X_train, german_train.labels)


@pytest.fixture(scope="session")
def test_ctx(X_test, german_test):
    return FairnessContext(
        X=X_test,
        y=german_test.labels,
        privileged=german_test.privileged_mask(),
        favorable_label=1,
    )


@pytest.fixture(scope="session")
def sp_metric():
    return get_metric("statistical_parity")


@pytest.fixture(scope="session")
def fo_estimator(lr_model, X_train, german_train, sp_metric, test_ctx):
    return make_estimator(
        "first_order", lr_model, X_train, german_train.labels, sp_metric, test_ctx
    )


@pytest.fixture(scope="session")
def so_estimator(lr_model, X_train, german_train, sp_metric, test_ctx):
    return make_estimator(
        "second_order", lr_model, X_train, german_train.labels, sp_metric, test_ctx
    )


@pytest.fixture(scope="session")
def retrain_estimator(lr_model, X_train, german_train, sp_metric, test_ctx):
    return make_estimator(
        "retrain", lr_model, X_train, german_train.labels, sp_metric, test_ctx
    )


@pytest.fixture(scope="session")
def tiny_xy():
    """A small, clearly separable synthetic problem for model unit tests."""
    rng = np.random.default_rng(0)
    n = 240
    X = rng.normal(size=(n, 4))
    logits = 1.6 * X[:, 0] - 1.1 * X[:, 1] + 0.4 * X[:, 2]
    y = (logits + rng.normal(scale=0.6, size=n) > 0).astype(np.int64)
    return X, y
