"""Tests for the from-scratch Local Outlier Factor."""

import numpy as np
import pytest

from repro.cluster import local_outlier_factor


class TestLOF:
    def test_isolated_point_flagged(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, size=(100, 2)), [[12.0, 12.0]]])
        lof = local_outlier_factor(X, n_neighbors=10)
        assert np.argmax(lof) == 100
        assert lof[100] > 1.5

    def test_uniform_cloud_scores_near_one(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(200, 2))
        lof = local_outlier_factor(X, n_neighbors=15)
        assert np.median(lof) == pytest.approx(1.0, abs=0.15)

    def test_duplicated_inlier_not_flagged(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(0, 1, size=(100, 2))] + [[[0.0, 0.0]]] * 5)
        lof = local_outlier_factor(X, n_neighbors=10)
        assert lof[-5:].max() < 1.5

    def test_shape(self):
        X = np.random.default_rng(3).normal(size=(50, 3))
        assert local_outlier_factor(X, 5).shape == (50,)

    def test_invalid_neighbors(self):
        X = np.zeros((10, 2))
        with pytest.raises(ValueError, match="n_neighbors"):
            local_outlier_factor(X, 0)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="more than"):
            local_outlier_factor(np.zeros((5, 2)), 10)
