"""Tests for the from-scratch diagonal GMM."""

import numpy as np
import pytest

from repro.cluster import GaussianMixture


@pytest.fixture
def blobs():
    rng = np.random.default_rng(1)
    X = np.vstack(
        [
            rng.normal([0, 0], [0.5, 0.5], size=(100, 2)),
            rng.normal([8, 8], [1.0, 1.0], size=(100, 2)),
        ]
    )
    labels = np.repeat([0, 1], 100)
    return X, labels


class TestGaussianMixture:
    def test_separates_blobs(self, blobs):
        X, truth = blobs
        gmm = GaussianMixture(2, seed=0).fit(X)
        predicted = gmm.predict(X)
        for g in (0, 1):
            values, counts = np.unique(predicted[truth == g], return_counts=True)
            assert counts.max() / counts.sum() > 0.97

    def test_weights_sum_to_one(self, blobs):
        X, _ = blobs
        gmm = GaussianMixture(2, seed=0).fit(X)
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_means_near_truth(self, blobs):
        X, _ = blobs
        gmm = GaussianMixture(2, seed=0).fit(X)
        for center in ([0, 0], [8, 8]):
            assert np.linalg.norm(gmm.means - center, axis=1).min() < 0.5

    def test_score_samples_higher_in_dense_region(self, blobs):
        X, _ = blobs
        gmm = GaussianMixture(2, seed=0).fit(X)
        inlier = gmm.score_samples(np.array([[0.0, 0.0]]))
        outlier = gmm.score_samples(np.array([[50.0, -50.0]]))
        assert inlier[0] > outlier[0]

    def test_variances_positive(self, blobs):
        X, _ = blobs
        gmm = GaussianMixture(2, seed=0).fit(X)
        assert (gmm.variances > 0).all()

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least"):
            GaussianMixture(10).fit(np.zeros((3, 2)))

    def test_invalid_components(self):
        with pytest.raises(ValueError, match="n_components"):
            GaussianMixture(0)

    def test_single_component_fits_global(self, blobs):
        X, _ = blobs
        gmm = GaussianMixture(1, seed=0).fit(X)
        np.testing.assert_allclose(gmm.means[0], X.mean(axis=0), atol=0.2)
