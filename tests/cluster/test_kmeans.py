"""Tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.cluster import KMeans


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(50, 2)) for c in centers])
    labels = np.repeat([0, 1, 2], 50)
    return X, labels


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        X, truth = blobs
        km = KMeans(3, seed=0).fit(X)
        # Clusters should be pure wrt ground truth (up to relabeling).
        for g in range(3):
            values, counts = np.unique(km.labels[truth == g], return_counts=True)
            assert counts.max() / counts.sum() > 0.98

    def test_centers_near_truth(self, blobs):
        X, _ = blobs
        km = KMeans(3, seed=0).fit(X)
        for true_center in [[0, 0], [10, 10], [-10, 10]]:
            distances = np.linalg.norm(km.centers - true_center, axis=1)
            assert distances.min() < 1.0

    def test_predict_matches_fit_labels(self, blobs):
        X, _ = blobs
        km = KMeans(3, seed=0).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels)

    def test_inertia_decreases_with_more_clusters(self, blobs):
        X, _ = blobs
        inertia2 = KMeans(2, seed=0).fit(X).inertia
        inertia6 = KMeans(6, seed=0).fit(X).inertia
        assert inertia6 < inertia2

    def test_deterministic_given_seed(self, blobs):
        X, _ = blobs
        a = KMeans(3, seed=5).fit(X)
        b = KMeans(3, seed=5).fit(X)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_single_cluster(self, blobs):
        X, _ = blobs
        km = KMeans(1, seed=0).fit(X)
        assert set(km.labels) == {0}
        np.testing.assert_allclose(km.centers[0], X.mean(axis=0), atol=1e-8)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least"):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_unfitted_predict(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            KMeans(2).predict(X)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="n_clusters"):
            KMeans(0)

    def test_duplicate_points_handled(self):
        X = np.ones((20, 3))
        km = KMeans(2, seed=0).fit(X)
        assert len(km.labels) == 20
