"""Tests for the benchmark rendering helpers."""

from repro.bench import render_series, render_table
from repro.bench.rendering import emit


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        text = render_table("My Table", ["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "=== My Table ===" in text
        assert "a" in text and "b" in text
        assert "2.5" in text and "x" in text

    def test_column_alignment(self):
        text = render_table("T", ["col", "x"], [["aaaa", 1], ["b", 22]])
        lines = [l for l in text.splitlines() if l and not l.startswith("===")]
        header, rule, row1, row2 = lines[:4]
        assert header.index("x") == row1.index("1") or len(row1) >= header.index("x")

    def test_note_rendered(self):
        text = render_table("T", ["a"], [[1]], note="hello")
        assert "note: hello" in text

    def test_empty_rows_ok(self):
        text = render_table("T", ["a", "b"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = render_table("T", ["v"], [[0.123456789]])
        assert "0.1235" in text


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series(
            "S", "x", [1, 2, 3], {"f": [0.1, 0.2, 0.3], "g": [1.0, 2.0, 3.0]}
        )
        lines = [l for l in text.splitlines() if l.strip() and not l.startswith(("===", "note"))]
        assert len(lines) == 2 + 3  # header + rule + 3 rows

    def test_custom_format(self):
        text = render_series("S", "x", [1], {"f": [0.123456]}, value_format="{:.2f}")
        assert "0.12" in text


class TestEmit:
    def test_writes_results_file(self, tmp_path, monkeypatch):
        import repro.bench.rendering as rendering

        monkeypatch.setattr(rendering, "_RESULTS_DIR", tmp_path)
        emit("hello world", filename="out.txt")
        assert (tmp_path / "out.txt").read_text() == "hello world\n"

    def test_no_file_when_filename_omitted(self, tmp_path, monkeypatch):
        import repro.bench.rendering as rendering

        monkeypatch.setattr(rendering, "_RESULTS_DIR", tmp_path)
        emit("just stdout")
        assert list(tmp_path.iterdir()) == []
