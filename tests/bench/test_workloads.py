"""Tests for the shared benchmark workload builders."""

import numpy as np
import pytest

from repro.bench import build_pipeline, coherent_subsets


@pytest.fixture(scope="module")
def bundle():
    return build_pipeline("german", "logistic_regression", n_rows=400, seed=11)


class TestBuildPipeline:
    def test_bundle_is_consistent(self, bundle):
        assert bundle.X_train.shape[0] == bundle.train.num_rows
        assert bundle.model.theta is not None
        assert bundle.test_ctx.X.shape[0] == bundle.test.num_rows

    def test_original_bias_matches_metric(self, bundle):
        assert bundle.original_bias == pytest.approx(
            bundle.metric.value(bundle.model, bundle.test_ctx)
        )

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_pipeline("nope")

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_pipeline("german", "nope")

    def test_sqf_flips_favorable_label(self):
        sqf = build_pipeline("sqf", n_rows=400, seed=0)
        assert sqf.test_ctx.favorable_label == 0

    def test_all_models_buildable(self):
        for model in ("svm", "neural_network"):
            b = build_pipeline("german", model, n_rows=200, seed=11)
            assert b.model.theta is not None


class TestCoherentSubsets:
    def test_count_and_bounds(self, bundle):
        subsets = coherent_subsets(bundle, 10, seed=0, min_size=15, max_fraction=0.3)
        assert len(subsets) == 10
        n = bundle.train.num_rows
        for idx in subsets:
            assert 15 <= len(idx) <= int(0.3 * n) + 1
            assert idx.min() >= 0 and idx.max() < n

    def test_sorted_unique_indices(self, bundle):
        for idx in coherent_subsets(bundle, 6, seed=1):
            assert len(np.unique(idx)) == len(idx)
            assert (np.diff(idx) > 0).all()

    def test_deterministic(self, bundle):
        a = coherent_subsets(bundle, 4, seed=3)
        b = coherent_subsets(bundle, 4, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_alternates_coherent_and_random(self, bundle):
        """Even indices come from predicates (coherent); the generator must
        produce both kinds without exhausting its attempt budget."""
        subsets = coherent_subsets(bundle, 8, seed=5)
        assert len(subsets) == 8
