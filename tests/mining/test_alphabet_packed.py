"""Out-of-core (packed, block-streamed) alphabet mode.

The packed build streams row blocks off the table into per-predicate
packed buffers; it must produce bit-identical tidlists to the in-memory
boolean build, survive edits through the same patch path, refuse the
boolean-mask consumers (lattice, delta replay), and account its block
streams.
"""

import numpy as np
import pytest

from repro.datasets import random_edit
from repro.mining.alphabet import PredicateAlphabet
from repro.mining.bitset import unpack_rows

TAU = 0.05


@pytest.fixture(scope="module")
def both_alphabets(german_train):
    plain = PredicateAlphabet(german_train.table, TAU, 4, None)
    packed = PredicateAlphabet(german_train.table, TAU, 4, None, packed=True, block_rows=64)
    return plain, packed


class TestPackedBuildEquivalence:
    def test_same_predicates_and_masks(self, both_alphabets):
        plain, packed = both_alphabets
        assert packed.packed and not plain.packed
        assert [p for p, _ in packed.entries] == [p for p, _ in plain.entries]
        assert packed.num_generated == plain.num_generated
        for (_, bool_mask), (_, packed_mask) in zip(plain.entries, packed.entries):
            np.testing.assert_array_equal(
                unpack_rows(packed_mask, packed.num_rows), bool_mask
            )

    def test_same_miner_view(self, both_alphabets):
        plain, packed = both_alphabets
        plain_preds, plain_tids = plain.miner_items()
        packed_preds, packed_tids = packed.miner_items()
        assert packed_preds == plain_preds
        np.testing.assert_array_equal(packed_tids, plain_tids)

    def test_block_streams_accounted(self, german_train):
        alphabet = PredicateAlphabet(
            german_train.table, TAU, 4, None, packed=True, block_rows=256
        )
        expected_blocks = -(-german_train.table.num_rows // 256)
        assert alphabet._stats["block_streams"] == expected_blocks

    def test_block_rows_must_be_byte_aligned(self, german_train):
        with pytest.raises(ValueError, match="multiple of 8"):
            PredicateAlphabet(german_train.table, TAU, 4, None, packed=True, block_rows=100)


class TestPackedEdits:
    @pytest.mark.parametrize("kind", ["remove", "add"])
    def test_apply_edit_matches_reevaluation(self, german_train, kind):
        alphabet = PredicateAlphabet(
            german_train.table, TAU, 4, None, packed=True, block_rows=64
        )
        edit = random_edit(german_train, kind, count=25, seed=5)
        edited = german_train.apply_edit(edit)
        alphabet.apply_edit(edit, edited.table)
        assert alphabet.num_rows == edited.num_rows
        for predicate, mask in alphabet._evaluated.items():
            np.testing.assert_array_equal(
                unpack_rows(mask, alphabet.num_rows), predicate.mask(edited.table)
            )

    def test_edited_packed_equals_edited_plain(self, german_train):
        plain = PredicateAlphabet(german_train.table, TAU, 4, None)
        packed = PredicateAlphabet(german_train.table, TAU, 4, None, packed=True)
        edit = random_edit(german_train, "remove", count=30, seed=9)
        edited = german_train.apply_edit(edit)
        plain.apply_edit(edit, edited.table)
        packed.apply_edit(edit, edited.table)
        assert [p for p, _ in packed.entries] == [p for p, _ in plain.entries]
        _, plain_tids = plain.miner_items()
        _, packed_tids = packed.miner_items()
        np.testing.assert_array_equal(packed_tids, plain_tids)


class TestBooleanConsumersRefuse:
    def test_lattice_refuses_packed_alphabet(self, german_train, fo_estimator):
        from repro.patterns.lattice import compute_candidates

        packed = PredicateAlphabet(german_train.table, TAU, 4, None, packed=True)
        with pytest.raises(ValueError, match="packed"):
            compute_candidates(
                german_train.table, fo_estimator,
                support_threshold=TAU, max_predicates=2, alphabet=packed,
            )

    def test_delta_replay_refuses_packed_alphabet(self, german_train):
        from repro.core.delta import replay_geometry

        packed = PredicateAlphabet(german_train.table, TAU, 4, None, packed=True)
        with pytest.raises(ValueError, match="packed"):
            replay_geometry(packed, support_threshold=TAU)
