"""AlphabetCache: key normalization, build accounting, and the frozen language.

Two contracts live here:

* **keying** — ``get()`` normalizes ``exclude_features`` before keying, so
  a list, a tuple in another order, a set, and repeated calls all hit one
  cache entry (``alphabet_builds`` is the witness), and a single name is
  one column, never a character set;
* **edits** — ``apply_edit`` patches masks in place under the *frozen*
  pattern language: the predicate set (including data-derived bin edges)
  is identical before and after, each patched mask equals evaluating the
  original predicate against the edited table, a previously-built miner
  view is re-packed rather than rebuilt, and a relabel-only edit is a
  structural no-op.
"""

import numpy as np
import pytest

from repro.datasets import DataEdit, random_edit
from repro.mining import AlphabetCache, pack_rows

TAU = 0.05


@pytest.fixture()
def cache(german_train):
    return AlphabetCache(german_train.table)


class TestKeyNormalization:
    def test_equivalent_exclude_spellings_share_one_entry(self, cache):
        spellings = [
            ["gender", "age"],
            ("age", "gender"),
            {"gender", "age"},
            frozenset({"age", "gender"}),
        ]
        alphabets = [cache.get(TAU, exclude_features=s) for s in spellings]
        assert all(a is alphabets[0] for a in alphabets)
        assert cache.stats["alphabet_builds"] == 1

    def test_none_and_empty_share_one_entry(self, cache):
        assert cache.get(TAU) is cache.get(TAU, exclude_features=None)
        assert cache.get(TAU) is cache.get(TAU, exclude_features=[])
        assert cache.stats["alphabet_builds"] == 1

    def test_single_name_is_a_column_not_a_character_set(self, cache):
        by_name = cache.get(TAU, exclude_features="age")
        by_list = cache.get(TAU, exclude_features=["age"])
        assert by_name is by_list
        assert cache.stats["alphabet_builds"] == 1
        # The excluded *column* is gone; no other column was touched by
        # its letters ("a", "g", "e" prefix-match several German columns).
        features = {p.feature for p, _ in by_name.entries}
        assert "age" not in features
        assert any(f.startswith("a") and f != "age" for f in features)

    def test_distinct_parameters_build_separately(self, cache):
        cache.get(TAU)
        cache.get(TAU, exclude_features="age")
        cache.get(0.10)
        cache.get(TAU, num_bins=6)
        assert cache.stats["alphabet_builds"] == 4

    def test_foreign_table_refused(self, cache, german_test):
        with pytest.raises(ValueError, match="different table"):
            cache.check_table(german_test.table)


class TestFrozenLanguageUnderEdits:
    def test_predicate_set_is_frozen(self, cache, german_train):
        """Row edits never mint or retire predicate *specs* (bin edges stay)."""
        alphabet = cache.get(TAU)
        specs_before = set(alphabet._evaluated)
        edit = random_edit(german_train, "remove", count=25, seed=5)
        cache.apply_edit(edit, german_train.apply_edit(edit).table)
        assert set(alphabet._evaluated) == specs_before

    def test_patched_masks_match_reevaluation(self, cache, german_train):
        """mask[keep] ++ mask(added) == predicate.mask(edited table), exactly."""
        alphabet = cache.get(TAU)
        edited = german_train.apply_edit(
            edit := random_edit(german_train, "remove", count=25, seed=5)
        )
        cache.apply_edit(edit, edited.table)
        for predicate, mask in alphabet._evaluated.items():
            np.testing.assert_array_equal(mask, predicate.mask(edited.table))

    def test_patched_masks_match_reevaluation_with_adds(self, cache, german_train):
        alphabet = cache.get(TAU)
        edit = random_edit(german_train, "add", count=30, seed=7)
        edited = german_train.apply_edit(edit)
        cache.apply_edit(edit, edited.table)
        assert alphabet.num_rows == edited.num_rows
        for predicate, mask in alphabet._evaluated.items():
            np.testing.assert_array_equal(mask, predicate.mask(edited.table))

    def test_relabel_only_edit_is_a_structural_noop(self, cache, german_train):
        alphabet = cache.get(TAU)
        masks_before = {p: m for p, m in alphabet._evaluated.items()}
        edit = random_edit(german_train, "relabel", count=10, seed=5)
        edited = german_train.apply_edit(edit)
        # Relabel shares the table instance, so the identity check keeps passing.
        assert edited.table is german_train.table
        cache.apply_edit(edit, edited.table)
        for predicate, mask in alphabet._evaluated.items():
            assert mask is masks_before[predicate]
        assert cache.stats["alphabet_patches"] == 0
        cache.check_table(edited.table)

    def test_miner_view_repacked_not_rebuilt(self, cache, german_train):
        alphabet = cache.get(TAU)
        alphabet.miner_items()
        assert cache.stats["tidlist_builds"] == 1
        edit = random_edit(german_train, "remove", count=25, seed=5)
        edited = german_train.apply_edit(edit)
        cache.apply_edit(edit, edited.table)
        assert cache.stats["tidlist_builds"] == 1
        assert cache.stats["tidlist_patches"] == 1
        # The patched pack equals independently re-sorting (supports moved,
        # so the frequency-ascending order may too) and re-packing the
        # patched masks.  (Not a fresh cache on the edited table: that
        # would re-derive bin edges — the frozen language forbids it.)
        ordered = sorted(
            alphabet.entries, key=lambda pair: (int(pair[1].sum()), pair[0].sort_key())
        )
        patched_preds, patched_tids = alphabet.miner_items()
        assert patched_preds == [p for p, _ in ordered]
        np.testing.assert_array_equal(
            patched_tids, pack_rows(np.stack([m for _, m in ordered]))
        )

    def test_entry_crossing_invalidates_pair_skeleton(self, cache, german_train):
        """If the support filter moves an entry, the cached skeleton is dropped."""
        alphabet = cache.get(TAU)
        alphabet.pair_skeleton()
        assert alphabet._skeleton is not None
        # Remove precisely the supporting rows of the thinnest entry so it
        # falls below τ — a guaranteed entry-list change.
        thinnest = min(alphabet.entries, key=lambda pair: pair[1].sum())
        drop = np.flatnonzero(thinnest[1])[: int(thinnest[1].sum() * 0.6)]
        edit = DataEdit.remove(drop)
        cache.apply_edit(edit, german_train.apply_edit(edit).table)
        assert thinnest[0] not in [p for p, _ in alphabet.entries]
        assert alphabet._skeleton is None

    def test_stable_edit_keeps_pair_skeleton(self, cache, german_train):
        alphabet = cache.get(TAU)
        entries_before = [p for p, _ in alphabet.entries]
        skeleton = alphabet.pair_skeleton()
        edit = random_edit(german_train, "remove", count=8, seed=3)
        cache.apply_edit(edit, german_train.apply_edit(edit).table)
        assert [p for p, _ in alphabet.entries] == entries_before
        assert alphabet.pair_skeleton() is skeleton

    def test_row_count_mismatch_rejected(self, cache, german_train):
        alphabet = cache.get(TAU)
        edit = DataEdit.remove([0, 1, 2])
        with pytest.raises(ValueError, match="rows"):
            alphabet.apply_edit(edit, german_train.table)  # un-edited table
