"""Fixtures for the closed-pattern mining subsystem.

The equivalence suite runs both candidate engines under the paper's
default estimator configuration (second-order, series variant, smooth
evaluation) — the setup whose engine equivalence is pinned — on the shared
German fixture and on a small synthetic dataset with a planted bias
mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets._synth import bernoulli, categorical
from repro.datasets.encoding import TabularEncoder
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.tabular import Table


@pytest.fixture(scope="session")
def german_series_estimator(lr_model, X_train, german_train, sp_metric, test_ctx):
    """The paper's default search estimator on the shared German pipeline."""
    return make_estimator(
        "second_order", lr_model, X_train, german_train.labels, sp_metric, test_ctx,
        variant="series", evaluation="smooth",
    )


def _subset_table(table: Table, rows: np.ndarray) -> Table:
    return Table.from_dict(
        {name: table.column(name).values[rows] for name in table.column_names}
    )


@pytest.fixture(scope="session")
def synth_setup():
    """(train_table, estimator) for a synthetic set with planted bias.

    Group B members with low scores are systematically denied — the
    coherent biased subgroup both engines must surface identically.
    """
    rng = np.random.default_rng(5)
    n = 600
    group = categorical(rng, n, ["A", "B"], [0.6, 0.4])
    region = categorical(rng, n, ["North", "South", "East"], [0.4, 0.35, 0.25])
    score = rng.normal(50, 12, size=n).round(1)
    tenure = rng.integers(0, 6, size=n).astype(float)
    is_b = group == "B"
    planted = is_b & (score < 45)
    logits = 0.08 * (score - 50) + 0.4 * (tenure - 2) - 2.2 * planted - 0.4 * is_b
    y = bernoulli(logits, rng)
    table = Table.from_dict(
        {"group": group, "region": region, "score": score, "tenure": tenure}
    )
    order = np.random.default_rng(0).permutation(n)
    train_rows, test_rows = order[:450], order[450:]
    train_table = _subset_table(table, train_rows)
    test_table = _subset_table(table, test_rows)
    encoder = TabularEncoder().fit(train_table)
    X_train = encoder.transform(train_table)
    model = LogisticRegression(l2_reg=1e-3).fit(X_train, y[train_rows])
    ctx = FairnessContext(
        X=encoder.transform(test_table),
        y=y[test_rows],
        privileged=test_table.column("group").values == "A",
        favorable_label=1,
    )
    estimator = make_estimator(
        "second_order", model, X_train, y[train_rows],
        get_metric("statistical_parity"), ctx,
        variant="series", evaluation="smooth",
    )
    return train_table, estimator
