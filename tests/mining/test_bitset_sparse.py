"""Density-adaptive tidlist representations of ``repro.mining.bitset``.

Every operation the miner dispatches on — intersection, popcount,
coverage, keying — must give identical answers whether a tidlist arrives
as a packed uint8 row or as a sorted index array, across the degenerate
shapes (empty, singleton, all-rows) and across the density threshold.
The int64 regression pins index dtype selection past the int32 range.
"""

import numpy as np
import pytest

from repro.mining.bitset import (
    SPARSE_DENSITY,
    bit_test,
    covers_all,
    extent_key,
    galloping_intersect,
    intersect,
    is_sparse,
    pack_rows,
    popcount,
    sparse_eligible,
    sparse_index_dtype,
    tid_count,
    tid_key,
    to_packed,
    to_sparse,
    unpack_rows,
)

N = 203  # deliberately not a multiple of 8, so padding bits exist


def random_mask(rng, density):
    return rng.random(N) < density


def as_both(mask):
    """(packed, sparse) forms of one boolean row mask."""
    packed = pack_rows(mask)
    return packed, np.flatnonzero(mask).astype(np.int32)


EDGE_MASKS = [
    np.zeros(N, dtype=bool),                      # empty
    np.eye(1, N, 7, dtype=bool)[0],               # singleton
    np.ones(N, dtype=bool),                       # all rows
]


class TestRepresentationRoundTrip:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.2, 0.9, 1.0])
    def test_to_sparse_to_packed_round_trip(self, density):
        rng = np.random.default_rng(int(density * 100))
        mask = random_mask(rng, density)
        packed, sparse = as_both(mask)
        np.testing.assert_array_equal(to_sparse(packed, N), sparse)
        np.testing.assert_array_equal(to_packed(sparse, N), packed)
        # Converting a tidlist to the form it is already in is the identity.
        np.testing.assert_array_equal(to_sparse(sparse, N), sparse)
        np.testing.assert_array_equal(to_packed(packed, N), packed)

    @pytest.mark.parametrize("mask", EDGE_MASKS, ids=["empty", "singleton", "all-rows"])
    def test_edge_masks(self, mask):
        packed, sparse = as_both(mask)
        assert is_sparse(sparse) and not is_sparse(packed)
        assert tid_count(sparse) == tid_count(packed) == int(mask.sum())
        np.testing.assert_array_equal(unpack_rows(to_packed(sparse, N), N), mask)
        np.testing.assert_array_equal(to_sparse(packed, N), np.flatnonzero(mask))


class TestDispatchEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_intersect_all_representation_pairs(self, seed):
        rng = np.random.default_rng(seed)
        a_mask = random_mask(rng, 0.04 + 0.2 * rng.random())
        b_mask = random_mask(rng, 0.04 + 0.2 * rng.random())
        expected = np.flatnonzero(a_mask & b_mask)
        a_packed, a_sparse = as_both(a_mask)
        b_packed, b_sparse = as_both(b_mask)
        for a in (a_packed, a_sparse):
            for b in (b_packed, b_sparse):
                got = intersect(a, b)
                got_rows = to_sparse(got, N) if not is_sparse(got) else got
                np.testing.assert_array_equal(got_rows, expected)
                assert popcount(got) == expected.size

    @pytest.mark.parametrize("mask", EDGE_MASKS, ids=["empty", "singleton", "all-rows"])
    def test_intersect_edge_masks(self, mask):
        rng = np.random.default_rng(9)
        other = random_mask(rng, 0.3)
        expected = np.flatnonzero(mask & other)
        for a in as_both(mask):
            for b in as_both(other):
                got = intersect(a, b)
                got_rows = got if is_sparse(got) else to_sparse(got, N)
                np.testing.assert_array_equal(got_rows, expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_covers_all_both_extent_forms(self, seed):
        rng = np.random.default_rng(100 + seed)
        items = pack_rows(np.stack([random_mask(rng, 0.5) for _ in range(6)]))
        extent_mask = random_mask(rng, 0.05)
        packed, sparse = as_both(extent_mask)
        np.testing.assert_array_equal(covers_all(items, sparse), covers_all(items, packed))

    def test_covers_all_empty_sparse_extent_is_vacuous(self):
        rng = np.random.default_rng(3)
        items = pack_rows(np.stack([random_mask(rng, 0.5) for _ in range(4)]))
        empty = np.zeros(0, dtype=np.int32)
        assert covers_all(items, empty).all()

    def test_bit_test_matches_unpacked_mask(self):
        rng = np.random.default_rng(11)
        mask = random_mask(rng, 0.4)
        packed = pack_rows(mask)
        probes = rng.integers(0, N, size=50)
        np.testing.assert_array_equal(bit_test(packed, probes), mask[probes])

    @pytest.mark.parametrize("seed", range(6))
    def test_galloping_intersect_matches_intersect1d(self, seed):
        rng = np.random.default_rng(200 + seed)
        a = np.unique(rng.integers(0, 5000, size=rng.integers(0, 80)))
        b = np.unique(rng.integers(0, 5000, size=rng.integers(0, 800)))
        np.testing.assert_array_equal(galloping_intersect(a, b), np.intersect1d(a, b))
        np.testing.assert_array_equal(galloping_intersect(b, a), np.intersect1d(a, b))


class TestKeys:
    def test_tid_key_equal_across_representations(self):
        rng = np.random.default_rng(21)
        sparse_mask = random_mask(rng, 1.0 / (2 * SPARSE_DENSITY))
        dense_mask = random_mask(rng, 0.5)
        for mask in (sparse_mask, dense_mask, *EDGE_MASKS):
            packed, sparse = as_both(mask)
            assert tid_key(packed, N) == tid_key(sparse, N)

    def test_tid_key_distinguishes_distinct_extents(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        b = np.array([1, 2, 4], dtype=np.int32)
        assert tid_key(a, N) != tid_key(b, N)

    def test_dense_tid_key_is_the_packed_extent_key(self):
        rng = np.random.default_rng(22)
        mask = random_mask(rng, 0.5)
        packed, _ = as_both(mask)
        assert tid_key(packed, N) == extent_key(packed)


class TestDensityRule:
    def test_sparse_eligibility_threshold(self):
        assert sparse_eligible(0, 64)
        assert sparse_eligible(2, 64)
        assert not sparse_eligible(3, 64)
        # Exactly on the boundary counts as sparse.
        assert sparse_eligible(100, 100 * SPARSE_DENSITY)

    def test_index_dtype_pins_int64_past_int32_range(self):
        """Regression: a >2^31-row table must not wrap its row indices."""
        assert sparse_index_dtype(2**31 - 1) == np.int32
        assert sparse_index_dtype(2**31) == np.int64
        assert sparse_index_dtype(10**10) == np.int64

    def test_popcount_and_tid_count_dispatch(self):
        sparse = np.arange(17, dtype=np.int64)
        assert popcount(sparse) == 17
        assert tid_count(sparse) == 17
        packed = pack_rows(np.ones(17, dtype=bool))
        assert popcount(packed) == 17
        assert tid_count(packed) == 17
        # 0-d / scalar uint8 inputs keep their historical behavior.
        assert popcount(np.uint8(255)) == 8
