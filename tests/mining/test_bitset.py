"""Unit tests for the packed-bitset primitives."""

import numpy as np
import pytest

from repro.mining.bitset import (
    covers_all,
    extent_key,
    intersect,
    pack_rows,
    packed_width,
    popcount,
    unpack_rows,
)


def random_masks(m, n, seed=0, p=0.4):
    return np.random.default_rng(seed).random((m, n)) < p


class TestPackUnpack:
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 100, 1000])
    def test_roundtrip_matrix(self, n):
        masks = random_masks(5, n, seed=n)
        packed = pack_rows(masks)
        assert packed.dtype == np.uint8
        assert packed.shape == (5, packed_width(n))
        np.testing.assert_array_equal(unpack_rows(packed, n), masks)

    def test_roundtrip_single_row(self):
        mask = random_masks(1, 37)[0]
        packed = pack_rows(mask)
        assert packed.shape == (packed_width(37),)
        np.testing.assert_array_equal(unpack_rows(packed, 37), mask)

    def test_padding_bits_are_zero(self):
        mask = np.ones(9, dtype=bool)
        packed = pack_rows(mask)
        assert packed[1] == 0b10000000  # row 8 set, pad bits clear

    def test_matches_pattern_stats_layout(self):
        """PatternStats packs with np.packbits; the miner must agree so its
        extents slot into PatternStats unchanged."""
        mask = random_masks(1, 123, seed=3)[0]
        np.testing.assert_array_equal(pack_rows(mask), np.packbits(mask))

    def test_non_boolean_rejected(self):
        with pytest.raises(ValueError, match="boolean"):
            pack_rows(np.zeros((2, 8), dtype=np.uint8))

    def test_unpack_wrong_dtype_rejected(self):
        with pytest.raises(ValueError, match="uint8"):
            unpack_rows(np.zeros((2, 2), dtype=np.int64), 16)

    def test_unpack_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="does not cover"):
            unpack_rows(np.zeros((2, 2), dtype=np.uint8), 100)

    def test_packed_width(self):
        assert packed_width(0) == 0
        assert packed_width(1) == 1
        assert packed_width(8) == 1
        assert packed_width(9) == 2
        with pytest.raises(ValueError, match="non-negative"):
            packed_width(-1)


class TestPopcount:
    @pytest.mark.parametrize("n", [5, 8, 63, 200])
    def test_matches_mask_sum(self, n):
        masks = random_masks(7, n, seed=n)
        counts = popcount(pack_rows(masks))
        np.testing.assert_array_equal(counts, masks.sum(axis=1))

    def test_scalar_for_single_row(self):
        mask = random_masks(1, 50, seed=1)[0]
        count = popcount(pack_rows(mask))
        assert isinstance(count, int)
        assert count == int(mask.sum())

    def test_zero_dimensional_byte(self):
        count = popcount(np.uint8(0b10110001))
        assert isinstance(count, int) and count == 4
        assert popcount(np.uint8(0)) == 0

    def test_empty_row(self):
        count = popcount(np.zeros(0, dtype=np.uint8))
        assert isinstance(count, int) and count == 0

    def test_zero_width_matrix(self):
        """(m, 0) tidlists — a zero-row table — count zero bits per row."""
        counts = popcount(np.zeros((5, 0), dtype=np.uint8))
        assert counts.shape == (5,) and counts.dtype == np.int64
        np.testing.assert_array_equal(counts, np.zeros(5, dtype=np.int64))

    @pytest.mark.parametrize(
        "shape", [(), (0,), (7,), (3, 0), (4, 9)], ids=str
    )
    def test_lut_agrees_with_native(self, monkeypatch, shape):
        """The byte-LUT fallback (NumPy 1.x) matches np.bitwise_count exactly.

        Both paths must agree on values, return type, and dtype for every
        input shape — the CI matrix runs a real NumPy 1.x leg, but this
        pins the agreement even when only one line is installed.
        """
        import repro.mining.bitset as bitset

        rng = np.random.default_rng(sum(shape) + len(shape))
        packed = rng.integers(0, 256, size=shape).astype(np.uint8)
        monkeypatch.setattr(bitset, "_HAVE_BITWISE_COUNT", False)
        via_lut = popcount(packed)
        monkeypatch.setattr(bitset, "_HAVE_BITWISE_COUNT", True)
        if not hasattr(np, "bitwise_count"):
            pytest.skip("native np.bitwise_count unavailable (NumPy 1.x)")
        via_native = popcount(packed)
        assert type(via_lut) is type(via_native)
        if isinstance(via_lut, np.ndarray):
            assert via_lut.dtype == via_native.dtype == np.int64
            np.testing.assert_array_equal(via_lut, via_native)
        else:
            assert via_lut == via_native


class TestIntersect:
    def test_matches_logical_and(self):
        a = random_masks(4, 77, seed=1)
        b = random_masks(4, 77, seed=2)
        packed = intersect(pack_rows(a), pack_rows(b))
        np.testing.assert_array_equal(unpack_rows(packed, 77), a & b)

    def test_broadcasts_row_against_matrix(self):
        matrix = random_masks(6, 40, seed=3)
        row = random_masks(1, 40, seed=4)[0]
        packed = intersect(pack_rows(matrix), pack_rows(row)[None, :])
        np.testing.assert_array_equal(unpack_rows(packed, 40), matrix & row)


class TestCoversAll:
    def test_detects_supersets(self):
        base = random_masks(1, 90, seed=5)[0]
        superset = base | random_masks(1, 90, seed=6)[0]
        disjointish = random_masks(1, 90, seed=7)[0]
        tids = pack_rows(np.stack([base, superset, disjointish]))
        out = covers_all(tids, pack_rows(base))
        assert out[0] and out[1]
        assert bool(out[2]) == bool((disjointish | ~base).all())

    def test_empty_extent_covered_by_everything(self):
        tids = pack_rows(random_masks(3, 30, seed=8))
        empty = pack_rows(np.zeros(30, dtype=bool))
        assert covers_all(tids, empty).all()


class TestExtentKey:
    def test_equal_sets_equal_keys(self):
        mask = random_masks(1, 55, seed=9)[0]
        assert extent_key(pack_rows(mask)) == extent_key(pack_rows(mask.copy()))

    def test_different_sets_different_keys(self):
        mask = random_masks(1, 55, seed=10)[0]
        other = mask.copy()
        other[3] = not other[3]
        assert extent_key(pack_rows(mask)) != extent_key(pack_rows(other))
