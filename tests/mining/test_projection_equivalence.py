"""Conditional-database projection must be invisible in the results.

``projection="never"`` is the historical flat traversal; ``"auto"`` and
``"always"`` re-pack shrunken branches into local coordinate spaces, swap
extent identity to digests, and stream sparse extents to the estimator as
index batches.  Across randomized instances — including support
thresholds below the 1/SPARSE_DENSITY density cutoff, where the sparse
representation actually carries survivors — all three modes must emit
identical candidates, scores, masks, and evaluation counts, on bool and
packed (out-of-core) alphabets alike.
"""

import numpy as np
import pytest

from repro.datasets._synth import bernoulli
from repro.datasets.encoding import TabularEncoder
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.mining import mine_closed_candidates
from repro.mining.alphabet import PredicateAlphabet
from repro.mining.engine import make_engine
from repro.models import LogisticRegression
from repro.obs.trace import Tracer, tracing
from repro.tabular import Table

MODES = ("never", "auto", "always")


@pytest.fixture(autouse=True)
def _auto_projects_at_test_scale(request, monkeypatch):
    """"auto" falls back to the flat search below _AUTO_DIGEST_MIN_ROWS
    (131072 rows); these instances are hundreds of rows, so drop the gate
    to exercise the projected machinery.  TestAutoGate opts out to pin the
    gate itself."""
    if request.node.get_closest_marker("keep_auto_gate"):
        return
    import repro.mining.closed as closed_mod

    monkeypatch.setattr(closed_mod, "_AUTO_DIGEST_MIN_ROWS", 0)


def scale_instance(seed, n=700):
    """A mid-sized instance whose deep extents cross the density cutoff."""
    rng = np.random.default_rng(seed)
    cats = np.array([f"c{i}" for i in range(8)], dtype=object)
    regions = np.array([f"r{i}" for i in range(10)], dtype=object)
    table = Table.from_dict(
        {
            "group": rng.choice(np.array(["A", "B"], dtype=object), size=n, p=[0.65, 0.35]),
            "cat": cats[rng.integers(0, len(cats), n)],
            "region": regions[rng.integers(0, len(regions), n)],
            "flag": rng.choice(np.array(["Yes", "No"], dtype=object), size=n, p=[0.2, 0.8]),
            "score": rng.normal(50, 12, size=n).round(1),
        }
    )
    b = table.column("group").values == "B"
    flagged = table.column("flag").values == "Yes"
    logits = (
        0.05 * (table.column("score").values - 50)
        - 1.8 * (b & flagged)
        - 0.3 * b
    )
    y = bernoulli(logits, rng)
    if len(np.unique(y)) < 2:  # pragma: no cover - seed guard
        y[: n // 2] = 1 - y[: n // 2]
    encoder = TabularEncoder().fit(table)
    X = encoder.transform(table)
    model = LogisticRegression(l2_reg=1e-3).fit(X, y)
    ctx = FairnessContext(X=X, y=y, privileged=~b, favorable_label=1)
    estimator = make_estimator(
        "first_order", model, X, y, get_metric("statistical_parity"), ctx
    )
    return table, estimator


def correlated_instance(seed=0, n=900, k=40):
    """Three noisy copies of a 40-way latent code: item extents land below
    the sparse-density cutoff (~22 of 900 rows), yet pairs still clear a
    1.5% support floor — the regime where co-parents compress to index
    form and the sparse dispatch actually fires."""
    rng = np.random.default_rng(seed)
    latent = rng.integers(0, k, n)
    cats = np.array([f"v{i:02d}" for i in range(k)], dtype=object)

    def noisy():
        keep = rng.random(n) < 0.9
        return cats[np.where(keep, latent, rng.integers(0, k, n))]

    flag = rng.choice(np.array(["Yes", "No"], dtype=object), size=n, p=[0.2, 0.8])
    score = rng.normal(50, 12, size=n).round(1)
    table = Table.from_dict(
        {"a": noisy(), "b": noisy(), "c": noisy(), "flag": flag, "score": score}
    )
    logits = 0.05 * (score - 50) - 1.5 * (latent < 5) - 0.5 * (flag == "Yes")
    y = bernoulli(logits, rng)
    if len(np.unique(y)) < 2:  # pragma: no cover - seed guard
        y[: n // 2] = 1 - y[: n // 2]
    encoder = TabularEncoder().fit(table)
    X = encoder.transform(table)
    model = LogisticRegression(l2_reg=1e-3).fit(X, y)
    ctx = FairnessContext(X=X, y=y, privileged=flag == "No", favorable_label=1)
    estimator = make_estimator(
        "first_order", model, X, y, get_metric("statistical_parity"), ctx
    )
    return table, estimator


def assert_identical(a, b):
    assert a.num_evaluated == b.num_evaluated
    assert a.num_closed == b.num_closed
    assert len(a.candidates) == len(b.candidates)
    for x, y in zip(a.candidates, b.candidates):
        assert str(x.pattern) == str(y.pattern)
        assert x.size == y.size
        assert x.support == y.support
        assert abs(x.responsibility - y.responsibility) < 1e-10
        assert abs(x.bias_change - y.bias_change) < 1e-10
        np.testing.assert_array_equal(x._packed_mask, y._packed_mask)


class TestThreeModeEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("tau,depth", [(0.05, 3), (0.02, 3)])
    def test_modes_emit_identical_results(self, seed, tau, depth):
        table, estimator = scale_instance(seed)
        results = {
            mode: mine_closed_candidates(
                table, estimator, support_threshold=tau,
                max_predicates=depth, projection=mode,
            )
            for mode in MODES
        }
        assert results["never"].candidates  # non-vacuous instance
        assert_identical(results["never"], results["auto"])
        assert_identical(results["never"], results["always"])

    def test_sparse_survivors_below_density_cutoff(self):
        """τ < 1/SPARSE_DENSITY forces surviving extents through the sparse
        index path; the flat mode must still be matched exactly."""
        table, estimator = scale_instance(17, n=900)
        never, auto = (
            mine_closed_candidates(
                table, estimator, support_threshold=0.02,
                max_predicates=4, projection=mode,
            )
            for mode in ("never", "auto")
        )
        assert_identical(never, auto)

    def test_correlated_sparse_coparents_equivalent(self):
        """The instance whose co-parents compress to index form must also
        match the flat traversal exactly."""
        table, estimator = correlated_instance()
        results = {
            mode: mine_closed_candidates(
                table, estimator, support_threshold=0.015,
                max_predicates=3, projection=mode,
            )
            for mode in MODES
        }
        assert_identical(results["never"], results["auto"])
        assert_identical(results["never"], results["always"])

    def test_packed_alphabet_equivalence(self):
        """An out-of-core (packed) alphabet feeds the same mining results."""
        table, estimator = scale_instance(5)
        plain = PredicateAlphabet(table, 0.03, 4, None)
        packed = PredicateAlphabet(table, 0.03, 4, None, packed=True)
        assert packed.packed and not plain.packed
        a = mine_closed_candidates(
            table, estimator, support_threshold=0.03, max_predicates=3, alphabet=plain
        )
        b = mine_closed_candidates(
            table, estimator, support_threshold=0.03, max_predicates=3, alphabet=packed
        )
        assert_identical(a, b)

    def test_engine_kwarg_round_trip(self):
        table, estimator = scale_instance(2, n=400)
        default = make_engine("mining")
        always = make_engine("mining", projection="always")
        assert default.projection == "auto" and always.projection == "always"
        ra = default.generate(table, estimator, support_threshold=0.05, max_predicates=2)
        rb = always.generate(table, estimator, support_threshold=0.05, max_predicates=2)
        assert [str(c.pattern) for c in ra.candidates] == [str(c.pattern) for c in rb.candidates]

    def test_invalid_projection_rejected(self):
        table, estimator = scale_instance(2, n=400)
        with pytest.raises(ValueError, match="projection"):
            mine_closed_candidates(table, estimator, projection="sometimes")


class TestObservabilityAndCounters:
    def test_projection_spans_and_counters(self):
        table, estimator = correlated_instance()
        alphabet = PredicateAlphabet(table, 0.015, 4, None)
        tracer = Tracer()
        with tracing(tracer):
            mine_closed_candidates(
                table, estimator, support_threshold=0.015,
                max_predicates=3, projection="auto", alphabet=alphabet,
            )
        names = set()

        def walk(spans):
            for span in spans:
                names.add(span.name)
                walk(span.children)

        walk(tracer.roots)
        assert "mining.project" in names
        assert "mining.sparse_and" in names
        assert alphabet._stats["projection_builds"] > 0
        assert alphabet._stats["sparse_dispatch_hits"] > 0
        assert alphabet._stats["dense_dispatch_hits"] > 0

    @pytest.mark.keep_auto_gate
    def test_auto_gate_runs_flat_below_min_rows(self):
        """On a small table, "auto" is byte-for-byte the flat search: no
        digest keys, no projections, no compressions — the overhead of the
        machinery is only paid where projection can pay for it."""
        table, estimator = scale_instance(3)
        alphabet = PredicateAlphabet(table, 0.05, 4, None)
        auto = mine_closed_candidates(
            table, estimator, support_threshold=0.05,
            max_predicates=3, projection="auto", alphabet=alphabet,
        )
        never = mine_closed_candidates(
            table, estimator, support_threshold=0.05,
            max_predicates=3, projection="never", alphabet=alphabet,
        )
        assert_identical(never, auto)
        assert alphabet._stats["projection_builds"] == 0
        assert alphabet._stats["tidlist_compressions"] == 0

    def test_never_mode_records_no_projection_work(self):
        table, estimator = scale_instance(7, n=400)
        alphabet = PredicateAlphabet(table, 0.05, 4, None)
        mine_closed_candidates(
            table, estimator, support_threshold=0.05,
            max_predicates=3, projection="never", alphabet=alphabet,
        )
        assert alphabet._stats["projection_builds"] == 0
        assert alphabet._stats["tidlist_compressions"] == 0
