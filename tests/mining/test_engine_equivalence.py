"""Engine equivalence: closed mining == lattice search, end to end.

The acceptance contract of the mining backend: under the paper's default
estimator configuration it must produce *identical* top-k explanations to
the lattice — same pattern sets, scores equal to 1e-10 — on German and on
the synthetic planted-bias dataset, while evaluating strictly fewer
candidates (one per distinct extent).
"""

import pytest

from repro.core import GopherConfig, GopherExplainer
from repro.mining import (
    CandidateEngine,
    CandidateResult,
    ClosedMiningEngine,
    LatticeEngine,
    as_candidate_result,
    list_engines,
    make_engine,
)
from repro.models import LogisticRegression
from repro.patterns import compute_candidates, select_top_k


def top_k_pairs(result, k):
    selected, _ = select_top_k(result, k, containment_threshold=0.5)
    return [(s.pattern, s.responsibility, s.support, s.bias_change) for s in selected]


def assert_identical_top_k(lattice, mined, k):
    a, b = top_k_pairs(lattice, k), top_k_pairs(mined, k)
    assert [p for p, *_ in a] == [p for p, *_ in b], (
        f"top-{k} patterns diverge:\n  lattice: {[str(p) for p, *_ in a]}\n"
        f"  mining:  {[str(p) for p, *_ in b]}"
    )
    for (_, resp_a, sup_a, bias_a), (_, resp_b, sup_b, bias_b) in zip(a, b):
        assert resp_a == pytest.approx(resp_b, abs=1e-10)
        assert sup_a == pytest.approx(sup_b, abs=1e-12)
        assert bias_a == pytest.approx(bias_b, abs=1e-10)


class TestGermanEquivalence:
    @pytest.fixture(scope="class", params=[2, 3], ids=["mp2", "mp3"])
    def engine_pair(self, request, german_train, german_series_estimator):
        opts = dict(support_threshold=0.05, max_predicates=request.param)
        lattice = make_engine("lattice").generate(
            german_train.table, german_series_estimator, **opts
        )
        mined = make_engine("mining").generate(
            german_train.table, german_series_estimator, **opts
        )
        return lattice, mined

    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_identical_top_k(self, engine_pair, k):
        lattice, mined = engine_pair
        assert_identical_top_k(lattice, mined, k)

    def test_mining_candidates_no_more_than_lattice(self, engine_pair):
        lattice, mined = engine_pair
        # One candidate per distinct extent: never more than the lattice's
        # per-pattern candidate list.
        assert mined.num_candidates <= lattice.num_candidates
        assert mined.num_candidates > 0

    def test_prune_off_equivalence(self, german_train, german_series_estimator):
        opts = dict(
            support_threshold=0.05, max_predicates=2, prune_by_responsibility=False
        )
        lattice = make_engine("lattice").generate(
            german_train.table, german_series_estimator, **opts
        )
        mined = make_engine("mining").generate(
            german_train.table, german_series_estimator, **opts
        )
        assert_identical_top_k(lattice, mined, 5)
        assert mined.num_evaluated < lattice.num_evaluated

    def test_fewer_candidates_evaluated(self, german_train, german_series_estimator):
        opts = dict(support_threshold=0.05, max_predicates=2)
        lattice = make_engine("lattice").generate(
            german_train.table, german_series_estimator, **opts
        )
        mined = make_engine("mining").generate(
            german_train.table, german_series_estimator, **opts
        )
        assert mined.num_evaluated < lattice.num_evaluated

    @pytest.mark.parametrize("mp", [2, 3])
    def test_never_over_evaluates_the_lattice(
        self, mp, german_train, german_series_estimator
    ):
        """Regression for the seed-11 depth-3 over-evaluation.

        With the one-sided DFS-parent descent bars the miner *extended*
        depth-2 survivors the lattice could no longer pair-merge, so on
        this exact fixture (German, seed 11) the depth-3 frontier issued
        more influence evaluations than the lattice.  The sub-extent
        descent-bar cache reconstructs the lattice's merge-pair bars and
        formability, closing the gap — pinned here at both depths.
        """
        opts = dict(support_threshold=0.05, max_predicates=mp)
        lattice = make_engine("lattice").generate(
            german_train.table, german_series_estimator, **opts
        )
        mined = make_engine("mining").generate(
            german_train.table, german_series_estimator, **opts
        )
        assert mined.num_evaluated <= lattice.num_evaluated


class TestSyntheticEquivalence:
    @pytest.fixture(scope="class", params=[2, 3], ids=["mp2", "mp3"])
    def engine_pair(self, request, synth_setup):
        table, estimator = synth_setup
        opts = dict(support_threshold=0.05, max_predicates=request.param)
        lattice = make_engine("lattice").generate(table, estimator, **opts)
        mined = make_engine("mining").generate(table, estimator, **opts)
        return lattice, mined

    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_identical_top_k(self, engine_pair, k):
        lattice, mined = engine_pair
        assert_identical_top_k(lattice, mined, k)

    def test_fewer_candidates_evaluated(self, engine_pair):
        lattice, mined = engine_pair
        assert 0 < mined.num_evaluated < lattice.num_evaluated


class TestProjectedEngineEquivalence:
    """The projected miner must match the *lattice* too, not just the flat
    miner — the engine acceptance contract is projection-independent."""

    @pytest.mark.parametrize("projection", ["always", "auto"])
    def test_projected_mining_matches_lattice(
        self, projection, german_train, german_series_estimator
    ):
        opts = dict(support_threshold=0.05, max_predicates=3)
        lattice = make_engine("lattice").generate(
            german_train.table, german_series_estimator, **opts
        )
        mined = make_engine("mining", projection=projection).generate(
            german_train.table, german_series_estimator, **opts
        )
        assert_identical_top_k(lattice, mined, 5)
        assert mined.num_evaluated <= lattice.num_evaluated

    def test_projected_mining_matches_lattice_synthetic(self, synth_setup):
        table, estimator = synth_setup
        opts = dict(support_threshold=0.05, max_predicates=3)
        lattice = make_engine("lattice").generate(table, estimator, **opts)
        mined = make_engine("mining", projection="always").generate(
            table, estimator, **opts
        )
        assert_identical_top_k(lattice, mined, 5)


class TestEngineProtocol:
    def test_list_engines(self):
        assert list_engines() == ["lattice", "mining"]

    def test_make_engine_unknown(self):
        with pytest.raises(ValueError, match="unknown candidate engine"):
            make_engine("apriori")

    def test_both_satisfy_protocol(self):
        assert isinstance(LatticeEngine(), CandidateEngine)
        assert isinstance(ClosedMiningEngine(), CandidateEngine)

    def test_lattice_engine_wraps_compute_candidates(
        self, german_train, german_series_estimator
    ):
        direct = compute_candidates(
            german_train.table, german_series_estimator,
            support_threshold=0.05, max_predicates=2,
        )
        wrapped = LatticeEngine().generate(
            german_train.table, german_series_estimator,
            support_threshold=0.05, max_predicates=2,
        )
        assert wrapped.engine == "lattice"
        assert wrapped.num_evaluated == direct.num_evaluated
        assert [s.pattern for s in wrapped.candidates] == [
            s.pattern for s in direct.candidates
        ]

    def test_as_candidate_result(self, german_train, german_series_estimator):
        direct = compute_candidates(
            german_train.table, german_series_estimator,
            support_threshold=0.05, max_predicates=1,
        )
        wrapped = as_candidate_result(direct)
        assert isinstance(wrapped, CandidateResult)
        assert wrapped.num_candidates == direct.num_candidates
        assert as_candidate_result(wrapped) is wrapped

    def test_select_top_k_accepts_candidate_result(
        self, german_train, german_series_estimator
    ):
        result = ClosedMiningEngine().generate(
            german_train.table, german_series_estimator,
            support_threshold=0.05, max_predicates=1,
        )
        selected, _ = select_top_k(result, 2, containment_threshold=0.99)
        assert 1 <= len(selected) <= 2


class TestExplainerIntegration:
    @pytest.fixture(scope="class")
    def explanations(self, german_train, german_test):
        out = {}
        for engine in ("lattice", "mining"):
            gopher = GopherExplainer(
                LogisticRegression(l2_reg=1e-3),
                metric="statistical_parity",
                estimator="second_order",
                estimator_kwargs={"variant": "series", "evaluation": "smooth"},
                engine=engine,
                max_predicates=2,
                support_threshold=0.05,
            )
            gopher.fit(german_train, german_test)
            out[engine] = gopher.explain(k=3, verify=False)
        return out

    def test_identical_explanations(self, explanations):
        lattice, mined = explanations["lattice"], explanations["mining"]
        assert lattice.patterns() == mined.patterns()
        for a, b in zip(lattice, mined):
            assert a.est_responsibility == pytest.approx(b.est_responsibility, abs=1e-10)
            assert a.support == pytest.approx(b.support, abs=1e-12)

    def test_mining_result_carries_engine_accounting(self, explanations):
        result = explanations["mining"].lattice
        assert isinstance(result, CandidateResult)
        assert result.engine == "mining"
        assert result.num_evaluated > 0
        assert result.num_candidates > 0

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            GopherConfig(engine="bogus")

    def test_config_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="search_batch_size"):
            GopherConfig(search_batch_size=0)
