"""Property tests for the closed-pattern enumeration.

Across randomized tabular instances (and the shared German fixture) the
miner must uphold its structural invariants: every emitted candidate
covers a *closed* extent, extents are unique (one candidate per distinct
training subset), support strictly exceeds τ, the reported pattern really
describes the stored extent, and the scores match the estimator.
"""

import numpy as np
import pytest

from repro.datasets.encoding import TabularEncoder
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.mining import mine_closed_candidates
from repro.models import LogisticRegression
from repro.patterns.candidates import generate_single_predicates
from repro.tabular import Table

TAU = 0.06
MAX_PREDICATES = 3


def random_instance(seed):
    """A small random table + fitted model + estimator."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(80, 160))
    table = Table.from_dict(
        {
            "num_a": rng.normal(0, 1, size=n).round(2),
            "num_b": rng.integers(0, 5, size=n).astype(float),
            "cat_a": rng.choice(np.array(["x", "y", "z"], dtype=object), size=n),
            "cat_b": rng.choice(np.array(["m", "f"], dtype=object), size=n),
        }
    )
    logits = (
        1.3 * table.column("num_a").values
        + 0.5 * (table.column("cat_a").values == "x")
        - 0.6 * (table.column("cat_b").values == "f")
    )
    y = (logits + rng.normal(scale=0.7, size=n) > 0).astype(np.int64)
    if len(np.unique(y)) < 2:  # pragma: no cover - seed guard
        y[: n // 2] = 1 - y[: n // 2]
    encoder = TabularEncoder().fit(table)
    X = encoder.transform(table)
    model = LogisticRegression(l2_reg=1e-2).fit(X, y)
    ctx = FairnessContext(
        X=X, y=y, privileged=table.column("cat_b").values == "m", favorable_label=1
    )
    estimator = make_estimator(
        "first_order", model, X, y, get_metric("statistical_parity"), ctx,
        evaluation="smooth",
    )
    return table, estimator


@pytest.fixture(scope="module", params=range(6))
def mined_instance(request):
    table, estimator = random_instance(request.param)
    result = mine_closed_candidates(
        table, estimator, support_threshold=TAU, max_predicates=MAX_PREDICATES
    )
    return table, estimator, result


class TestClosedEnumerationProperties:
    def test_some_candidates_found(self, mined_instance):
        _, _, result = mined_instance
        assert result.num_closed > 0

    def test_extents_unique(self, mined_instance):
        _, _, result = mined_instance
        seen = set()
        for candidate in result.candidates:
            key = candidate.mask().tobytes()
            assert key not in seen, f"duplicate extent for {candidate.pattern}"
            seen.add(key)

    def test_support_strictly_above_threshold(self, mined_instance):
        table, _, result = mined_instance
        for candidate in result.candidates:
            assert candidate.support > TAU
            assert candidate.size == candidate.mask().sum()

    def test_every_extent_is_closed(self, mined_instance):
        """An extent is closed iff it equals the intersection of every
        single-predicate mask covering it — adding any other alphabet
        predicate would strictly shrink it, so one candidate per extent
        loses no pattern."""
        table, _, result = mined_instance
        alphabet = [
            mask
            for _, mask in generate_single_predicates(table, TAU, 4)
            if not mask.all()
        ]
        for candidate in result.candidates:
            extent = candidate.mask()
            closure = np.ones_like(extent)
            for mask in alphabet:
                if (mask | ~extent).all():  # mask covers the extent
                    closure &= mask
            np.testing.assert_array_equal(
                closure, extent, err_msg=f"extent of {candidate.pattern} is not closed"
            )

    def test_pattern_describes_its_extent(self, mined_instance):
        """The representative pattern must be a *generator*: evaluating it
        against the table reproduces the stored extent exactly."""
        table, _, result = mined_instance
        for candidate in result.candidates:
            np.testing.assert_array_equal(
                candidate.pattern.mask(table),
                candidate.mask(),
                err_msg=f"{candidate.pattern} does not generate its extent",
            )

    def test_pattern_size_bounded(self, mined_instance):
        _, _, result = mined_instance
        for candidate in result.candidates:
            assert 1 <= len(candidate.pattern) <= MAX_PREDICATES

    def test_scores_match_estimator(self, mined_instance):
        _, estimator, result = mined_instance
        for candidate in result.candidates[:25]:
            indices = np.flatnonzero(candidate.mask())
            expected = estimator.bias_change_batch([indices])[0]
            assert candidate.bias_change == pytest.approx(expected, abs=1e-10)

    def test_no_full_coverage_candidates(self, mined_instance):
        _, _, result = mined_instance
        for candidate in result.candidates:
            assert candidate.support < 1.0


class TestClosedEnumerationOnGerman:
    def test_invariants_hold(self, german_train, german_series_estimator):
        result = mine_closed_candidates(
            german_train.table, german_series_estimator,
            support_threshold=0.05, max_predicates=2,
        )
        assert result.num_closed > 100
        extents = {c.mask().tobytes() for c in result.candidates}
        assert len(extents) == len(result.candidates)
        for candidate in result.candidates:
            assert candidate.support > 0.05
            np.testing.assert_array_equal(
                candidate.pattern.mask(german_train.table), candidate.mask()
            )

    def test_validation(self, german_train, german_series_estimator):
        with pytest.raises(ValueError, match="max_predicates"):
            mine_closed_candidates(
                german_train.table, german_series_estimator, max_predicates=0
            )
        with pytest.raises(ValueError, match="batch_size"):
            mine_closed_candidates(
                german_train.table, german_series_estimator, batch_size=0
            )

    def test_table_estimator_mismatch_rejected(self, german_test, german_series_estimator):
        with pytest.raises(ValueError, match="must match estimator training rows"):
            mine_closed_candidates(german_test.table, german_series_estimator)
