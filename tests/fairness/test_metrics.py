"""Tests for repro.fairness.metrics (hard values and orientation)."""

import numpy as np
import pytest

from repro.fairness import (
    EqualOpportunity,
    FairnessContext,
    PredictiveParity,
    StatisticalParity,
    get_metric,
    list_metrics,
)
from repro.models import LogisticRegression


@pytest.fixture(scope="module")
def biased_setup():
    """A model that is biased against the protected group *by construction*.

    Feature 0 is the (centered) group indicator and strongly drives the
    label, so the fitted model predicts favorably for the privileged group.
    """
    rng = np.random.default_rng(0)
    n = 600
    privileged = rng.random(n) < 0.5
    X = np.column_stack(
        [privileged.astype(float) - 0.5, rng.normal(size=n), rng.normal(size=n)]
    )
    logits = 2.5 * X[:, 0] + 0.8 * X[:, 1]
    y = (logits + rng.normal(scale=0.5, size=n) > 0).astype(np.int64)
    model = LogisticRegression(l2_reg=1e-3).fit(X, y)
    ctx = FairnessContext(X=X, y=y, privileged=privileged, favorable_label=1)
    return model, ctx


class TestContextValidation:
    def test_requires_both_groups(self):
        X = np.zeros((4, 2))
        y = np.array([0, 1, 0, 1])
        with pytest.raises(ValueError, match="non-empty"):
            FairnessContext(X, y, np.ones(4, dtype=bool))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="first dimension"):
            FairnessContext(np.zeros((4, 2)), np.array([0, 1]), np.array([True, False]))

    def test_invalid_favorable_label(self):
        X = np.zeros((2, 1))
        with pytest.raises(ValueError, match="favorable_label"):
            FairnessContext(X, np.array([0, 1]), np.array([True, False]), favorable_label=3)

    def test_favorable_true_mask(self):
        X = np.zeros((2, 1))
        ctx = FairnessContext(X, np.array([0, 1]), np.array([True, False]), favorable_label=0)
        np.testing.assert_array_equal(ctx.favorable_true, [True, False])


class TestRegistry:
    def test_list_metrics(self):
        assert list_metrics() == [
            "average_odds",
            "equal_opportunity",
            "predictive_parity",
            "statistical_parity",
        ]

    def test_get_metric_instances(self):
        assert isinstance(get_metric("statistical_parity"), StatisticalParity)
        assert isinstance(get_metric("equal_opportunity"), EqualOpportunity)
        assert isinstance(get_metric("predictive_parity"), PredictiveParity)

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("nope")


class TestOrientation:
    """Positive value = bias against the protected group, for every metric."""

    @pytest.mark.parametrize("name", ["statistical_parity", "equal_opportunity"])
    def test_biased_model_positive(self, biased_setup, name):
        model, ctx = biased_setup
        assert get_metric(name).value(model, ctx) > 0.1

    def test_statistical_parity_formula(self, biased_setup):
        model, ctx = biased_setup
        pred = model.predict(ctx.X)
        priv = ctx.privileged
        expected = pred[priv].mean() - pred[~priv].mean()
        assert get_metric("statistical_parity").value(model, ctx) == pytest.approx(expected)

    def test_equal_opportunity_formula(self, biased_setup):
        model, ctx = biased_setup
        pred = model.predict(ctx.X)
        qual = ctx.y == 1
        priv = ctx.privileged
        expected = pred[qual & priv].mean() - pred[qual & ~priv].mean()
        assert get_metric("equal_opportunity").value(model, ctx) == pytest.approx(expected)

    def test_predictive_parity_formula(self, biased_setup):
        model, ctx = biased_setup
        pred = model.predict(ctx.X)
        priv = ctx.privileged

        def ppv(mask):
            sel = mask & (pred == 1)
            return ctx.y[sel].mean()

        expected = ppv(priv) - ppv(~priv)
        assert get_metric("predictive_parity").value(model, ctx) == pytest.approx(
            expected, abs=1e-6
        )

    def test_flipped_favorable_label_flips_orientation(self, biased_setup):
        model, ctx = biased_setup
        flipped = FairnessContext(ctx.X, ctx.y, ctx.privileged, favorable_label=0)
        sp = get_metric("statistical_parity")
        assert sp.value(model, flipped) == pytest.approx(-sp.value(model, ctx))

    def test_fair_predictor_near_zero(self):
        rng = np.random.default_rng(1)
        n = 4000
        privileged = rng.random(n) < 0.5
        X = rng.normal(size=(n, 3))  # features independent of the group
        y = (X[:, 0] > 0).astype(np.int64)
        model = LogisticRegression(l2_reg=1e-3).fit(X, y)
        ctx = FairnessContext(X, y, privileged)
        assert abs(get_metric("statistical_parity").value(model, ctx)) < 0.05


class TestAverageOdds:
    def test_biased_model_positive(self, biased_setup):
        model, ctx = biased_setup
        assert get_metric("average_odds").value(model, ctx) > 0.05

    def test_is_mean_of_tpr_and_fpr_gaps(self, biased_setup):
        model, ctx = biased_setup
        pred = model.predict(ctx.X)
        priv = ctx.privileged

        def gap(label):
            mask = ctx.y == label
            return pred[mask & priv].mean() - pred[mask & ~priv].mean()

        expected = 0.5 * (gap(1) + gap(0))
        assert get_metric("average_odds").value(model, ctx) == pytest.approx(expected)

    def test_undefined_when_group_empty_under_label(self, biased_setup):
        model, _ = biased_setup
        X = np.zeros((4, 3))
        y = np.array([1, 1, 0, 0])
        privileged = np.array([True, True, False, False])
        ctx = FairnessContext(X, y, privileged)
        with pytest.raises(ValueError, match="undefined"):
            get_metric("average_odds").value(model, ctx)

    def test_gradient_matches_finite_differences(self, biased_setup):
        model, ctx = biased_setup
        metric = get_metric("average_odds")
        theta = model.theta
        analytic = metric.grad_theta(model, ctx)
        eps = 1e-6
        numeric = np.zeros_like(theta)
        for k in range(len(theta)):
            step = np.zeros_like(theta)
            step[k] = eps
            numeric[k] = (
                metric.surrogate(model, ctx, theta + step)
                - metric.surrogate(model, ctx, theta - step)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6, rtol=1e-4)


class TestEqualOpportunityEdgeCases:
    def test_undefined_without_favorable_rows(self, biased_setup):
        model, _ = biased_setup
        X = np.zeros((4, 3))
        y = np.array([1, 1, 0, 0])
        privileged = np.array([True, True, False, False])
        ctx = FairnessContext(X, y, privileged)  # protected group has no y=1
        with pytest.raises(ValueError, match="undefined"):
            get_metric("equal_opportunity").value(model, ctx)


class TestBatchSubclassFallback:
    """The batch paths must defer to a subclass's scalar overrides — a metric
    customizing value()/surrogate() may never get different numbers from
    value_batch()/surrogate_batch()."""

    def _thetas(self, model):
        assert model.theta is not None
        return np.stack([model.theta, model.theta * 0.9, model.theta * 1.1])

    def test_statistical_parity_value_override(self, biased_setup):
        model, ctx = biased_setup

        class Scaled(StatisticalParity):
            def value(self, model, ctx, theta=None):
                return 2.0 * super().value(model, ctx, theta)

        metric = Scaled()
        thetas = self._thetas(model)
        batch = metric.value_batch(model, ctx, thetas)
        scalar = [metric.value(model, ctx, t) for t in thetas]
        np.testing.assert_allclose(batch, scalar, atol=1e-12, rtol=0.0)

    def test_predictive_parity_surrogate_override(self, biased_setup):
        model, ctx = biased_setup

        class Shifted(PredictiveParity):
            def surrogate(self, model, ctx, theta=None):
                return super().surrogate(model, ctx, theta) + 1.0

        metric = Shifted()
        thetas = self._thetas(model)
        batch = metric.surrogate_batch(model, ctx, thetas)
        scalar = [metric.surrogate(model, ctx, t) for t in thetas]
        np.testing.assert_allclose(batch, scalar, atol=1e-12, rtol=0.0)

    def test_builtin_batch_stays_vectorized_and_equal(self, biased_setup):
        model, ctx = biased_setup
        thetas = self._thetas(model)
        for name in list_metrics():
            metric = get_metric(name)
            np.testing.assert_allclose(
                metric.value_batch(model, ctx, thetas),
                [metric.value(model, ctx, t) for t in thetas],
                atol=1e-12,
                rtol=0.0,
                err_msg=name,
            )
            np.testing.assert_allclose(
                metric.surrogate_batch(model, ctx, thetas),
                [metric.surrogate(model, ctx, t) for t in thetas],
                atol=1e-12,
                rtol=0.0,
                err_msg=name,
            )

    def test_difference_hook_override(self, biased_setup):
        """Overriding only the `_difference` reduction (the reviewer's
        AbsParity case) must also flow through the batch path."""
        model, ctx = biased_setup

        class AbsParity(StatisticalParity):
            def _difference(self, scores, ctx):
                return abs(super()._difference(scores, ctx))

        metric = AbsParity()
        assert model.theta is not None
        thetas = np.stack([model.theta, -model.theta])
        batch = metric.value_batch(model, ctx, thetas)
        scalar = [metric.value(model, ctx, t) for t in thetas]
        np.testing.assert_allclose(batch, scalar, atol=1e-12, rtol=0.0)
        assert (batch >= 0).all()

    def test_ppv_difference_hook_override(self, biased_setup):
        model, ctx = biased_setup

        class AbsPPV(PredictiveParity):
            def _ppv_difference(self, scores, ctx):
                return abs(super()._ppv_difference(scores, ctx))

        metric = AbsPPV()
        assert model.theta is not None
        thetas = np.stack([model.theta, -model.theta])
        batch = metric.surrogate_batch(model, ctx, thetas)
        scalar = [metric.surrogate(model, ctx, t) for t in thetas]
        np.testing.assert_allclose(batch, scalar, atol=1e-12, rtol=0.0)
