"""Tests for repro.fairness.report."""

import numpy as np

from repro.fairness import FairnessContext, fairness_report
from repro.models import LogisticRegression


def _setup(n=300, seed=0):
    rng = np.random.default_rng(seed)
    privileged = rng.random(n) < 0.5
    X = np.column_stack([privileged.astype(float) - 0.5, rng.normal(size=n)])
    y = ((X[:, 0] + X[:, 1]) > 0).astype(np.int64)
    model = LogisticRegression().fit(X, y)
    return model, FairnessContext(X=X, y=y, privileged=privileged)


class TestFairnessReport:
    def test_contains_all_metrics(self):
        model, ctx = _setup()
        report = fairness_report(model, ctx)
        assert set(report.metrics) == {
            "statistical_parity",
            "equal_opportunity",
            "predictive_parity",
            "average_odds",
        }

    def test_accuracy_matches_model(self):
        model, ctx = _setup()
        report = fairness_report(model, ctx)
        assert report.accuracy == model.accuracy(ctx.X, ctx.y)

    def test_render_mentions_every_metric(self):
        model, ctx = _setup()
        text = fairness_report(model, ctx).render()
        assert "accuracy" in text
        assert "statistical_parity" in text
        assert str(fairness_report(model, ctx)) == text

    def test_undefined_metric_reported_as_nan(self):
        model, _ = _setup()
        # Protected group has no favorable-label rows -> EO undefined.
        X = np.zeros((4, 2))
        y = np.array([1, 1, 0, 0])
        privileged = np.array([True, True, False, False])
        ctx = FairnessContext(X, y, privileged)
        report = fairness_report(model, ctx)
        assert np.isnan(report.metrics["equal_opportunity"])

    def test_custom_theta(self):
        model, ctx = _setup()
        report_zero = fairness_report(model, ctx, np.zeros(model.num_params))
        # With all-zero parameters every prediction is the same class, so
        # statistical parity vanishes.
        assert report_zero.metrics["statistical_parity"] == 0.0
