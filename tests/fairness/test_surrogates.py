"""Tests for the smooth fairness surrogates and their gradients."""

import numpy as np
import pytest

from repro.fairness import FairnessContext, get_metric, list_metrics
from repro.models import LogisticRegression


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2)
    n = 400
    privileged = rng.random(n) < 0.5
    X = np.column_stack(
        [privileged.astype(float) - 0.5, rng.normal(size=n), rng.normal(size=n)]
    )
    y = ((2.0 * X[:, 0] + X[:, 1] + rng.normal(scale=0.5, size=n)) > 0).astype(np.int64)
    model = LogisticRegression(l2_reg=1e-3).fit(X, y)
    ctx = FairnessContext(X=X, y=y, privileged=privileged)
    return model, ctx


class TestSurrogateValues:
    @pytest.mark.parametrize("name", list_metrics())
    def test_surrogate_close_to_hard(self, setup, name):
        model, ctx = setup
        metric = get_metric(name)
        # Ratio-of-sums metrics (predictive parity) deviate more under
        # diffuse probabilities; the sharpening test below is the tight one.
        tolerance = 0.3 if name == "predictive_parity" else 0.15
        assert metric.surrogate(model, ctx) == pytest.approx(
            metric.value(model, ctx), abs=tolerance
        )

    @pytest.mark.parametrize("name", list_metrics())
    def test_surrogate_converges_as_logits_sharpen(self, setup, name):
        """Scaling θ sharpens probabilities toward indicators, so the
        surrogate must converge to the hard value."""
        model, ctx = setup
        metric = get_metric(name)
        sharp_theta = model.theta * 50.0
        hard = metric.value(model, ctx, sharp_theta)
        smooth = metric.surrogate(model, ctx, sharp_theta)
        assert smooth == pytest.approx(hard, abs=5e-3)


class TestSurrogateGradients:
    @pytest.mark.parametrize("name", list_metrics())
    def test_grad_matches_finite_differences(self, setup, name):
        model, ctx = setup
        metric = get_metric(name)
        theta = model.theta
        analytic = metric.grad_theta(model, ctx)
        eps = 1e-6
        numeric = np.zeros_like(theta)
        for k in range(len(theta)):
            step = np.zeros_like(theta)
            step[k] = eps
            numeric[k] = (
                metric.surrogate(model, ctx, theta + step)
                - metric.surrogate(model, ctx, theta - step)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6, rtol=1e-4)

    def test_grad_nonzero_for_biased_model(self, setup):
        model, ctx = setup
        grad = get_metric("statistical_parity").grad_theta(model, ctx)
        assert np.linalg.norm(grad) > 1e-4

    def test_flipped_favorable_label_flips_gradient(self, setup):
        model, ctx = setup
        flipped = FairnessContext(ctx.X, ctx.y, ctx.privileged, favorable_label=0)
        metric = get_metric("statistical_parity")
        np.testing.assert_allclose(
            metric.grad_theta(model, flipped), -metric.grad_theta(model, ctx), atol=1e-12
        )
