"""Frozen-session serving: the write-sanitizer and the concurrency hammer.

A warmed session's query surface is supposed to be a *pure read* of
shared state (the RL001 contract, enforced statically by
``tools/reprolint``).  These tests enforce it dynamically:

* :func:`repro.utils.freeze.freeze_session` flips every shared array to
  ``writeable=False`` — after which any in-place mutation on the read
  path raises at the write site;
* the hammer fans a mixed workload (explanation searches, batched bias
  queries, replay geometry) across a thread pool against one frozen
  session and asserts every answer is identical to the serial run.

The cold-session variant (no ``warm()``) is the harder contract: every
lazy build — per-sample gradients, the Hessian factorization, the
exact-variant rotations, packed tidlists, the pair skeleton, the extent
caches, the ``context_for`` memo — races under the hammer, and each sits
behind a double-checked lock (or a first-build-wins ``setdefault`` under
the session lock), so the pool builds each exactly once and every answer
matches the serial run bit for bit.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import AuditSession
from repro.core.delta import replay_geometry
from repro.utils.freeze import Freezer, freeze_session

SEARCH = dict(max_predicates=2, support_threshold=0.05)
METRICS = ["statistical_parity", "equal_opportunity"]


@pytest.fixture(scope="module")
def frozen_session(lr_model, german_train, german_test):
    session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
    session.warm(skeleton=True)
    freeze_session(session)
    return session


def _subset_masks(session: AuditSession) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.random((12, session.X_train.shape[0])) < 0.08


def _explain_key(session: AuditSession, metric: str):
    explanations = session.explainer(metric=metric).explain(k=2, verify=False)
    return [(str(e.pattern), e.est_bias_change, e.est_responsibility) for e in explanations]


def _bias_batch(session: AuditSession, metric: str, masks: np.ndarray):
    estimator = session.estimator_for(metric=metric).warm()
    return estimator.bias_change_batch(masks)


def _geometry_key(session: AuditSession):
    cfg = session.config
    alphabet = session.alphabet_cache.get(
        cfg.support_threshold, cfg.num_bins, cfg.exclude_features or None
    )
    geometry = replay_geometry(alphabet, cfg.support_threshold)
    return geometry.pairs, geometry.sizes2, geometry.supports2


def _mixed_tasks(session: AuditSession):
    masks = _subset_masks(session)
    tasks = []
    for _ in range(2):  # two rounds so identical queries overlap in flight
        for metric in METRICS:
            tasks.append(lambda m=metric: _explain_key(session, m))
            tasks.append(lambda m=metric: _bias_batch(session, m, masks))
        tasks.append(lambda: _geometry_key(session))
    return tasks


def _assert_same(serial, hammered):
    assert len(serial) == len(hammered)
    for expected, got in zip(serial, hammered):
        if isinstance(expected, tuple):
            for e, g in zip(expected, got):
                np.testing.assert_array_equal(e, g)
        elif isinstance(expected, np.ndarray):
            np.testing.assert_array_equal(expected, got)
        else:
            assert expected == got


def _hammer(session: AuditSession):
    tasks = _mixed_tasks(session)
    serial = [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=8) as pool:
        hammered = [f.result() for f in [pool.submit(task) for task in tasks]]
    _assert_same(serial, hammered)


class TestFreezer:
    def test_frozen_session_blocks_inplace_writes(self, frozen_session):
        with pytest.raises(ValueError, match="read-only"):
            frozen_session.artifacts.per_sample_grads[0, 0] = 1.0
        with pytest.raises(ValueError, match="read-only"):
            frozen_session.X_test[0, 0] = 1.0

    def test_thaw_restores_writeable(self):
        arrays = {"a": np.zeros(3), "b": (np.ones(2), "not-an-array")}
        freezer = Freezer().freeze(arrays)
        assert not arrays["a"].flags.writeable
        assert not arrays["b"][0].flags.writeable
        freezer.thaw()
        assert arrays["a"].flags.writeable
        arrays["a"][0] = 5.0

    def test_freeze_is_idempotent_across_freezers(self):
        arr = np.zeros(4)
        first = Freezer().freeze(arr)
        second = Freezer().freeze(arr)  # already frozen: records nothing
        second.thaw()
        assert not arr.flags.writeable  # still held frozen by `first`
        first.thaw()
        assert arr.flags.writeable


class TestHammer:
    def test_warm_frozen_session_serves_concurrent_queries(self, frozen_session):
        _hammer(frozen_session)

    def test_queries_on_frozen_session_build_nothing(self, frozen_session):
        before = dict(frozen_session.stats)
        _explain_key(frozen_session, METRICS[0])
        _bias_batch(frozen_session, METRICS[1], _subset_masks(frozen_session))
        after = frozen_session.stats
        for counter, value in before.items():
            if counter.endswith("builds") or "factoriz" in counter:
                assert after[counter] == value, f"{counter} built during a read"

    def test_cold_frozen_session_hammer(self, lr_model, german_train, german_test):
        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        freeze_session(session)  # frozen immediately: every build still pending
        _hammer(session)
