"""Tests for repro.core.config."""

import pytest

from repro.core import GopherConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = GopherConfig()
        assert cfg.metric == "statistical_parity"
        assert cfg.estimator == "second_order"
        assert cfg.support_threshold == 0.05
        assert cfg.prune_by_responsibility is True

    def test_overrides(self):
        cfg = GopherConfig(metric="equal_opportunity", max_predicates=4)
        assert cfg.metric == "equal_opportunity"
        assert cfg.max_predicates == 4


class TestValidation:
    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            GopherConfig(metric="nope")

    def test_unknown_estimator(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            GopherConfig(estimator="nope")

    def test_bad_support(self):
        with pytest.raises(ValueError, match="support_threshold"):
            GopherConfig(support_threshold=1.0)

    def test_bad_containment(self):
        with pytest.raises(ValueError, match="containment_threshold"):
            GopherConfig(containment_threshold=0.0)

    def test_bad_max_predicates(self):
        with pytest.raises(ValueError, match="max_predicates"):
            GopherConfig(max_predicates=0)

    def test_bad_test_fraction(self):
        with pytest.raises(ValueError, match="test_fraction"):
            GopherConfig(test_fraction=0.0)
