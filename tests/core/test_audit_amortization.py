"""Within-audit amortization: cached answers must equal per-query answers.

A multi-metric audit serves every metric after the first largely from the
session's extent caches — ``g_S`` gradient sums and per-estimator-spec
Δθ rows keyed by packed extent bytes — and every ``explain_updates``
view shares one metric-independent update context.  These tests pin the
two halves of that contract:

* **equivalence** — a whole audit (and the §5 repairs of its queries)
  answers identically (1e-10) to fresh per-metric ``GopherExplainer``
  pipelines that recompute everything from scratch, across metrics ×
  both candidate engines × the three closed-form search estimators;
* **accounting** — one ``g_S`` GEMM per *distinct extent set* (not per
  metric), zero Δθ recomputation on later metrics, and exactly one
  update-context build per audit however many views repair explanations.
"""

import numpy as np
import pytest

from repro.core import AuditSession, GopherExplainer
from repro.fairness import list_metrics
from repro.obs import trace
from repro.obs.trace import Tracer

SEARCH = dict(max_predicates=2, support_threshold=0.05)
ESTIMATORS = ["first_order", "series", "exact"]
ENGINES = ["lattice", "mining"]
METRICS = list_metrics()


def assert_same_explanations(fresh, amortized, abs_tol=1e-10):
    assert [e.pattern for e in fresh] == [e.pattern for e in amortized]
    for a, b in zip(fresh, amortized):
        assert b.est_responsibility == pytest.approx(a.est_responsibility, abs=abs_tol)
        assert b.est_bias_change == pytest.approx(a.est_bias_change, abs=abs_tol)
        assert b.support == pytest.approx(a.support, abs=1e-12)


def assert_same_updates(fresh, amortized, abs_tol=1e-10):
    assert [u.pattern for u in fresh] == [u.pattern for u in amortized]
    for a, b in zip(fresh, amortized):
        np.testing.assert_allclose(b.delta, a.delta, atol=abs_tol)
        assert b.est_bias_change == pytest.approx(a.est_bias_change, abs=abs_tol)
        assert b.changed_features == a.changed_features


class TestAmortizedVsPerQuery:
    """The audit's cache-served queries equal from-scratch pipelines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_audit_matches_fresh_per_metric_explainers(
        self, lr_model, german_train, german_test, engine, estimator
    ):
        session = AuditSession(
            lr_model, engine=engine, estimator=estimator, **SEARCH
        ).fit(german_train, german_test)
        result = session.audit(metrics=METRICS, k=2, verify=False)
        assert len(result) == len(METRICS)
        for query in result.queries:
            fresh = GopherExplainer(
                lr_model, metric=query.metric, engine=engine, estimator=estimator,
                **SEARCH,
            ).fit(german_train, german_test)
            assert_same_explanations(
                fresh.explain(k=2, verify=False), query.explanations
            )

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_explain_updates_matches_fresh(
        self, lr_model, german_train, german_test, estimator
    ):
        session = AuditSession(lr_model, estimator=estimator, **SEARCH).fit(
            german_train, german_test
        )
        result = session.audit(metrics=METRICS[:2], k=2, verify=False)
        for query in result.queries:
            view = session.explainer(metric=query.metric, estimator=estimator)
            view_updates = view.explain_updates(query.explanations, verify=False)
            fresh = GopherExplainer(
                lr_model, metric=query.metric, estimator=estimator, **SEARCH
            ).fit(german_train, german_test)
            fresh_updates = fresh.explain_updates(
                fresh.explain(k=2, verify=False), verify=False
            )
            assert_same_updates(fresh_updates, view_updates)


class TestAccounting:
    """Counters prove the work was amortized, not merely equal."""

    def test_one_gs_gemm_per_distinct_extent_set(
        self, lr_model, german_train, german_test
    ):
        session = AuditSession(lr_model, estimator="series", **SEARCH).fit(
            german_train, german_test
        )
        tracer = Tracer()
        with trace.tracing(tracer):
            session.audit(metrics=METRICS, k=2, verify=False)
        # Raw g_S GEMM spans (the kind-less influence.gemm spans) cover
        # exactly the cache-miss rows: one row per distinct extent,
        # however many metrics re-enumerated it.
        gemm_rows = sum(
            span.attrs["m"]
            for span in tracer.walk()
            if span.name == "influence.gemm" and "kind" not in span.attrs
        )
        stats = session.stats
        assert stats["gradient_sum_cache_misses"] > 0
        assert gemm_rows == stats["gradient_sum_cache_misses"]
        assert stats["gradient_sum_cache_misses"] == len(
            session.artifacts._grad_sum_cache
        )
        # Within one estimator family the Δθ cache fronts the g_S cache
        # (later metrics never reach it), so raw-row reuse shows up when a
        # *second* gradient-sum family re-enumerates the same extents.
        view = session.explainer(metric=METRICS[0], estimator="one_step_gd")
        view.explain(k=2, verify=False)
        assert session.stats["gradient_sum_cache_hits"] > 0

    def test_later_metrics_recompute_no_param_changes(
        self, lr_model, german_train, german_test
    ):
        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        session.audit(metrics=[METRICS[0]], k=2, verify=False)
        misses = session.stats["param_change_cache_misses"]
        assert misses > 0
        session.audit(metrics=METRICS[1:], k=2, verify=False)
        # Every later metric re-enumerates the same extents: all hits.
        assert session.stats["param_change_cache_misses"] == misses
        assert session.stats["param_change_cache_hits"] > 0

    def test_one_update_context_build_per_audit(
        self, lr_model, german_train, german_test
    ):
        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        result = session.audit(metrics=METRICS[:3], k=2, verify=False)
        for query in result.queries:
            view = session.explainer(metric=query.metric)
            view.explain_updates(query.explanations, verify=False)
        # Three metric views repaired their explanations; the Hessian/η
        # half of the search context was built exactly once.
        assert session.stats["update_context_builds"] == 1

    def test_bare_estimator_keeps_per_call_accounting(self, fo_estimator):
        # Estimators built outside a session never key or cache extents:
        # exact_batch_stats-style accounting reflects executed work.
        assert fo_estimator.artifacts.extent_caching is False
        rng = np.random.default_rng(3)
        masks = rng.random((6, fo_estimator.num_train)) < 0.1
        fo_estimator.param_change_batch(masks)
        assert fo_estimator.artifacts.stats["param_change_cache_misses"] == 0
        assert fo_estimator.artifacts.stats["gradient_sum_cache_misses"] == 0

    def test_apply_edit_invalidates_extent_caches(
        self, lr_model, german_train, german_test
    ):
        from repro.datasets import random_edit

        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        session.audit(metrics=[METRICS[0]], k=2, verify=False)
        assert session.artifacts._param_change_cache
        edit = random_edit(session.train_data, "relabel", 5, seed=0)
        session.delta_audit(edit, k=2, verify=False)
        # The edit moved the model: every cached g_S / Δθ row is stale
        # and must have been dropped, not served.
        artifacts = session.artifacts
        before = dict(artifacts.stats)
        session.audit(metrics=[METRICS[0]], k=2, verify=False)
        assert (
            artifacts.stats["param_change_cache_misses"]
            > before["param_change_cache_misses"]
        )
