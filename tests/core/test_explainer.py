"""End-to-end tests for repro.core.explainer (the Gopher pipeline)."""

import numpy as np
import pytest

from repro.core import GopherConfig, GopherExplainer
from repro.models import LogisticRegression
from repro.patterns import Pattern, Predicate


@pytest.fixture(scope="module")
def fitted_gopher(german_train, german_test):
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="second_order",
        max_predicates=2,
        support_threshold=0.05,
    )
    return gopher.fit(german_train, german_test)


@pytest.fixture(scope="module")
def result(fitted_gopher):
    return fitted_gopher.explain(k=3, verify=True)


class TestFit:
    def test_original_bias_positive(self, fitted_gopher):
        assert fitted_gopher.original_bias > 0.05

    def test_report(self, fitted_gopher):
        report = fitted_gopher.report()
        assert 0.5 < report.accuracy <= 1.0
        assert "statistical_parity" in report.metrics

    def test_unfitted_raises(self):
        gopher = GopherExplainer(LogisticRegression())
        with pytest.raises(RuntimeError, match="not fitted"):
            gopher.explain()

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            GopherExplainer(LogisticRegression(), GopherConfig(), metric="statistical_parity")

    def test_auto_split_path(self, german):
        gopher = GopherExplainer(LogisticRegression(l2_reg=1e-3), max_predicates=1)
        gopher.fit(german)  # no explicit test set
        assert gopher.test_data is not None
        assert gopher.train_data.num_rows + gopher.test_data.num_rows == german.num_rows

    def test_prefitted_model_not_refit(self, german_train, german_test, encoder, X_train):
        model = LogisticRegression(l2_reg=1e-3).fit(X_train, german_train.labels)
        theta_before = model.theta.copy()
        GopherExplainer(model, max_predicates=1).fit(german_train, german_test)
        np.testing.assert_array_equal(model.theta, theta_before)


class TestExplain:
    def test_returns_k_explanations(self, result):
        assert 1 <= len(result) <= 3

    def test_explanations_verified(self, result):
        for explanation in result:
            assert explanation.gt_bias_change is not None
            assert explanation.gt_responsibility is not None

    def test_top_explanations_reduce_bias(self, result):
        """The paper's headline: the top pattern genuinely reduces bias when
        removed (ground truth by retraining)."""
        assert result[0].gt_responsibility > 0.1

    def test_top_pattern_mentions_planted_mechanism(self, result):
        """The search should recover the planted age/gender mechanism."""
        features = set()
        for explanation in result:
            features |= explanation.pattern.features()
        assert features & {"age", "gender", "credit_history"}

    def test_supports_are_small_subsets(self, result):
        for explanation in result:
            assert 0.05 <= explanation.support <= 0.6

    def test_render_contains_patterns(self, result):
        text = result.render()
        for explanation in result:
            assert str(explanation.pattern) in text

    def test_iteration_and_indexing(self, result):
        assert result[0].rank == 1
        assert [e.rank for e in result] == list(range(1, len(result) + 1))

    def test_lattice_attached(self, result):
        assert result.lattice.num_candidates > 0
        assert result.search_seconds > 0

    def test_no_protected_only_patterns_by_default(self, result, fitted_gopher):
        protected = fitted_gopher.train_data.protected.attribute
        for explanation in result:
            assert explanation.pattern.features() != {protected}


class TestResponsibilityOf:
    def test_matches_estimator(self, fitted_gopher):
        pattern = Pattern([Predicate("gender", "=", "Female")])
        est = fitted_gopher.responsibility_of(pattern)
        mask = pattern.mask(fitted_gopher.train_data.table)
        expected = fitted_gopher.estimator.responsibility(np.flatnonzero(mask))
        assert est == pytest.approx(expected)

    def test_ground_truth_mode(self, fitted_gopher):
        pattern = Pattern([Predicate("gender", "=", "Female")])
        gt = fitted_gopher.responsibility_of(pattern, ground_truth=True)
        assert isinstance(gt, float)

    def test_empty_pattern_rejected(self, fitted_gopher):
        pattern = Pattern([Predicate("gender", "=", "NoSuchValue")])
        with pytest.raises(ValueError, match="matches no"):
            fitted_gopher.responsibility_of(pattern)


class TestExplainUpdates:
    def test_updates_align_with_explanations(self, fitted_gopher, result):
        updates = fitted_gopher.explain_updates(result, verify=False, num_steps=25)
        assert len(updates) == len(result)
        for update, explanation in zip(updates, result):
            assert update.pattern == explanation.pattern

    def test_update_changes_only_pattern_features(self, fitted_gopher, result):
        updates = fitted_gopher.explain_updates(result, verify=False, num_steps=25)
        for update, explanation in zip(updates, result):
            assert set(update.changed_features) <= explanation.pattern.features()

    def test_verified_updates_have_ground_truth(self, fitted_gopher, result):
        updates = fitted_gopher.explain_updates(result, verify=True, num_steps=25)
        for update in updates:
            assert update.gt_bias_change is not None
            assert update.removal_bias_change is not None
            assert update.direction_vs_removal in ("less", "more")
