"""Tests for repro.core.explanation result types."""

import numpy as np
import pytest

from repro.core.explanation import Explanation, ExplanationSet
from repro.patterns import Pattern, Predicate
from repro.patterns.lattice import LatticeResult, PatternStats


def make_stats(responsibility=0.4, support=0.1):
    mask = np.zeros(20, dtype=bool)
    mask[: int(support * 20)] = True
    return PatternStats(
        pattern=Pattern([Predicate("age", ">=", 45.0)]),
        support=support,
        size=int(mask.sum()),
        responsibility=responsibility,
        bias_change=-responsibility * 0.2,
        _packed_mask=np.packbits(mask),
        _num_rows=20,
    )


def make_set(explanations):
    return ExplanationSet(
        explanations=explanations,
        metric_name="statistical_parity",
        original_bias=0.2,
        search_seconds=1.0,
        filter_seconds=0.01,
        lattice=LatticeResult(candidates=[], levels=[]),
    )


class TestExplanation:
    def test_from_stats(self):
        stats = make_stats()
        explanation = Explanation.from_stats(1, stats)
        assert explanation.pattern == stats.pattern
        assert explanation.est_responsibility == stats.responsibility
        assert explanation.gt_bias_change is None

    def test_bias_reduction_pct(self):
        explanation = Explanation.from_stats(1, make_stats())
        assert explanation.bias_reduction_pct is None
        explanation.gt_responsibility = 0.55
        assert explanation.bias_reduction_pct == pytest.approx(55.0)

    def test_describe_mentions_pattern(self):
        explanation = Explanation.from_stats(2, make_stats())
        assert "age >= 45" in explanation.describe()
        assert "#2" in explanation.describe()


class TestExplanationSet:
    def test_len_iter_getitem(self):
        explanations = [Explanation.from_stats(i + 1, make_stats()) for i in range(3)]
        result = make_set(explanations)
        assert len(result) == 3
        assert result[1].rank == 2
        assert [e.rank for e in result] == [1, 2, 3]

    def test_patterns(self):
        result = make_set([Explanation.from_stats(1, make_stats())])
        assert result.patterns() == [Pattern([Predicate("age", ">=", 45.0)])]

    def test_render_marks_unverified(self):
        result = make_set([Explanation.from_stats(1, make_stats())])
        assert "*" in result.render()

    def test_render_verified_without_star(self):
        explanation = Explanation.from_stats(1, make_stats())
        explanation.gt_responsibility = 0.5
        text_line = make_set([explanation]).render().splitlines()[2]
        assert "*" not in text_line

    def test_to_records_serializable(self):
        import json

        explanation = Explanation.from_stats(1, make_stats())
        explanation.gt_responsibility = 0.5
        explanation.gt_bias_change = -0.1
        records = make_set([explanation]).to_records()
        payload = json.dumps(records)
        assert "age" in payload
        assert records[0]["rank"] == 1
        assert records[0]["predicates"][0]["op"] == ">="
        assert records[0]["ground_truth_responsibility"] == 0.5
        assert records[0]["metric"] == "statistical_parity"
