"""AuditSession: one start-up, many queries — equivalence and accounting.

The session contract has two halves, both pinned here:

* **equivalence** — a session-built explainer view answers *identically*
  (patterns and scores to 1e-10) to a fresh ``GopherExplainer`` built
  from scratch for the same (metric, group, engine, estimator) question,
  for every built-in metric × both candidate engines × the three
  closed-form search estimators;
* **accounting** — a whole multi-metric, multi-group audit performs the
  heavy start-up builds exactly once (Hessian factorization, per-sample
  gradients, predicate alphabet, packed tidlists), asserted via the
  session's stats counters.
"""

import numpy as np
import pytest

from repro.core import AuditResult, AuditSession, GopherExplainer
from repro.datasets import ProtectedGroup
from repro.fairness import list_metrics
from repro.models import LogisticRegression

SEARCH = dict(max_predicates=2, support_threshold=0.05)
ESTIMATORS = ["first_order", "series", "exact"]
ENGINES = ["lattice", "mining"]

GENDER = ProtectedGroup(attribute="gender", privileged_category="Male")


@pytest.fixture(scope="module")
def session(lr_model, german_train, german_test):
    return AuditSession(lr_model, **SEARCH).fit(german_train, german_test)


def assert_same_explanations(fresh, view, abs_tol=1e-10):
    assert [e.pattern for e in fresh] == [e.pattern for e in view]
    for a, b in zip(fresh, view):
        assert a.est_responsibility == pytest.approx(b.est_responsibility, abs=abs_tol)
        assert a.est_bias_change == pytest.approx(b.est_bias_change, abs=abs_tol)
        assert a.support == pytest.approx(b.support, abs=1e-12)


class TestSessionVsFreshEquivalence:
    @pytest.mark.parametrize("metric", list_metrics())
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_identical_explanations(
        self, session, lr_model, german_train, german_test, metric, engine, estimator
    ):
        fresh = GopherExplainer(
            lr_model, metric=metric, engine=engine, estimator=estimator, **SEARCH
        ).fit(german_train, german_test)
        fresh_result = fresh.explain(k=3, verify=False)

        view = session.explainer(metric=metric, estimator=estimator)
        view.config.engine = engine
        view_result = view.explain(k=3, verify=False)
        assert_same_explanations(fresh_result, view_result)

    def test_view_matches_fresh_for_non_default_group(
        self, session, lr_model, german_train, german_test
    ):
        fresh = GopherExplainer(lr_model, metric="statistical_parity", **SEARCH).fit(
            german_train.with_protected(GENDER), german_test.with_protected(GENDER)
        )
        fresh_result = fresh.explain(k=3, verify=False)
        view = session.explainer(metric="statistical_parity", group=GENDER)
        assert_same_explanations(fresh_result, view.explain(k=3, verify=False))

    def test_view_responsibility_queries_match(self, session, fo_estimator):
        from repro.patterns import Pattern, Predicate

        view = session.explainer(metric="statistical_parity", estimator="first_order")
        pattern = Pattern([Predicate("gender", "=", "Female")])
        mask = pattern.mask(session.train_data.table)
        expected = fo_estimator.responsibility(np.flatnonzero(mask))
        assert view.responsibility_of(pattern) == pytest.approx(expected, abs=1e-12)


class TestAccounting:
    def test_one_factorization_across_three_metrics(self, lr_model, german_train, german_test):
        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        result = session.audit(
            metrics=["statistical_parity", "equal_opportunity", "average_odds"], k=2
        )
        assert isinstance(result, AuditResult)
        assert len(result) == 3
        assert session.stats["hessian_factorizations"] == 1
        assert session.stats["hessian_builds"] == 1
        assert session.stats["per_sample_grad_builds"] == 1
        assert session.stats["alphabet_builds"] == 1

    def test_one_tidlist_build_under_mining_engine(self, lr_model, german_train, german_test):
        session = AuditSession(lr_model, engine="mining", **SEARCH).fit(
            german_train, german_test
        )
        session.audit(
            metrics=["statistical_parity", "equal_opportunity", "average_odds"],
            groups=[german_train.protected, GENDER],
            k=2,
        )
        assert session.stats["tidlist_builds"] == 1
        assert session.stats["alphabet_builds"] == 1
        assert session.stats["hessian_factorizations"] == 1

    def test_repeated_explain_on_one_view_reuses_alphabet(self, session):
        before = session.stats["alphabet_builds"]
        view = session.explainer(metric="statistical_parity")
        view.explain(k=1, verify=False)
        view.explain(k=1, verify=False)
        assert session.stats["alphabet_builds"] == max(before, 1)

    def test_distinct_search_params_build_distinct_alphabets(self, session):
        view = session.explainer(metric="statistical_parity")
        before = dict(session.stats)
        view.config.support_threshold = 0.2
        view.explain(k=1, verify=False)
        assert session.stats["alphabet_builds"] == before["alphabet_builds"] + 1
        # ... but never a second factorization.
        assert session.stats["hessian_factorizations"] == before["hessian_factorizations"]


class TestAuditResult:
    @pytest.fixture(scope="class")
    def audit(self, session):
        return session.audit(
            metrics=["statistical_parity", "equal_opportunity"],
            groups=[session.train_data.protected, GENDER],
            k=2,
        )

    def test_grid_shape_and_order(self, audit):
        assert len(audit) == 4
        assert [(q.metric, q.group.attribute) for q in audit] == [
            ("statistical_parity", "age"),
            ("equal_opportunity", "age"),
            ("statistical_parity", "gender"),
            ("equal_opportunity", "gender"),
        ]

    def test_get_by_metric_and_attribute(self, audit):
        cell = audit.get("equal_opportunity", "gender")
        assert cell.group == GENDER
        with pytest.raises(KeyError, match="several protected attributes"):
            audit.get("statistical_parity")
        with pytest.raises(KeyError, match="no audit query"):
            audit.get("predictive_parity")

    def test_render_mentions_every_cell(self, audit):
        text = audit.render()
        for query in audit:
            assert query.metric in text
            assert query.group.describe() in text

    def test_records_carry_group(self, audit):
        records = audit.to_records()
        assert records
        assert {r["protected_attribute"] for r in records} == {"age", "gender"}

    def test_stats_snapshot_attached(self, audit):
        assert audit.stats["hessian_factorizations"] == 1
        assert audit.setup_seconds >= 0.0


class TestStaleModelRejected:
    def test_prefitted_model_with_wrong_width_raises(
        self, lr_model, german_train, german_test
    ):
        # lr_model is fitted on the German encoding; a table with a column
        # removed encodes to a different width.
        narrow_table = german_train.table.drop(["purpose"])
        from repro.datasets.base import Dataset

        narrow_train = Dataset(
            "german-narrow", narrow_table, german_train.labels,
            german_train.protected, german_train.favorable_label,
        )
        narrow_test = Dataset(
            "german-narrow", german_test.table.drop(["purpose"]), german_test.labels,
            german_test.protected, german_test.favorable_label,
        )
        gopher = GopherExplainer(lr_model, max_predicates=1)
        with pytest.raises(ValueError, match="features"):
            gopher.fit(narrow_train, narrow_test)

    def test_error_names_both_dimensions(self, lr_model, german_train, german_test):
        from repro.datasets.base import Dataset

        narrow = Dataset(
            "g", german_train.table.drop(["purpose"]), german_train.labels,
            german_train.protected, german_train.favorable_label,
        )
        expected = lr_model.num_features
        with pytest.raises(ValueError) as err:
            AuditSession(lr_model, max_predicates=1).fit(
                narrow,
                Dataset(
                    "g", german_test.table.drop(["purpose"]), german_test.labels,
                    german_test.protected, german_test.favorable_label,
                ),
            )
        assert str(expected) in str(err.value)

    def test_matching_prefitted_model_accepted_and_not_refit(
        self, lr_model, german_train, german_test
    ):
        theta_before = lr_model.theta.copy()
        AuditSession(lr_model, max_predicates=1).fit(german_train, german_test)
        np.testing.assert_array_equal(lr_model.theta, theta_before)


class TestReviewRegressions:
    def test_group_declared_on_test_split_is_honored(self, lr_model, german_train, german_test):
        """The privileged mask has always come from the *test* dataset's
        declaration; a group set only there must not be silently replaced
        by the train split's default."""
        gopher = GopherExplainer(lr_model, max_predicates=1)
        gopher.fit(german_train, german_test.with_protected(GENDER))
        expected = GENDER.privileged_mask(german_test.table)
        np.testing.assert_array_equal(gopher.test_ctx.privileged, expected)

    def test_estimator_family_override_drops_foreign_kwargs(
        self, lr_model, german_train, german_test
    ):
        session = AuditSession(
            lr_model,
            estimator="second_order",
            estimator_kwargs={"variant": "series"},
            **SEARCH,
        ).fit(german_train, german_test)
        view = session.explainer(estimator="first_order")  # must not get variant=
        assert view.estimator.__class__.__name__ == "FirstOrderInfluence"
        view.explain(k=1, verify=False)

    def test_alias_override_keeps_second_order_kwargs(
        self, lr_model, german_train, german_test
    ):
        """'exact'/'series' are the second-order family: overriding with an
        alias must keep shared kwargs like damping (same solver, still one
        factorization) while its fixed variant wins over the config's."""
        session = AuditSession(
            lr_model,
            estimator="second_order",
            estimator_kwargs={"variant": "series", "damping": 1e-3},
            **SEARCH,
        ).fit(german_train, german_test)
        default = session.explainer()
        exact = session.explainer(estimator="exact")
        assert default.estimator.variant == "series"
        assert exact.estimator.variant == "exact"
        assert exact.estimator.damping == 1e-3
        assert exact.estimator.solver is default.estimator.solver
        assert session.stats["hessian_factorizations"] == 1

    def test_same_family_keeps_config_kwargs(self, lr_model, german_train, german_test):
        session = AuditSession(
            lr_model,
            estimator="second_order",
            estimator_kwargs={"variant": "series"},
            **SEARCH,
        ).fit(german_train, german_test)
        assert session.explainer().estimator.variant == "series"

    def test_get_with_two_groups_over_one_attribute(self, session):
        audit = session.audit(
            metrics=["statistical_parity"],
            groups=[
                ProtectedGroup(attribute="age", privileged_threshold=45.0),
                ProtectedGroup(attribute="age", privileged_threshold=30.0),
            ],
            k=1,
        )
        with pytest.raises(KeyError, match="several groups over attribute"):
            audit.get("statistical_parity", "age")

    def test_view_config_mutation_does_not_leak_to_session(self, session):
        view = session.explainer()
        view.config.exclude_features.add("purpose")
        view.config.estimator_kwargs["variant"] = "exact"
        assert "purpose" not in session.config.exclude_features
        assert "variant" not in session.config.estimator_kwargs


class TestSessionSurface:
    def test_report_rides_session(self, session):
        report = session.report()
        assert "statistical_parity" in report.metrics
        gender_report = session.report(GENDER)
        assert np.isfinite(gender_report.accuracy)

    def test_contexts_share_test_encoding(self, session):
        age_ctx = session.context_for()
        gender_ctx = session.context_for(GENDER)
        assert age_ctx.X is gender_ctx.X  # one shared encoding
        assert not np.array_equal(age_ctx.privileged, gender_ctx.privileged)
        assert session.context_for(GENDER) is gender_ctx  # cached

    def test_unfitted_session_raises(self, lr_model):
        session = AuditSession(lr_model)
        with pytest.raises(RuntimeError, match="not fitted"):
            session.audit()
        with pytest.raises(RuntimeError, match="not fitted"):
            session.explainer()

    def test_config_and_overrides_mutually_exclusive(self, lr_model):
        from repro.core import GopherConfig

        with pytest.raises(ValueError, match="not both"):
            AuditSession(lr_model, GopherConfig(), metric="statistical_parity")

    def test_explainer_fit_exposes_its_session(self, german_train, german_test):
        gopher = GopherExplainer(LogisticRegression(l2_reg=1e-3), max_predicates=1)
        gopher.fit(german_train, german_test)
        assert gopher.session is not None
        assert gopher.session.alphabet_cache is not None
        assert gopher.estimator.artifacts is gopher.session.artifacts


class TestStatsNamespacing:
    """session.stats: namespaced influence.*/mining.* keys + flat aliases."""

    def test_every_counter_is_namespaced_with_flat_alias(self, session):
        session.audit(metrics=["statistical_parity"], k=2)
        stats = session.stats
        namespaced = {k for k in stats if "." in k}
        flat = {k for k in stats if "." not in k}
        assert namespaced and flat
        for key in namespaced:
            _, bare = key.split(".", 1)
            assert bare in flat
            assert stats[key] == stats[bare], key
        # Every flat alias is backed by exactly one namespaced twin — the
        # two layers never shadow each other under distinct names.
        for key in flat:
            twins = [k for k in namespaced if k.endswith("." + key)]
            assert len(twins) == 1, key

    def test_expected_layers_present(self, session):
        stats = session.stats
        assert "influence.hessian_factorizations" in stats
        assert "mining.alphabet_builds" in stats
        assert "influence.edits" in stats
        assert "mining.tidlist_patches" in stats
