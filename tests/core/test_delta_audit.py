"""delta_audit: incremental replay after a data edit equals a fresh re-audit.

The delta-audit contract has three pinned halves:

* **equivalence** — the replayed ``after`` ranking is identical (patterns
  and scores to 1e-8) to re-running the whole engine search against the
  patched session, for every edit kind × top-k width × closed-form
  estimator, for chained edit sequences, and — for relabel edits, where
  the training table (hence the binning) is unchanged — to a *brand-new*
  session built from scratch on the edited data with the same model and
  encoder;
* **accounting** — a certified delta pass performs *zero* heavy rebuilds:
  the Hessian-factorization / alphabet / tidlist build counters are
  untouched and the edit cost lands under ``*_patches`` /
  ``solver_updates``, with the replay evaluating far fewer masks than the
  engine did;
* **policy** — ``recheck="never"`` holds the fast path (and raises when
  the certificate is refused), ``"always"`` forces the fresh search,
  anything else is rejected.
"""

import numpy as np
import pytest

from repro.core import AuditSession
from repro.datasets import random_edit
from repro.models import LogisticRegression

SEARCH = dict(max_predicates=2, support_threshold=0.05, estimator="series")
METRICS = ["statistical_parity", "equal_opportunity"]
# Edit seed chosen so every kind leaves the level-1 alphabet stable on the
# fixture split (most seeds do; a crossing seed would merely exercise the
# fallback path, which test_recheck_never_raises_* pins separately).
EDIT_SEED = 3


def make_session(lr_model, train, test, **overrides):
    return AuditSession(lr_model, **{**SEARCH, **overrides}).fit(train, test)


def assert_matching_audits(left, right, abs_tol=1e-8):
    """Two AuditResults agree query-for-query on patterns and scores."""
    assert len(left.queries) == len(right.queries)
    for ql, qr in zip(left.queries, right.queries):
        assert ql.metric == qr.metric and ql.group == qr.group
        le, re_ = ql.explanations, qr.explanations
        assert [e.pattern for e in le] == [e.pattern for e in re_]
        for a, b in zip(le, re_):
            assert a.est_responsibility == pytest.approx(
                b.est_responsibility, abs=abs_tol
            )
            assert a.est_bias_change == pytest.approx(b.est_bias_change, abs=abs_tol)
            assert a.support == pytest.approx(b.support, abs=1e-12)


class TestDeltaEqualsFreshReaudit:
    """Replay == re-running the engine on the patched session (all kinds × k)."""

    @pytest.mark.parametrize("kind", ["remove", "relabel", "add"])
    @pytest.mark.parametrize("k", [1, 8, 64])
    def test_kinds_and_widths(self, lr_model, german_train, german_test, kind, k):
        sess = make_session(lr_model, german_train, german_test)
        edit = random_edit(sess.train_data, kind, count=8, seed=EDIT_SEED)
        delta = sess.delta_audit(edit, metrics=METRICS, k=k)
        fresh = sess.audit(metrics=METRICS, k=k)
        assert_matching_audits(delta.after, fresh)

    @pytest.mark.parametrize("estimator", ["first_order", "series", "exact"])
    def test_estimators(self, lr_model, german_train, german_test, estimator):
        sess = make_session(lr_model, german_train, german_test, estimator=estimator)
        edit = random_edit(sess.train_data, "remove", count=8, seed=EDIT_SEED)
        delta = sess.delta_audit(edit, metrics=METRICS, k=3)
        fresh = sess.audit(metrics=METRICS, k=3)
        assert_matching_audits(delta.after, fresh)

    def test_large_edit(self, lr_model, german_train, german_test):
        sess = make_session(lr_model, german_train, german_test)
        edit = random_edit(sess.train_data, "remove", count=64, seed=EDIT_SEED)
        delta = sess.delta_audit(edit, metrics=METRICS, k=3)
        assert_matching_audits(delta.after, sess.audit(metrics=METRICS, k=3))

    def test_chained_edits(self, lr_model, german_train, german_test):
        """A remove → relabel → add sequence stays equivalent at every step."""
        sess = make_session(lr_model, german_train, german_test)
        sess.audit(metrics=METRICS, k=3)
        for step, kind in enumerate(["remove", "relabel", "add"]):
            edit = random_edit(sess.train_data, kind, count=5, seed=EDIT_SEED + step)
            delta = sess.delta_audit(edit, metrics=METRICS, k=3)
            assert_matching_audits(delta.after, sess.audit(metrics=METRICS, k=3))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzz_random_edit_sequences(self, lr_model, german_train, german_test, seed):
        """Seeded random edit sequences: delta == fresh whether or not certified."""
        rng = np.random.default_rng(seed)
        sess = make_session(lr_model, german_train, german_test)
        for _ in range(3):
            kind = ("remove", "relabel", "add")[rng.integers(0, 3)]
            count = int(rng.integers(1, 20))
            edit = random_edit(sess.train_data, kind, count, seed=int(rng.integers(1 << 16)))
            delta = sess.delta_audit(edit, metrics=["statistical_parity"], k=3)
            assert_matching_audits(delta.after, sess.audit(metrics=["statistical_parity"], k=3))


class TestRelabelFullPipelineOracle:
    """Relabel edits: delta == a brand-new session built on the edited data.

    Relabel leaves the training table (and therefore the quantile bin
    edges) unchanged, so a from-scratch pipeline over the edited dataset —
    same prefitted model, same encoder, no refit — speaks the same pattern
    language and must agree exactly.  (Row-changing edits keep the frozen
    pre-edit bins by design, so only the same-session oracle applies there.)
    """

    @pytest.mark.parametrize("k", [1, 8, 64])
    def test_matches_from_scratch_session(
        self, lr_model, german_train, german_test, k
    ):
        sess = make_session(lr_model, german_train, german_test)
        edit = random_edit(sess.train_data, "relabel", count=8, seed=EDIT_SEED)
        edited_train = sess.train_data.apply_edit(edit)
        delta = sess.delta_audit(edit, metrics=METRICS, k=k)

        scratch = AuditSession(sess.model, **SEARCH).fit(
            edited_train, german_test, encoder=sess.encoder
        )
        assert_matching_audits(delta.after, scratch.audit(metrics=METRICS, k=k))


class TestCertificateAndCounters:
    """A certified pass replays — no rebuilds, far fewer evaluations."""

    @pytest.fixture()
    def certified(self, lr_model, german_train, german_test):
        sess = make_session(lr_model, german_train, german_test)
        before_audit = sess.audit(metrics=METRICS, k=3)
        before_stats = dict(sess.stats)
        edit = random_edit(sess.train_data, "remove", count=8, seed=EDIT_SEED)
        # recheck="never" turns any silent fallback into a hard failure.
        delta = sess.delta_audit(edit, metrics=METRICS, k=3, recheck="never")
        return sess, before_audit, before_stats, delta

    def test_every_query_certified(self, certified):
        _, _, _, delta = certified
        assert delta.num_certified == len(delta.queries)
        assert delta.num_researched == 0
        for q in delta.queries:
            assert q.certified and not q.recheck_ran and q.reason == ""
            assert q.after.lattice.engine == "delta"

    def test_no_heavy_rebuilds(self, certified):
        sess, _, before, delta = certified
        after = delta.stats
        for counter in (
            "influence.hessian_factorizations",
            "influence.per_sample_grad_builds",
            "influence.hessian_builds",
            "mining.alphabet_builds",
            "mining.tidlist_builds",
        ):
            assert after[counter] == before[counter], counter
        assert after["influence.edits"] == before["influence.edits"] + 1
        assert after["mining.alphabet_patches"] == before["mining.alphabet_patches"] + 1
        assert after["influence.solver_updates"] >= before["influence.solver_updates"]

    def test_replay_evaluates_fewer_masks(self, certified):
        _, before_audit, _, delta = certified
        for bq, dq in zip(before_audit.queries, delta.queries):
            assert dq.after.lattice.num_evaluated < bq.explanations.lattice.num_evaluated

    def test_replay_records_chain(self, certified):
        """The replay refreshes its lattice record so further edits replay too."""
        _, _, _, delta = certified
        for q in delta.queries:
            assert q.after.lattice.record is not None

    def test_delta_records_statuses(self, certified):
        _, _, _, delta = certified
        for q in delta.queries:
            rows = q.delta_records()
            assert len(rows) >= len(q.after)
            for row in rows:
                assert row.get("status") in {"kept", "moved", "entered", "dropped", None}
        text = delta.render()
        assert "Delta audit after edit(remove 8)" in text


class TestRecheckPolicies:
    def test_invalid_recheck_rejected(self, lr_model, german_train, german_test):
        sess = make_session(lr_model, german_train, german_test)
        edit = random_edit(sess.train_data, "remove", count=4, seed=EDIT_SEED)
        with pytest.raises(ValueError, match="recheck"):
            sess.delta_audit(edit, metrics=METRICS, recheck="sometimes")

    def test_always_forces_fresh_search(self, lr_model, german_train, german_test):
        sess = make_session(lr_model, german_train, german_test)
        edit = random_edit(sess.train_data, "remove", count=8, seed=EDIT_SEED)
        delta = sess.delta_audit(edit, metrics=METRICS, k=3, recheck="always")
        for q in delta.queries:
            assert q.recheck_ran and not q.certified
            assert q.reason == "recheck forced"
        assert_matching_audits(delta.after, sess.audit(metrics=METRICS, k=3))

    def test_never_raises_without_replay_record(
        self, lr_model, german_train, german_test
    ):
        """The mining engine records no lattice, so its certificate refuses."""
        sess = make_session(lr_model, german_train, german_test, engine="mining")
        edit = random_edit(sess.train_data, "remove", count=4, seed=EDIT_SEED)
        with pytest.raises(RuntimeError, match="certificate refused"):
            sess.delta_audit(edit, metrics=["statistical_parity"], recheck="never")

    def test_never_raises_beyond_depth_two(self, lr_model, german_train, german_test):
        sess = make_session(lr_model, german_train, german_test, max_predicates=3)
        edit = random_edit(sess.train_data, "remove", count=4, seed=EDIT_SEED)
        with pytest.raises(RuntimeError, match="certificate refused"):
            sess.delta_audit(edit, metrics=["statistical_parity"], recheck="never")

    def test_auto_falls_back_and_stays_correct(
        self, lr_model, german_train, german_test
    ):
        """Refused certificates silently re-search — and the answers still match."""
        sess = make_session(lr_model, german_train, german_test, engine="mining")
        edit = random_edit(sess.train_data, "remove", count=8, seed=EDIT_SEED)
        delta = sess.delta_audit(edit, metrics=["statistical_parity"], k=3)
        for q in delta.queries:
            assert not q.certified and q.recheck_ran
            assert q.reason != ""
        assert_matching_audits(
            delta.after, sess.audit(metrics=["statistical_parity"], k=3)
        )


class TestEditValidationThroughSession:
    def test_unfitted_session_rejects_delta(self):
        from repro.datasets import DataEdit

        sess = AuditSession(LogisticRegression(), **SEARCH)
        with pytest.raises(RuntimeError, match="not fitted"):
            sess.delta_audit(DataEdit.remove([0]))

    def test_out_of_range_edit_rejected(self, lr_model, german_train, german_test):
        from repro.datasets import DataEdit

        sess = make_session(lr_model, german_train, german_test)
        sess.audit(metrics=["statistical_parity"], k=3)
        with pytest.raises(IndexError):
            sess.delta_audit(
                DataEdit.remove([sess.train_data.num_rows + 5]),
                metrics=["statistical_parity"],
            )
