"""Golden regression: top-k German explanations under ``estimator="exact"``.

The engine-equivalence suite pins the series/default path; this locks the
*exact* Newton-step estimator end to end for both candidate engines — the
Woodbury batch drives the whole search, so any drift in the downdate
algebra, the fallback routing, or the engine plumbing shows up as a
changed pattern or score here.  Values generated from the seed pipeline
(German 800 / seed 11 / split 0.25 / logistic l2=1e-3, smooth evaluation,
max_predicates=2, tau=0.05).
"""

from __future__ import annotations

import pytest

from repro.core import GopherExplainer
from repro.models import LogisticRegression

GOLDEN_TOP3 = [
    ("age >= 45 ∧ gender = Female", 0.490129445513, 0.121667, -0.077968713542),
    ("duration >= 27 ∧ installment_rate >= 2", 0.489042531541, 0.213333, -0.077795809659),
    ("existing_credits < 2 ∧ residence = 3", 0.195996536608, 0.088333, -0.031178697705),
]


@pytest.fixture(scope="module", params=["lattice", "mining"])
def exact_explanations(request, german_train, german_test):
    gopher = GopherExplainer(
        LogisticRegression(l2_reg=1e-3),
        metric="statistical_parity",
        estimator="exact",
        estimator_kwargs={"evaluation": "smooth"},
        engine=request.param,
        max_predicates=2,
        support_threshold=0.05,
    )
    gopher.fit(german_train, german_test)
    return request.param, gopher, gopher.explain(k=3, verify=False)


class TestExactGolden:
    def test_top3_patterns_and_scores(self, exact_explanations):
        engine, _, result = exact_explanations
        assert len(result.explanations) == 3
        for explanation, (pattern, resp, support, bias) in zip(result, GOLDEN_TOP3):
            assert str(explanation.pattern) == pattern, f"engine={engine}"
            assert explanation.est_responsibility == pytest.approx(resp, abs=1e-9)
            assert explanation.support == pytest.approx(support, abs=1e-6)
            assert explanation.est_bias_change == pytest.approx(bias, abs=1e-9)

    def test_num_evaluated_reported(self, exact_explanations):
        """Evaluation-count accounting must stay wired under the exact path
        (the miner evaluates one candidate per distinct extent, so it never
        exceeds the lattice's count on this workload)."""
        engine, _, result = exact_explanations
        assert result.lattice.num_evaluated > 0
        expected = {"lattice": 2273, "mining": 2133}
        assert result.lattice.num_evaluated == expected[engine]

    def test_search_ran_on_woodbury_batches(self, exact_explanations):
        """The search must actually exercise the batched exact fast path —
        if every candidate fell back to the dense loop the golden values
        would still pass but the tentpole would be dead code."""
        _, gopher, _ = exact_explanations
        stats = gopher.estimator.exact_batch_stats
        assert stats["woodbury"] > 0
        assert stats["fallback_factors"] == 0
