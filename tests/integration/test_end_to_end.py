"""Cross-module integration tests: the full Gopher story on each dataset."""

import numpy as np
import pytest

from repro.core import GopherExplainer
from repro.datasets import load_adult, load_german, load_sqf, train_test_split
from repro.models import LinearSVM, LogisticRegression, NeuralNetwork


class TestGermanPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        ds = load_german(800, seed=11)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3), max_predicates=2, support_threshold=0.05
        )
        gopher.fit(train, test)
        return gopher, gopher.explain(k=3, verify=True)

    def test_model_biased(self, result):
        gopher, _ = result
        assert gopher.original_bias > 0.1

    def test_top_explanation_verified_reduction(self, result):
        _, explanations = result
        assert explanations[0].gt_responsibility > 0.05

    def test_age_mechanism_found(self, result):
        _, explanations = result
        all_features = set()
        for e in explanations:
            all_features |= e.pattern.features()
        assert "age" in all_features or "gender" in all_features


class TestAdultPipeline:
    def test_gender_bias_explained(self):
        ds = load_adult(2500, seed=0)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            estimator="first_order",
            max_predicates=2,
            support_threshold=0.05,
        )
        gopher.fit(train, test)
        assert gopher.original_bias > 0.1
        result = gopher.explain(k=3, verify=True)
        assert len(result) >= 1
        features = set().union(*(e.pattern.features() for e in result))
        # The household-income artifact: marital/relationship/gender patterns.
        assert features & {"marital", "relationship", "gender"}


class TestSQFPipeline:
    def test_race_bias_explained_with_flipped_favorable(self):
        ds = load_sqf(3000, seed=0)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            estimator="first_order",
            max_predicates=2,
            support_threshold=0.05,
        )
        gopher.fit(train, test)
        assert gopher.original_bias > 0.05  # whites not-frisked more often
        result = gopher.explain(k=3, verify=True)
        features = set().union(*(e.pattern.features() for e in result))
        assert "race" in features or "fits_description" in features


class TestOtherModels:
    def test_svm_pipeline_runs(self):
        ds = load_german(600, seed=11)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            LinearSVM(l2_reg=1e-2),
            estimator="first_order",
            max_predicates=2,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=2, verify=False)
        assert len(result) >= 1

    def test_nn_pipeline_runs(self):
        ds = load_german(600, seed=11)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            NeuralNetwork(hidden_units=6, l2_reg=1e-3, seed=0),
            estimator="first_order",
            max_predicates=2,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=2, verify=False)
        assert len(result) >= 1

    def test_equal_opportunity_metric_pipeline(self):
        ds = load_german(600, seed=11)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            metric="equal_opportunity",
            estimator="first_order",
            max_predicates=2,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=2, verify=False)
        assert result.metric_name == "equal_opportunity"


class TestRemovalActuallyHelps:
    def test_removing_top_pattern_reduces_bias_on_refit(self):
        """The full loop a practitioner would run: explain, remove, retrain,
        re-measure."""
        ds = load_german(800, seed=11)
        train, test = train_test_split(ds, 0.25, seed=1)
        gopher = GopherExplainer(LogisticRegression(l2_reg=1e-3), max_predicates=2)
        gopher.fit(train, test)
        before = gopher.original_bias
        result = gopher.explain(k=1, verify=False)
        mask = result[0].pattern.mask(train.table)
        cleaned = train.without(mask)
        gopher2 = GopherExplainer(LogisticRegression(l2_reg=1e-3), max_predicates=1)
        gopher2.fit(cleaned, test)
        after = gopher2.original_bias
        assert after < before
