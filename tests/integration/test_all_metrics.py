"""Integration: the Gopher pipeline under every registered fairness metric."""

import pytest

from repro.core import GopherExplainer
from repro.datasets import load_german, train_test_split
from repro.fairness import list_metrics
from repro.models import LogisticRegression


@pytest.fixture(scope="module")
def split():
    return train_test_split(load_german(800, seed=11), 0.25, seed=1)


class TestEveryMetricEndToEnd:
    @pytest.mark.parametrize("metric", list_metrics())
    def test_pipeline_produces_explanations(self, split, metric):
        train, test = split
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            metric=metric,
            estimator="first_order",
            max_predicates=2,
            support_threshold=0.05,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=2, verify=False)
        assert result.metric_name == metric
        assert len(result) >= 1
        for explanation in result:
            assert explanation.est_responsibility > 0

    @pytest.mark.parametrize("metric", list_metrics())
    def test_bias_positive_on_planted_data(self, split, metric):
        """German's planted age bias violates every associational metric."""
        train, test = split
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3), metric=metric, max_predicates=1
        )
        gopher.fit(train, test)
        assert gopher.original_bias > 0.0

    def test_different_metrics_can_disagree_on_ranking(self, split):
        """The top pattern is metric-dependent — the reason F is a pipeline
        parameter rather than a fixed choice."""
        train, test = split
        tops = set()
        for metric in ("statistical_parity", "predictive_parity"):
            gopher = GopherExplainer(
                LogisticRegression(l2_reg=1e-3),
                metric=metric,
                estimator="first_order",
                max_predicates=2,
            )
            gopher.fit(train, test)
            result = gopher.explain(k=1, verify=False)
            if result.explanations:
                tops.add(str(result[0].pattern))
        # Not asserting inequality (they *may* agree); assert the pipeline
        # ran and produced at least one distinct winner overall.
        assert len(tops) >= 1
