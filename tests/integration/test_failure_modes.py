"""Failure-injection tests: the degradations DESIGN.md promises we handle."""

import numpy as np
import pytest

from repro.core import GopherExplainer
from repro.datasets import Dataset, ProtectedGroup, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import FirstOrderInfluence
from repro.models import LogisticRegression
from repro.tabular import Table


class TestZeroBias:
    def test_responsibility_undefined_when_unbiased(self):
        """A perfectly unbiased model has F = 0; Def. 3.2 divides by it."""
        rng = np.random.default_rng(0)
        n = 200
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        # Groups split so predictions are exactly balanced by construction.
        privileged = np.arange(n) % 2 == 0
        model = LogisticRegression(l2_reg=1e-3).fit(X, y)
        ctx = FairnessContext(X, y, privileged)
        metric = get_metric("statistical_parity")
        estimator = FirstOrderInfluence(model, X, y, metric, ctx)
        if estimator.original_bias == 0.0:
            with pytest.raises(ZeroDivisionError):
                estimator.responsibility(np.arange(5))
        else:  # sampling made it slightly nonzero: responsibility is finite
            assert np.isfinite(estimator.responsibility(np.arange(5)))


class TestSingularHessian:
    def test_duplicate_features_handled_by_damping(self):
        """Duplicated columns + zero regularization make H singular; the
        solver must fall back to damping instead of crashing."""
        rng = np.random.default_rng(1)
        n = 150
        base = rng.normal(size=(n, 2))
        X = np.hstack([base, base[:, :1]])  # third column duplicates the first
        y = (base[:, 0] > 0).astype(np.int64)
        privileged = rng.random(n) < 0.5
        model = LogisticRegression(l2_reg=0.0, max_iter=200).fit(X, y)
        ctx = FairnessContext(X, y, privileged)
        estimator = FirstOrderInfluence(
            model, X, y, get_metric("statistical_parity"), ctx
        )
        change = estimator.bias_change(np.arange(10))
        assert np.isfinite(change)
        assert estimator.solver.damping_used >= 0.0


class TestDegenerateSearchInputs:
    def test_no_candidates_above_threshold(self):
        """An impossible support threshold yields an empty explanation set,
        not an exception."""
        train, test = train_test_split(load_german(400, seed=11), 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            estimator="first_order",
            support_threshold=0.99,
            max_predicates=2,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=3, verify=False)
        assert len(result) == 0
        assert result.render()  # still renders a header

    def test_constant_feature_column(self):
        """A constant column produces no thresholds and one full-support
        equality predicate; the pipeline must survive it."""
        rng = np.random.default_rng(2)
        n = 300
        group = rng.choice(["a", "b"], size=n)
        signal = rng.normal(size=n)
        y = ((group == "a") * 0.8 + signal > 0.4).astype(np.int64)
        table = Table.from_dict(
            {
                "group": group,
                "signal": signal,
                "constant": np.full(n, 7.0),
            }
        )
        data = Dataset("toy", table, y, ProtectedGroup("group", privileged_category="a"))
        train, test = train_test_split(data, 0.25, seed=0)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            estimator="first_order",
            max_predicates=2,
            support_threshold=0.05,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=2, verify=False)
        assert isinstance(len(result), int)

    def test_tiny_k_larger_than_candidates(self):
        train, test = train_test_split(load_german(400, seed=11), 0.25, seed=1)
        gopher = GopherExplainer(
            LogisticRegression(l2_reg=1e-3),
            estimator="first_order",
            support_threshold=0.4,
            max_predicates=1,
        )
        gopher.fit(train, test)
        result = gopher.explain(k=50, verify=False)
        assert len(result) <= 50  # returns what exists, no error
