"""Tests for repro.models.logistic_regression."""

import numpy as np
import pytest

from repro.models import LogisticRegression


class TestFitPredict:
    def test_learns_separable_problem(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression(l2_reg=1e-3).fit(X, y)
        assert model.accuracy(X, y) > 0.85

    def test_gradient_near_zero_at_optimum(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression(l2_reg=1e-3).fit(X, y)
        assert np.linalg.norm(model.grad(X, y)) < 1e-5

    def test_proba_in_unit_interval(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_predict_thresholds_proba(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), (model.predict_proba(X) >= 0.5).astype(int)
        )

    def test_warm_start_converges_same(self, tiny_xy):
        X, y = tiny_xy
        cold = LogisticRegression(l2_reg=1e-2).fit(X, y)
        warm = LogisticRegression(l2_reg=1e-2).fit(X, y, warm_start=cold.theta + 0.1)
        np.testing.assert_allclose(cold.theta, warm.theta, atol=1e-4)

    def test_no_intercept_mode(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression(fit_intercept=False).fit(X, y)
        assert model.num_params == X.shape[1]

    def test_regularization_shrinks_weights(self, tiny_xy):
        X, y = tiny_xy
        small = LogisticRegression(l2_reg=1e-4).fit(X, y)
        large = LogisticRegression(l2_reg=1.0).fit(X, y)
        assert np.linalg.norm(large.theta) < np.linalg.norm(small.theta)

    def test_overflow_safe_extreme_logits(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        extreme = model.theta * 100.0
        proba = model.predict_proba(X, extreme)
        assert np.isfinite(proba).all()
        assert np.isfinite(model.loss(X, y, extreme))


class TestValidation:
    def test_negative_reg_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LogisticRegression(l2_reg=-1.0)

    def test_unfitted_predict_raises(self, tiny_xy):
        X, _ = tiny_xy
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba(X)

    def test_feature_mismatch_raises(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict_proba(X[:, :2])

    def test_theta_shape_checked(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError, match="theta shape"):
            model.loss(X, y, np.zeros(2))

    def test_nonbinary_labels_rejected(self, tiny_xy):
        X, _ = tiny_xy
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, np.full(len(X), 2))

    def test_clone_is_unfitted_same_hyperparams(self):
        model = LogisticRegression(l2_reg=0.5, fit_intercept=False, max_iter=10)
        clone = model.clone()
        assert clone.theta is None
        assert clone.l2_reg == 0.5
        assert clone.fit_intercept is False
        assert clone.max_iter == 10


class TestSubsetGradSum:
    def test_matches_manual_sum(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        idx = np.array([0, 3, 7])
        expected = model.per_sample_grads(X[idx], y[idx]).sum(axis=0)
        np.testing.assert_allclose(model.subset_grad_sum(X, y, idx), expected)

    def test_empty_subset_is_zero(self, tiny_xy):
        X, y = tiny_xy
        model = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(
            model.subset_grad_sum(X, y, np.array([], dtype=int)),
            np.zeros(model.num_params),
        )
