"""Tests for repro.models.optim."""

import numpy as np
import pytest

from repro.models.optim import gradient_descent, minimize_loss


class TestMinimizeLoss:
    def test_quadratic_exact(self):
        target = np.array([1.0, -2.0, 3.0])
        loss = lambda t: 0.5 * float((t - target) @ (t - target))
        grad = lambda t: t - target
        solution = minimize_loss(loss, grad, np.zeros(3))
        np.testing.assert_allclose(solution, target, atol=1e-6)

    def test_respects_start_for_multimodal(self):
        # f(t) = (t^2 - 1)^2 has minima at ±1; L-BFGS finds the nearby one.
        loss = lambda t: float((t[0] ** 2 - 1) ** 2)
        grad = lambda t: np.array([4 * t[0] * (t[0] ** 2 - 1)])
        assert minimize_loss(loss, grad, np.array([0.8]))[0] == pytest.approx(1.0, abs=1e-4)
        assert minimize_loss(loss, grad, np.array([-0.8]))[0] == pytest.approx(-1.0, abs=1e-4)


class TestGradientDescent:
    def test_converges_on_quadratic(self):
        target = np.array([2.0, -1.0])
        grad = lambda t: t - target
        out = gradient_descent(grad, np.zeros(2), learning_rate=0.5, num_steps=100)
        np.testing.assert_allclose(out, target, atol=1e-6)

    def test_zero_steps_returns_start(self):
        start = np.array([1.0, 2.0])
        out = gradient_descent(lambda t: t, start, num_steps=0)
        np.testing.assert_array_equal(out, start)

    def test_does_not_mutate_start(self):
        start = np.array([1.0])
        gradient_descent(lambda t: t, start, num_steps=3)
        assert start[0] == 1.0

    def test_single_step_formula(self):
        grad = lambda t: np.array([3.0])
        out = gradient_descent(grad, np.array([1.0]), learning_rate=0.1, num_steps=1)
        assert out[0] == pytest.approx(1.0 - 0.3)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError, match="positive"):
            gradient_descent(lambda t: t, np.zeros(1), learning_rate=0.0)

    def test_invalid_steps(self):
        with pytest.raises(ValueError, match="non-negative"):
            gradient_descent(lambda t: t, np.zeros(1), num_steps=-1)
