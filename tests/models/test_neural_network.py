"""Tests for repro.models.neural_network."""

import numpy as np
import pytest

from repro.models import NeuralNetwork


@pytest.fixture(scope="module")
def xor_xy():
    """XOR-ish data a linear model cannot fit but a 1-hidden-layer net can."""
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(np.int64)
    return X, y


class TestFitPredict:
    def test_solves_nonlinear_problem(self, xor_xy):
        X, y = xor_xy
        model = NeuralNetwork(hidden_units=8, l2_reg=1e-4, seed=0).fit(X, y)
        assert model.accuracy(X, y) > 0.9

    def test_linear_data(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=4, l2_reg=1e-3, seed=0).fit(X, y)
        assert model.accuracy(X, y) > 0.85

    def test_num_params_formula(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=10, seed=0).fit(X, y)
        d = X.shape[1]
        assert model.num_params == 10 * d + 10 + 10 + 1

    def test_deterministic_given_seed(self, tiny_xy):
        X, y = tiny_xy
        a = NeuralNetwork(hidden_units=4, seed=3).fit(X, y)
        b = NeuralNetwork(hidden_units=4, seed=3).fit(X, y)
        np.testing.assert_allclose(a.theta, b.theta, atol=1e-8)

    def test_gradient_near_zero_at_optimum(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=4, l2_reg=1e-3, seed=0).fit(X, y)
        assert np.linalg.norm(model.grad(X, y)) < 1e-4

    def test_warm_start(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=4, seed=0).fit(X, y)
        warm = NeuralNetwork(hidden_units=4, seed=0)
        warm.fit(X, y, warm_start=model.theta.copy())
        assert warm.accuracy(X, y) >= model.accuracy(X, y) - 0.02

    def test_clone_preserves_config(self):
        clone = NeuralNetwork(hidden_units=7, l2_reg=0.1, max_iter=5, seed=9,
                              hessian_mode="exact_fd").clone()
        assert clone.hidden_units == 7
        assert clone.hessian_mode == "exact_fd"
        assert clone.theta is None


class TestValidation:
    def test_invalid_hidden_units(self):
        with pytest.raises(ValueError, match="hidden_units"):
            NeuralNetwork(hidden_units=0)

    def test_invalid_hessian_mode(self):
        with pytest.raises(ValueError, match="hessian_mode"):
            NeuralNetwork(hessian_mode="bogus")

    def test_negative_reg(self):
        with pytest.raises(ValueError, match="non-negative"):
            NeuralNetwork(l2_reg=-1e-3)

    def test_feature_mismatch(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=3, seed=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict_proba(X[:, :2])


class TestHessianModes:
    def test_modes_agree_near_interpolation(self, tiny_xy):
        """GGN equals the exact Hessian when residuals vanish; on real data
        they should at least agree in scale."""
        X, y = tiny_xy
        exact = NeuralNetwork(hidden_units=3, l2_reg=1e-2, seed=0, hessian_mode="exact_fd")
        exact.fit(X, y)
        ggn = NeuralNetwork(hidden_units=3, l2_reg=1e-2, seed=0, hessian_mode="gauss_newton")
        ggn.fit(X, y)
        h_exact = exact.hessian(X, y)
        h_ggn = ggn.hessian(X, y, exact.theta)
        ratio = np.trace(h_ggn) / np.trace(h_exact)
        assert 0.3 < ratio < 3.0
