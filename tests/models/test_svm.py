"""Tests for repro.models.svm."""

import numpy as np
import pytest

from repro.models import LinearSVM


class TestFitPredict:
    def test_learns_separable_problem(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        assert model.accuracy(X, y) > 0.85

    def test_gradient_near_zero_at_optimum(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        assert np.linalg.norm(model.grad(X, y)) < 1e-5

    def test_decision_function_sign_matches_prediction(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM().fit(X, y)
        decisions = model.decision_function(X)
        np.testing.assert_array_equal(model.predict(X), (decisions >= 0).astype(int))

    def test_proba_is_monotone_in_margin(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM().fit(X, y)
        margins = model.decision_function(X)
        proba = model.predict_proba(X)
        order = np.argsort(margins)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_loss_zero_when_margins_large(self):
        X = np.array([[1.0], [-1.0]])
        y = np.array([1, 0])
        model = LinearSVM(l2_reg=0.0)
        model._num_features = 1
        theta = np.array([10.0, 0.0])
        losses = model.per_sample_losses(X, y, theta)
        np.testing.assert_allclose(losses, 0.0, atol=1e-12)

    def test_squared_hinge_penalizes_violations(self):
        X = np.array([[1.0]])
        y = np.array([1])
        model = LinearSVM(l2_reg=0.0)
        model._num_features = 1
        loss_correct = model.per_sample_losses(X, y, np.array([2.0, 0.0]))[0]
        loss_wrong = model.per_sample_losses(X, y, np.array([-2.0, 0.0]))[0]
        assert loss_wrong > loss_correct

    def test_clone(self):
        clone = LinearSVM(l2_reg=0.3, max_iter=42).clone()
        assert clone.theta is None
        assert clone.l2_reg == 0.3
        assert clone.max_iter == 42


class TestValidation:
    def test_negative_reg_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LinearSVM(l2_reg=-0.1)

    def test_unfitted_raises(self, tiny_xy):
        X, _ = tiny_xy
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearSVM().decision_function(X)

    def test_hessian_positive_definite_with_reg(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        eigenvalues = np.linalg.eigvalsh(model.hessian(X, y))
        assert eigenvalues.min() > 0
