"""Finite-difference validation of every model's analytic derivatives.

Everything in the influence stack rests on these derivatives being exact,
so each model's gradient, per-sample gradients, Hessian, and probability
gradient are checked against central finite differences of the loss.
"""

import numpy as np
import pytest

from repro.models import LinearSVM, LogisticRegression, NeuralNetwork

EPS = 1e-6


def fd_grad(f, theta, eps=EPS):
    grad = np.zeros_like(theta)
    for k in range(len(theta)):
        step = np.zeros_like(theta)
        step[k] = eps
        grad[k] = (f(theta + step) - f(theta - step)) / (2 * eps)
    return grad


@pytest.fixture(scope="module")
def xy():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(60, 5))
    y = (X[:, 0] - 0.5 * X[:, 1] + rng.normal(scale=0.5, size=60) > 0).astype(np.int64)
    return X, y


def fitted_models(X, y):
    return [
        LogisticRegression(l2_reg=1e-2).fit(X, y),
        LinearSVM(l2_reg=1e-2).fit(X, y),
        NeuralNetwork(hidden_units=4, l2_reg=1e-2, seed=0).fit(X, y),
    ]


@pytest.fixture(scope="module")
def models(xy):
    return fitted_models(*xy)


class TestGradientMatchesFiniteDifferences:
    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_mean_grad(self, xy, models, idx):
        X, y = xy
        model = models[idx]
        rng = np.random.default_rng(idx)
        theta = model.theta + 0.05 * rng.normal(size=model.num_params)
        analytic = model.grad(X, y, theta)
        numeric = fd_grad(lambda t: model.loss(X, y, t), theta)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)

    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_per_sample_grads_mean_to_grad(self, xy, models, idx):
        X, y = xy
        model = models[idx]
        per_sample = model.per_sample_grads(X, y)
        np.testing.assert_allclose(per_sample.mean(axis=0), model.grad(X, y), atol=1e-12)

    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_single_row_grad(self, xy, models, idx):
        X, y = xy
        model = models[idx]
        row_X, row_y = X[:1], y[:1]
        analytic = model.per_sample_grads(row_X, row_y)[0]
        numeric = fd_grad(lambda t: model.loss(row_X, row_y, t), model.theta)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)


class TestHessianMatchesFiniteDifferences:
    def test_lr_hessian(self, xy, models):
        X, y = xy
        model = models[0]
        analytic = model.hessian(X, y)
        numeric = _fd_hessian(model, X, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_svm_hessian_away_from_kink(self, xy):
        X, y = xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        # Shift parameters so no margin sits exactly at the kink m = 1.
        theta = model.theta * 1.07 + 1e-3
        margins = (2.0 * y - 1.0) * (np.hstack([X, np.ones((len(X), 1))]) @ theta)
        assert np.abs(margins - 1.0).min() > 1e-3
        analytic = model.hessian(X, y, theta)
        numeric = _fd_hessian(model, X, y, theta)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_nn_exact_fd_hessian(self, xy):
        X, y = xy
        model = NeuralNetwork(hidden_units=3, l2_reg=1e-2, seed=1, hessian_mode="exact_fd")
        model.fit(X, y)
        analytic = model.hessian(X, y)
        numeric = _fd_hessian(model, X, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_nn_gauss_newton_is_psd(self, xy):
        X, y = xy
        model = NeuralNetwork(hidden_units=3, l2_reg=0.0, seed=1).fit(X, y)
        eigenvalues = np.linalg.eigvalsh(model.hessian(X, y))
        assert eigenvalues.min() > -1e-10

    def test_hessian_symmetric(self, xy, models):
        X, y = xy
        for model in models:
            H = model.hessian(X, y)
            np.testing.assert_allclose(H, H.T, atol=1e-10)


class TestInputGrads:
    """The analytic ∇_x(vᵀ∇_θℓ) hook that fast-paths the §5 update search."""

    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_matches_fd(self, xy, models, idx):
        X, y = xy
        model = models[idx]
        rng = np.random.default_rng(7 + idx)
        v = rng.normal(size=model.num_params)
        analytic = model.input_grads(X[:6], y[:6], v)
        assert analytic.shape == (6, X.shape[1])
        for i in range(6):
            def scalar(x_row, i=i):
                grads = model.per_sample_grads(x_row[None, :], y[i : i + 1])
                return float(v @ grads[0])

            numeric = fd_grad(scalar, X[i].copy())
            np.testing.assert_allclose(analytic[i], numeric, atol=1e-5, rtol=1e-4)

    def test_svm_matches_fd_away_from_kink(self, xy):
        """Margins at the kink have measure zero; checked off-kink so the
        subgradient convention cannot blur the comparison."""
        X, y = xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        theta = model.theta * 1.07 + 1e-3
        margins = (2.0 * y - 1.0) * (np.hstack([X, np.ones((len(X), 1))]) @ theta)
        assert np.abs(margins - 1.0).min() > 1e-3
        rng = np.random.default_rng(3)
        v = rng.normal(size=model.num_params)
        analytic = model.input_grads(X[:8], y[:8], v, theta)
        for i in range(8):
            def scalar(x_row, i=i):
                grads = model.per_sample_grads(x_row[None, :], y[i : i + 1], theta)
                return float(v @ grads[0])

            numeric = fd_grad(scalar, X[i].copy())
            np.testing.assert_allclose(analytic[i], numeric, atol=1e-5, rtol=1e-4)

    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_vector_shape_checked(self, xy, models, idx):
        X, y = xy
        with pytest.raises(ValueError, match="vector shape"):
            models[idx].input_grads(X, y, np.zeros(2))

    def test_default_signals_fallback(self, xy):
        """Models without a closed form keep the NotImplementedError default
        that routes the update search to finite differences."""
        from repro.models.base import TwiceDifferentiableClassifier

        X, y = xy
        model = LogisticRegression(l2_reg=1e-2).fit(X, y)
        with pytest.raises(NotImplementedError):
            TwiceDifferentiableClassifier.input_grads(
                model, X, y, np.zeros(model.num_params)
            )


class TestGradProba:
    @pytest.mark.parametrize("idx", [0, 1, 2], ids=["lr", "svm", "nn"])
    def test_matches_fd(self, xy, models, idx):
        X, _ = xy
        model = models[idx]
        analytic = model.grad_proba(X[:5])
        for i in range(5):
            numeric = fd_grad(
                lambda t, i=i: float(model.predict_proba(X[i : i + 1], t)[0]), model.theta
            )
            np.testing.assert_allclose(analytic[i], numeric, atol=1e-5, rtol=1e-4)


def _fd_hessian(model, X, y, theta=None, eps=1e-5):
    theta = model.theta if theta is None else theta
    p = len(theta)
    H = np.zeros((p, p))
    for k in range(p):
        step = np.zeros(p)
        step[k] = eps
        H[:, k] = (model.grad(X, y, theta + step) - model.grad(X, y, theta - step)) / (2 * eps)
    return 0.5 * (H + H.T)
