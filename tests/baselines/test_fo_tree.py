"""Tests for the FO-tree baseline explainer."""

import numpy as np
import pytest

from repro.baselines import FOTreeExplainer
from repro.influence import FirstOrderInfluence


@pytest.fixture(scope="module")
def fo_tree(german_train, fo_estimator):
    return FOTreeExplainer(max_depth=3, min_samples_leaf=20).fit(
        german_train.table, fo_estimator
    )


class TestFOTree:
    def test_topk_count(self, fo_tree):
        assert len(fo_tree.top_k(3)) == 3

    def test_explanations_sorted_by_influence(self, fo_tree):
        explanations = fo_tree.top_k(5)
        totals = [e.total_influence for e in explanations]
        assert totals == sorted(totals)

    def test_top_explanation_reduces_bias(self, fo_tree):
        assert fo_tree.top_k(1)[0].total_influence < 0

    def test_conditions_renderable(self, fo_tree):
        for explanation in fo_tree.top_k(3):
            text = explanation.describe()
            assert "sup=" in text

    def test_root_excluded(self, fo_tree):
        for explanation in fo_tree.top_k(10):
            assert explanation.node_depth >= 1
            assert explanation.support < 1.0

    def test_supports_larger_than_gopher_typical(self, fo_tree):
        """Qualitative paper finding: FO-tree explanations are coarser
        (higher support) than Gopher's."""
        top = fo_tree.top_k(3)
        assert max(e.support for e in top) > 0.15

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            FOTreeExplainer().top_k(1)

    def test_invalid_k(self, fo_tree):
        with pytest.raises(ValueError, match="k must be"):
            fo_tree.top_k(0)

    def test_row_mismatch_rejected(self, german_test, fo_estimator):
        with pytest.raises(ValueError, match="must match"):
            FOTreeExplainer().fit(german_test.table, fo_estimator)

    def test_negated_conditions_rendered(self, fo_tree):
        texts = [" ∧ ".join(e.conditions) for e in fo_tree.top_k(8)]
        rendered = " | ".join(texts)
        # Tree paths include both polarities somewhere in the top nodes.
        assert ("!=" in rendered) or (">=" in rendered) or ("<" in rendered)
