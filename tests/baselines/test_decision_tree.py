"""Tests for the from-scratch CART regressor."""

import numpy as np
import pytest

from repro.baselines import DecisionTreeRegressor
from repro.tabular import Table


@pytest.fixture
def step_data():
    """Target is a clean step function of a numeric feature."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 10, 300)
    targets = np.where(x < 5.0, -1.0, 1.0)
    table = Table.from_dict({"x": x, "noise": rng.normal(size=300)})
    return table, targets


@pytest.fixture
def categorical_data():
    rng = np.random.default_rng(1)
    groups = rng.choice(["a", "b", "c"], size=300)
    targets = np.where(groups == "a", 2.0, 0.0) + rng.normal(scale=0.01, size=300)
    table = Table.from_dict({"g": groups, "noise": rng.normal(size=300)})
    return table, targets


class TestFitting:
    def test_recovers_numeric_step(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=10).fit(table, targets)
        predictions = tree.predict(table)
        assert np.mean((predictions - targets) ** 2) < 0.05

    def test_root_split_near_step(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=1, min_samples_leaf=10).fit(table, targets)
        assert tree.root.split_feature == "x"
        assert 3.5 < float(tree.root.split_value) < 6.5

    def test_recovers_categorical_effect(self, categorical_data):
        table, targets = categorical_data
        tree = DecisionTreeRegressor(max_depth=1, min_samples_leaf=10).fit(table, targets)
        assert tree.root.split_feature == "g"
        assert tree.root.split_op == "="
        assert tree.root.split_value == "a"

    def test_constant_target_no_split(self):
        table = Table.from_dict({"x": np.arange(50.0)})
        tree = DecisionTreeRegressor(max_depth=3).fit(table, np.zeros(50))
        assert tree.root.is_leaf

    def test_depth_respected(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=5).fit(table, targets)
        assert max(node.depth for node in tree.nodes()) <= 2

    def test_min_samples_leaf_respected(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=40).fit(table, targets)
        leaves = [n for n in tree.nodes() if n.is_leaf]
        assert all(leaf.size >= 40 for leaf in leaves)


class TestNodeAccounting:
    def test_totals_sum_to_parent(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=10).fit(table, targets)
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.total == pytest.approx(node.left.total + node.right.total)

    def test_paths_partition_rows(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=10).fit(table, targets)
        leaves = [n for n in tree.nodes() if n.is_leaf]
        total_rows = sum(leaf.size for leaf in leaves)
        assert total_rows == table.num_rows

    def test_path_recorded(self, step_data):
        table, targets = step_data
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=10).fit(table, targets)
        child = tree.root.left
        assert child.path[0][0] == tree.root.split_feature


class TestValidation:
    def test_target_length_mismatch(self, step_data):
        table, _ = step_data
        with pytest.raises(ValueError, match="targets length"):
            DecisionTreeRegressor().fit(table, np.zeros(3))

    def test_unfitted_predict(self, step_data):
        table, _ = step_data
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().predict(table)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError, match="min_samples_leaf"):
            DecisionTreeRegressor(min_samples_leaf=0)
