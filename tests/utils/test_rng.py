"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        first = [g.random(3) for g in spawn_rngs(5, 2)]
        second = [g.random(3) for g in spawn_rngs(5, 2)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)
