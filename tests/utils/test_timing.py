"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_exception_still_records(self):
        t = Timer()
        try:
            with t:
                time.sleep(0.005)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.elapsed >= 0.004


    def test_reenter_overwrites_previous_elapsed(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            pass
        assert t.elapsed < first

    def test_uses_the_tracer_clock(self):
        # Timer and the span tracer must share one clock so benchmark
        # timings and trace durations are directly comparable.
        from repro.obs import trace
        from repro.utils import timing

        assert timing.clock is trace.clock


class TestTimed:
    def test_returns_result_and_seconds(self):
        result, seconds = timed(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0

    def test_kwargs_forwarded(self):
        result, _ = timed(lambda a, b=1: a + b, 1, b=5)
        assert result == 6

    def test_exception_propagates_without_result_or_elapsed(self):
        # The documented contract: unlike Timer, a raising callable gives
        # the caller neither the partial result nor the elapsed time.
        def boom():
            raise RuntimeError("boom")

        try:
            timed(boom)
        except RuntimeError:
            pass
        else:  # pragma: no cover - the raise must propagate
            raise AssertionError("timed() swallowed the exception")
