"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_exception_still_records(self):
        t = Timer()
        try:
            with t:
                time.sleep(0.005)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.elapsed >= 0.004


class TestTimed:
    def test_returns_result_and_seconds(self):
        result, seconds = timed(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0

    def test_kwargs_forwarded(self):
        result, _ = timed(lambda a, b=1: a + b, 1, b=5)
        assert result == 6
