"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary_labels,
    check_same_length,
)


class TestCheck1d:
    def test_accepts_vector(self):
        out = check_1d(np.arange(3))
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_1d(np.zeros((2, 2)), "foo")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_1d(np.zeros((2, 2)), "myarg")


class TestCheck2d:
    def test_accepts_matrix(self):
        assert check_2d(np.zeros((2, 3))).shape == (2, 3)

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_2d(np.zeros(3))


class TestSameLength:
    def test_equal_ok(self):
        check_same_length(np.zeros(3), np.zeros(3))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            check_same_length(np.zeros(3), np.zeros(4), ("X", "y"))


class TestBinaryLabels:
    def test_accepts_binary(self):
        out = check_binary_labels(np.array([0, 1, 1, 0]))
        assert out.dtype == np.int64

    def test_accepts_all_ones(self):
        assert check_binary_labels(np.ones(4)).sum() == 4

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError, match="binary"):
            check_binary_labels(np.array([0, 1, 2]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_binary_labels(np.zeros((2, 2)))
