"""End-to-end observability acceptance on a German-credit audit.

One traced audit must tell a complete cost story: the span tree's leaf
spans account for >=80% of each query's wall time (no large anonymous
gaps), exactly one query pays the GEMM/solve FLOPs for the shared
extent set while the rest are served entirely from the session's extent
caches, the combined export passes the same validator CI runs over
``--trace-out`` files, and the *disabled* tracer's bound — span volume
x measured null-span cost — stays under 3% of the traced wall time, so
leaving the instrumentation in the hot loops is free.
"""

import pytest

from repro.core import AuditSession
from repro.obs import trace
from repro.obs.trace import NULL_SPAN, Tracer

SEARCH = dict(max_predicates=2, support_threshold=0.05)


@pytest.fixture(scope="module")
def traced_audit(lr_model, german_train, german_test):
    session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
    tracer = Tracer()
    start = trace.clock()
    with trace.tracing(tracer):
        result = session.audit(k=2, verify=False)
    wall = trace.clock() - start
    return session, tracer, result, wall


class TestCostAttribution:
    def test_every_query_carries_a_cost_report(self, traced_audit):
        _, _, result, _ = traced_audit
        assert len(result.queries) > 0
        for query in result.queries:
            assert query.cost is not None
            assert query.cost.name == "audit.query"
            assert query.cost.wall_seconds > 0

    def test_leaf_spans_cover_at_least_80pct_of_wall(self, traced_audit):
        _, _, result, _ = traced_audit
        for query in result.queries:
            assert query.cost.leaf_fraction >= 0.8, (
                f"{query.metric}: leaf spans cover only "
                f"{query.cost.leaf_fraction:.1%} of wall time"
            )

    def test_flops_evaluations_and_cache_hits(self, traced_audit):
        """One query pays the linear algebra; the rest ride the extent cache.

        The grid's metrics all score the same candidate extents, so the
        first query computes every Δθ (nonzero GEMM/solve FLOPs, extent
        cache misses) and each later query is served entirely from the
        session's extent caches — zero fresh FLOPs, perfect hit ratio.
        """
        _, _, result, _ = traced_audit
        costs = [query.cost for query in result.queries]
        for cost in costs:
            assert cost.influence_evaluations > 0
            assert cost.cache_hits > 0
        paying = [cost for cost in costs if cost.gemm_flops > 0]
        assert len(paying) == 1  # one GEMM per distinct extent set, not per metric
        assert paying[0].solve_flops > 0
        assert paying[0].cache_misses > 0
        for cost in costs:
            if cost is paying[0]:
                continue
            assert cost.gemm_flops == 0
            assert cost.solve_flops == 0
            assert cost.cache_hit_ratio == 1.0
        total_hits = sum(cost.cache_hits for cost in costs)
        total_misses = sum(cost.cache_misses for cost in costs)
        assert total_hits / (total_hits + total_misses) > 0.5

    def test_cost_is_none_when_tracing_disabled(self, lr_model, german_train, german_test):
        session = AuditSession(lr_model, **SEARCH).fit(german_train, german_test)
        result = session.audit(
            metrics=["statistical_parity"], k=1, verify=False
        )
        assert all(query.cost is None for query in result.queries)


class TestTraceShape:
    def test_span_tree_has_the_expected_stages(self, traced_audit):
        _, tracer, _, _ = traced_audit
        names = {span.name for span in tracer.walk()}
        assert {"audit.grid", "audit.query", "explain.search",
                "explain.filter"} <= names
        # The estimator's batch entry point ran in one of its two forms.
        assert names & {"influence.batch", "influence.batch_packed"}

    def test_export_passes_the_ci_validator(self, traced_audit):
        validate_trace = pytest.importorskip("tools.validate_trace")
        _, tracer, _, _ = traced_audit
        summary = validate_trace.validate(tracer.export())
        assert summary.startswith("ok:")

    def test_query_seconds_histogram_observed(self, traced_audit):
        session, _, result, _ = traced_audit
        hist = session.metrics.snapshot()["histograms"]["audit.query_seconds"]
        assert hist["count"] >= len(result.queries)
        assert hist["sum"] > 0


class TestDisabledOverhead:
    def test_null_span_bound_is_under_3pct_of_wall(self, traced_audit):
        """Span volume x null-span unit cost must be <3% of the traced wall.

        A direct timed A/B of two audits is noisy on shared CI runners, so
        the bound is synthetic: measure the per-call cost of the disabled
        path (``trace.span`` returning the shared null span), multiply by
        the number of spans this exact audit emits, and compare against
        the traced run's wall clock.
        """
        _, tracer, _, wall = traced_audit
        reps = 200_000
        assert trace.get_tracer().enabled is False  # module default
        start = trace.clock()
        for _ in range(reps):
            with trace.span("audit.query", metric="x"):
                pass
        per_call = (trace.clock() - start) / reps
        bound = tracer.span_count() * per_call
        assert bound < 0.03 * wall, (
            f"{tracer.span_count()} spans x {per_call * 1e9:.0f}ns "
            f"= {bound * 1e3:.1f}ms vs 3% of {wall * 1e3:.0f}ms"
        )

    def test_disabled_helpers_return_the_shared_null_span(self):
        assert trace.span("anything", k=1) is NULL_SPAN
        assert trace.add("gemm_flops", 5.0) is None
