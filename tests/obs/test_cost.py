"""Tests for repro.obs.cost: FLOP models and CostReport aggregation."""

import numpy as np
import pytest

from repro.obs import CostReport, Tracer, gemm_flops, solve_flops, trace


def test_flop_models():
    assert gemm_flops(10, 20, 30) == 2.0 * 10 * 20 * 30
    assert solve_flops(50, 3) == 2.0 * 50 * 50 * 3


def _query_span():
    tracer = Tracer()
    with tracer.span("audit.query", metric="spd") as q:
        with tracer.span("influence.batch") as batch:
            batch.add("gemm_flops", gemm_flops(100, 50, 25))
            batch.add("evaluations", 40)
            with tracer.span("hessian.solve") as solve:
                solve.add("solve_flops", solve_flops(50, 25))
        with tracer.span("artifacts.grads") as grads:
            grads.add("cache_hits", 7)
            grads.add("cache_misses", 1)
    return q


class TestFromSpan:
    def test_totals_summed_over_subtree(self):
        report = CostReport.from_span(_query_span())
        assert report.name == "audit.query"
        assert report.gemm_flops == gemm_flops(100, 50, 25)
        assert report.solve_flops == solve_flops(50, 25)
        assert report.total_flops == report.gemm_flops + report.solve_flops
        assert report.influence_evaluations == 40
        assert report.cache_hits == 7
        assert report.cache_misses == 1
        assert report.cache_hit_ratio == pytest.approx(7 / 8)
        assert report.wall_seconds > 0

    def test_lines_aggregate_per_name_sorted_by_self_time(self):
        report = CostReport.from_span(_query_span())
        names = {line.name for line in report.lines}
        assert names == {"audit.query", "influence.batch", "hessian.solve", "artifacts.grads"}
        self_times = [line.self_seconds for line in report.lines]
        assert self_times == sorted(self_times, reverse=True)
        for line in report.lines:
            assert line.count == 1
            assert line.self_seconds <= line.total_seconds

    def test_repeated_span_names_fold_into_one_line(self):
        tracer = Tracer()
        with tracer.span("q") as q:
            for level in (1, 2, 3):
                with tracer.span("lattice.level", level=level):
                    pass
        report = CostReport.from_span(q)
        (line,) = [row for row in report.lines if row.name == "lattice.level"]
        assert line.count == 3

    def test_leaf_fraction_all_leaf_time_counted(self):
        report = CostReport.from_span(_query_span())
        assert 0.0 < report.leaf_fraction <= 1.0

    def test_bool_attrs_do_not_pollute_totals(self):
        tracer = Tracer()
        with tracer.span("q") as q:
            q.set(cache_hits=True)  # a flag, not a count
        report = CostReport.from_span(q)
        assert report.cache_hits == 0

    def test_empty_span_zero_division_safe(self):
        report = CostReport()
        assert report.cache_hit_ratio == 0.0
        assert report.leaf_fraction == 0.0
        assert report.total_flops == 0.0


class TestCacheHitFlopHonesty:
    """Attributed FLOPs must equal executed work: a hit on the extent
    cache serves stored rows and may not re-record an ``influence.gemm``
    span, and a partial hit records a span sized to the miss rows only."""

    @pytest.fixture()
    def artifacts(self, lr_model, X_train, german_train):
        from repro.influence import ModelArtifacts

        return ModelArtifacts(
            lr_model, X_train, german_train.labels
        ).enable_extent_caching()

    def test_cache_hit_does_not_re_record_gemm_flops(self, artifacts, X_train):
        rng = np.random.default_rng(5)
        n = X_train.shape[0]
        masks = rng.random((6, n)) < 0.1
        p = artifacts.per_sample_grads.shape[1]
        tracer = Tracer()
        with trace.tracing(tracer):
            with trace.span("audit.query") as cold:
                artifacts.gradient_sums(masks)
            with trace.span("audit.query") as warm:
                artifacts.gradient_sums(masks)
        cold_report = CostReport.from_span(cold)
        assert cold_report.gemm_flops == gemm_flops(6, n, p)
        assert artifacts.stats["gradient_sum_cache_misses"] == 6
        warm_report = CostReport.from_span(warm)
        assert warm_report.gemm_flops == 0.0
        assert artifacts.stats["gradient_sum_cache_hits"] == 6
        assert not any(s.name == "influence.gemm" for s in warm.walk())

    def test_partial_hit_attributes_only_computed_rows(self, artifacts, X_train):
        rng = np.random.default_rng(6)
        n = X_train.shape[0]
        seen = rng.random((4, n)) < 0.1
        artifacts.gradient_sums(seen)
        p = artifacts.per_sample_grads.shape[1]
        mixed = np.vstack([seen[:2], rng.random((3, n)) < 0.1])
        tracer = Tracer()
        with trace.tracing(tracer):
            with trace.span("audit.query") as q:
                artifacts.gradient_sums(mixed)
        report = CostReport.from_span(q)
        assert report.gemm_flops == gemm_flops(3, n, p)
        assert artifacts.stats["gradient_sum_cache_hits"] == 2
        assert artifacts.stats["gradient_sum_cache_misses"] == 4 + 3


class TestExports:
    def test_to_dict_round_trip(self):
        doc = CostReport.from_span(_query_span()).to_dict()
        assert doc["name"] == "audit.query"
        assert doc["gemm_flops"] > 0 and doc["solve_flops"] > 0
        assert doc["cache_hit_ratio"] == pytest.approx(7 / 8)
        assert {line["name"] for line in doc["lines"]} >= {"audit.query", "hessian.solve"}

    def test_render_header_and_table(self):
        text = CostReport.from_span(_query_span()).render()
        assert "audit.query" in text
        assert "FLOP" in text
        assert "40 influence evaluations" in text
        assert "cache 7 hit / 1 miss" in text
        assert "hessian.solve" in text
        assert "%" in text
