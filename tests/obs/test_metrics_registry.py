"""Tests for repro.obs.metrics: registry semantics and the StatsView bridge."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import MetricsRegistry, StatsView


class TestCounters:
    def test_register_is_idempotent(self):
        reg = MetricsRegistry()
        reg.register_counter("influence.builds", 3)
        reg.register_counter("influence.builds", 99)
        assert reg.get("influence.builds") == 3

    def test_inc_auto_creates_at_zero(self):
        reg = MetricsRegistry()
        assert reg.inc("hits") == 1
        assert reg.inc("hits", 4) == 5
        assert reg.get("hits") == 5

    def test_get_without_default_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.get("missing")
        assert reg.get("missing", 7) == 7

    def test_set_counter_overwrites(self):
        reg = MetricsRegistry()
        reg.inc("n", 3)
        reg.set_counter("n", 10)
        assert reg.get("n") == 10


class TestSnapshotDiff:
    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap["counters"]["a"] == 1
        assert reg.get("a") == 2

    def test_diff_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("builds", 2)
        reg.set_gauge("size", 10.0)
        reg.observe("latency", 0.05)
        before = reg.snapshot()
        reg.inc("builds", 3)
        reg.set_gauge("size", 25.0)
        reg.observe("latency", 0.2)
        reg.observe("latency", 0.3)
        delta = reg.diff(before)
        assert delta["counters"]["builds"] == 3
        assert delta["gauges"]["size"] == 15.0
        assert delta["histograms"]["latency"]["count"] == 2
        assert delta["histograms"]["latency"]["sum"] == pytest.approx(0.5)

    def test_diff_against_empty_before(self):
        reg = MetricsRegistry()
        reg.inc("a", 4)
        assert reg.diff({})["counters"]["a"] == 4


class TestHistograms:
    def test_fixed_edges_bucketing(self):
        reg = MetricsRegistry()
        reg.register_histogram("t", edges=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            reg.observe("t", value)
        snap = reg.snapshot()["histograms"]["t"]
        assert snap["edges"] == [0.1, 1.0]
        assert snap["counts"] == [1, 2, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_observe_auto_creates_with_default_edges(self):
        reg = MetricsRegistry()
        reg.observe("q", 0.01)
        snap = reg.snapshot()["histograms"]["q"]
        assert snap["count"] == 1
        assert len(snap["counts"]) == len(snap["edges"]) + 1


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.inc("influence.cache_hits", 5)
        reg.set_gauge("alphabet.size", 42.0)
        reg.register_histogram("audit.query_seconds", edges=(0.1,))
        reg.observe("audit.query_seconds", 0.05)
        reg.observe("audit.query_seconds", 0.5)
        text = reg.to_prometheus_text()
        assert "# TYPE influence_cache_hits counter" in text
        assert "influence_cache_hits 5" in text
        assert "alphabet_size 42.0" in text
        assert '_bucket{le="0.1"} 1' in text
        assert '_bucket{le="+Inf"} 2' in text
        assert "audit_query_seconds_count 2" in text
        assert text.endswith("\n")


class TestConcurrency:
    def test_concurrent_increments_are_exact(self):
        """No lost updates: N threads x M bumps lands on exactly N*M."""
        reg = MetricsRegistry()
        workers, bumps = 8, 2000

        def hammer(_: int) -> None:
            for _ in range(bumps):
                reg.inc("shared.counter")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        assert reg.get("shared.counter") == workers * bumps

    def test_concurrent_statsview_inc_is_exact(self):
        reg = MetricsRegistry()
        view = StatsView({"fallback_factors": 0}, registry=reg, namespace="exact_batch")
        workers, bumps = 8, 1000

        def hammer(_: int) -> None:
            for _ in range(bumps):
                view.inc("fallback_factors")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        assert view["fallback_factors"] == workers * bumps
        assert reg.get("exact_batch.fallback_factors") == workers * bumps


class TestStatsView:
    def test_namespaced_registration_and_short_keys(self):
        reg = MetricsRegistry()
        view = StatsView({"builds": 0, "hits": 2}, registry=reg, namespace="mining")
        assert dict(view) == {"builds": 0, "hits": 2}
        assert reg.get("mining.builds") == 0
        assert reg.get("mining.hits") == 2

    def test_inc_and_setitem_roundtrip(self):
        view = StatsView({"builds": 0})
        view.inc("builds")
        view["builds"] += 1  # the legacy dict idiom still works
        assert view["builds"] == 2

    def test_setitem_registers_new_key(self):
        view = StatsView(namespace="ns")
        view["fresh"] = 5
        assert view["fresh"] == 5
        assert view.registry.get("ns.fresh") == 5

    def test_getitem_unknown_key_raises(self):
        view = StatsView({"a": 0})
        with pytest.raises(KeyError):
            view["b"]

    def test_delete_is_forbidden(self):
        view = StatsView({"a": 0})
        with pytest.raises(TypeError):
            del view["a"]

    def test_mapping_protocol(self):
        view = StatsView({"a": 1, "b": 2})
        assert len(view) == 2
        assert sorted(view) == ["a", "b"]
        assert "a" in view and "z" not in view
        assert sorted(view.items()) == [("a", 1), ("b", 2)]

    def test_default_registry_when_none_given(self):
        view = StatsView({"a": 0})
        assert isinstance(view.registry, MetricsRegistry)
        assert view.namespace == ""
        view.inc("a")
        assert view.registry.get("a") == 1

    def test_two_views_can_share_one_registry(self):
        reg = MetricsRegistry()
        a = StatsView({"x": 0}, registry=reg, namespace="one")
        b = StatsView({"x": 0}, registry=reg, namespace="two")
        a.inc("x")
        assert a["x"] == 1
        assert b["x"] == 0
