"""Tests for repro.obs.trace: span trees, exports, and the null path."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer


@pytest.fixture(autouse=True)
def _restore_tracer():
    yield
    trace.disable()


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("audit.query") as q:
            with tracer.span("explain.search"):
                with tracer.span("lattice.level", level=1):
                    pass
            with tracer.span("explain.filter"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root is q
        assert [c.name for c in root.children] == ["explain.search", "explain.filter"]
        assert root.children[0].children[0].attrs["level"] == 1

    def test_monotonic_ordering_and_windows(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        a, b = tracer.roots[0], tracer.roots[0].children[0]
        assert b.index > a.index
        assert a.start <= b.start and b.end <= a.end
        assert a.seconds >= b.seconds

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        parent = tracer.roots[0]
        child = parent.children[0]
        assert parent.self_seconds == pytest.approx(parent.seconds - child.seconds)

    def test_set_and_add_attributes(self):
        tracer = Tracer()
        with tracer.span("s", metric="spd") as s:
            s.set(group="age<30")
            s.add("gemm_flops", 100.0)
            s.add("gemm_flops", 50.0)
        assert s.attrs == {"metric": "spd", "group": "age<30", "gemm_flops": 150.0}

    def test_tracer_add_targets_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("cache_hits")
                tracer.add("cache_hits", 2)
        outer = tracer.roots[0]
        assert "cache_hits" not in outer.attrs
        assert outer.children[0].attrs["cache_hits"] == 3

    def test_add_without_open_span_is_a_noop(self):
        tracer = Tracer()
        tracer.add("cache_hits")
        assert tracer.roots == []

    def test_exception_unwinds_and_closes_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert len(tracer.roots) == 1
        for span in tracer.walk():
            assert span.end >= span.start

    def test_span_count_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert tracer.span_count() == 3
        assert [s.name for s in tracer.walk()] == ["a", "b", "c"]


class TestExports:
    def _sample(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("audit.query", metric="spd") as q:
            q.add("gemm_flops", 1000.0)
            with tracer.span("influence.batch"):
                pass
        return tracer

    def test_to_dict_structure(self):
        doc = self._sample().to_dict()
        assert doc["schema_version"] == 1
        assert doc["span_count"] == 2
        (root,) = doc["spans"]
        assert root["name"] == "audit.query"
        assert root["attrs"]["gemm_flops"] == 1000.0
        (child,) = root["children"]
        assert child["name"] == "influence.batch"
        assert child["start"] >= root["start"]
        assert child["duration"] <= root["duration"]

    def test_chrome_trace_complete_events(self):
        doc = self._sample().to_chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
        by_name = {e["name"]: e for e in events}
        assert by_name["audit.query"]["cat"] == "audit"
        assert by_name["influence.batch"]["cat"] == "influence"
        assert by_name["audit.query"]["args"]["metric"] == "spd"

    def test_export_merges_both_forms_and_is_json(self):
        tracer = self._sample()
        doc = tracer.export()
        assert "traceEvents" in doc and "spans" in doc
        assert doc["schema_version"] == 1
        parsed = json.loads(tracer.to_json())
        assert parsed["span_count"] == 2

    def test_non_jsonable_args_dropped_from_chrome_events(self):
        tracer = Tracer()
        with tracer.span("s", shape=(3, 4), label="ok"):
            pass
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert event["args"] == {"label": "ok"}

    def test_render_tree_shows_names_times_attrs(self):
        text = self._sample().render_tree()
        assert "audit.query" in text
        assert "influence.batch" in text
        assert "ms" in text and "%" in text
        assert "metric=spd" in text

    def test_render_tree_max_depth(self):
        text = self._sample().render_tree(max_depth=0)
        assert "audit.query" in text
        assert "influence.batch" not in text


class TestModuleHelpers:
    def test_disabled_by_default_routes_to_null(self):
        assert isinstance(trace.get_tracer(), NullTracer)
        assert trace.span("anything", k=1) is NULL_SPAN

    def test_enable_disable_roundtrip(self):
        tracer = trace.enable()
        assert trace.get_tracer() is tracer
        with trace.span("s"):
            trace.add("cache_hits")
        assert tracer.roots[0].attrs["cache_hits"] == 1
        trace.disable()
        assert trace.get_tracer() is NULL_TRACER

    def test_tracing_context_manager_restores_previous(self):
        outer = trace.enable()
        with trace.tracing() as inner:
            assert trace.get_tracer() is inner
            with trace.span("s"):
                pass
        assert trace.get_tracer() is outer
        assert inner.span_count() == 1
        assert outer.span_count() == 0

    def test_tracing_restores_on_exception(self):
        with pytest.raises(ValueError):
            with trace.tracing():
                raise ValueError("boom")
        assert trace.get_tracer() is NULL_TRACER


class TestNullPath:
    def test_null_span_is_shared_and_chainable(self):
        assert NULL_TRACER.span("x", k=1) is NULL_SPAN
        with NULL_SPAN as s:
            assert s.set(a=1) is NULL_SPAN
            assert s.add("gemm_flops", 5) is NULL_SPAN

    def test_null_tracer_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.add("k") is None


class TestThreads:
    def test_spans_get_per_thread_ids_and_separate_roots(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()

        def work(i: int) -> None:
            with tracer.span("worker", i=i):
                pass

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(8)))
        assert len(tracer.roots) == 8
        tids = {span.tid for span in tracer.walk()}
        assert all(tid >= 1 for tid in tids)
        indices = sorted(span.index for span in tracer.walk())
        assert indices == list(range(8))
