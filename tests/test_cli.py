"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.dataset == "german"
        assert args.estimator == "second_order"
        assert args.k == 3

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--dataset", "nope"])

    def test_metric_choices(self):
        args = build_parser().parse_args(["report", "--metric", "equal_opportunity"])
        assert args.metric == "equal_opportunity"

    def test_engine_choices(self):
        assert build_parser().parse_args(["explain"]).engine == "lattice"
        args = build_parser().parse_args(["explain", "--engine", "mining"])
        assert args.engine == "mining"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--engine", "apriori"])

    def test_estimator_variant_choices(self):
        args = build_parser().parse_args(["explain", "--estimator", "exact"])
        assert args.estimator == "exact"
        args = build_parser().parse_args(["explain", "--estimator", "series"])
        assert args.estimator == "series"


class TestCommands:
    def test_report_runs(self, capsys):
        code = main(["report", "--dataset", "german", "--rows", "400", "--seed", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "statistical_parity" in out

    def test_explain_runs(self, capsys):
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "first_order", "--max-predicates", "2",
                "-k", "2", "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-" in out

    def test_explain_with_mining_engine_runs(self, capsys):
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "first_order", "--engine", "mining",
                "--max-predicates", "2", "-k", "2", "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-" in out

    def test_explain_exact_with_mining_engine_runs(self, capsys):
        """--estimator exact rides the Woodbury batch through the miner's
        packed frontiers end to end."""
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "exact", "--engine", "mining",
                "--max-predicates", "2", "-k", "2", "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-" in out

    def test_explain_audit_runs(self, capsys):
        """--audit fans every registered metric through one AuditSession
        and reports the cache counters proving one shared start-up."""
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "first_order", "--max-predicates", "2",
                "-k", "2", "--no-verify", "--audit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Audit:" in out
        for metric in ("statistical_parity", "equal_opportunity",
                       "predictive_parity", "average_odds"):
            assert metric in out
        assert "hessian_factorizations=1" in out
        assert "alphabet_builds=1" in out

    def test_audit_with_updates_repairs_every_query(self, capsys):
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400",
                "--estimator", "first_order", "--max-predicates", "2",
                "-k", "2", "--audit", "--updates", "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # One repair block per audit query, all sharing the session's
        # update context (built exactly once for the whole audit).
        assert out.count("Update-based explanations") >= 2
        assert "update_context_builds=1" in out

    def test_explain_updates_runs(self, capsys):
        # --no-verify leaves gt_bias_change empty, so this also exercises
        # the estimator fallback for the removal reference (no crash).
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "first_order", "--max-predicates", "2",
                "-k", "2", "--no-verify", "--updates",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Update-based explanations" in out
        assert "vs removal" in out

    def test_detect_runs(self, capsys):
        code = main(
            ["detect", "--dataset", "german", "--rows", "400", "--seed", "11",
             "--poison-fraction", "0.1", "--clusters", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 influence-ranked clusters" in out


class TestDeltaAuditFlag:
    def test_edit_requires_audit(self, capsys):
        code = main(
            ["explain", "--dataset", "german", "--rows", "400",
             "--edit", "remove:5", "--no-verify"]
        )
        assert code == 2
        assert "--audit" in capsys.readouterr().err

    def test_bad_edit_spec_rejected(self, capsys):
        code = main(
            ["explain", "--dataset", "german", "--rows", "400", "--seed", "11",
             "--max-predicates", "2", "--audit", "--no-verify",
             "--edit", "shuffle:5"]
        )
        assert code == 2
        assert "bad --edit spec" in capsys.readouterr().err

    def test_audit_with_edit_runs(self, capsys):
        code = main(
            [
                "explain", "--dataset", "german", "--rows", "400", "--seed", "11",
                "--estimator", "first_order", "--max-predicates", "2",
                "-k", "2", "--no-verify", "--audit",
                "--edit", "remove:5", "--edit-seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Delta audit after edit(remove 5)" in out
        assert "influence.edits=1" in out
        # Build counters unchanged by the edit — the delta pass patched.
        assert "influence.hessian_factorizations=1" in out
        assert "mining.alphabet_builds=1" in out
