"""Tests for the generator helper functions in repro.datasets._synth."""

import numpy as np
import pytest

from repro.datasets._synth import bernoulli, categorical, sigmoid
from repro.utils.rng import ensure_rng


class TestSigmoid:
    def test_matches_definition(self):
        z = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(sigmoid(z), 1.0 / (1.0 + np.exp(-z)), atol=1e-12)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_symmetry(self):
        z = np.array([0.3, 1.7, 4.2])
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), np.ones(3), atol=1e-12)


class TestBernoulli:
    def test_rate_tracks_logit(self):
        rng = ensure_rng(0)
        draws = bernoulli(np.full(20000, 1.0), rng)
        assert draws.mean() == pytest.approx(sigmoid(np.array([1.0]))[0], abs=0.02)

    def test_extreme_logits_deterministic(self):
        rng = ensure_rng(0)
        assert bernoulli(np.full(100, 50.0), rng).all()
        assert not bernoulli(np.full(100, -50.0), rng).any()

    def test_binary_int_output(self):
        rng = ensure_rng(1)
        draws = bernoulli(np.zeros(50), rng)
        assert draws.dtype == np.int64
        assert set(np.unique(draws)) <= {0, 1}


class TestCategorical:
    def test_respects_probabilities(self):
        rng = ensure_rng(2)
        draws = categorical(rng, 20000, ["a", "b"], [0.8, 0.2])
        assert (draws == "a").mean() == pytest.approx(0.8, abs=0.02)

    def test_normalizes_weights(self):
        rng = ensure_rng(3)
        draws = categorical(rng, 1000, ["x", "y"], [2.0, 2.0])
        assert 0.4 < (draws == "x").mean() < 0.6

    def test_output_length(self):
        rng = ensure_rng(4)
        assert len(categorical(rng, 17, ["a"], [1.0])) == 17
