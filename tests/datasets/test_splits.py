"""Tests for repro.datasets.splits."""

import numpy as np
import pytest

from repro.datasets import load_german, train_test_split


@pytest.fixture(scope="module")
def german():
    return load_german(400, seed=0)


class TestTrainTestSplit:
    def test_sizes_sum(self, german):
        train, test = train_test_split(german, 0.25, seed=0)
        assert train.num_rows + test.num_rows == german.num_rows

    def test_fraction_respected(self, german):
        _, test = train_test_split(german, 0.25, seed=0)
        assert abs(test.num_rows / german.num_rows - 0.25) < 0.02

    def test_stratified_both_classes(self, german):
        train, test = train_test_split(german, 0.2, seed=0)
        assert set(np.unique(train.labels)) == {0, 1}
        assert set(np.unique(test.labels)) == {0, 1}

    def test_deterministic(self, german):
        a_train, _ = train_test_split(german, 0.2, seed=7)
        b_train, _ = train_test_split(german, 0.2, seed=7)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)

    def test_different_seeds_differ(self, german):
        a_train, _ = train_test_split(german, 0.2, seed=1)
        b_train, _ = train_test_split(german, 0.2, seed=2)
        assert not np.array_equal(a_train.labels, b_train.labels)

    def test_no_row_overlap(self, german):
        train, test = train_test_split(german, 0.3, seed=0)
        train_rows = {tuple(train.table.row(i).items()) for i in range(min(50, train.num_rows))}
        # label distribution check: every original row appears exactly once overall
        assert train.num_rows + test.num_rows == german.num_rows
        assert len(train_rows) > 0

    def test_invalid_fraction(self, german):
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(german, 1.5)
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(german, 0.0)
