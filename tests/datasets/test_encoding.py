"""Tests for repro.datasets.encoding."""

import numpy as np
import pytest

from repro.datasets.encoding import TabularEncoder
from repro.tabular import Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "color": ["red", "blue", "red", "green"],
            "size": [1.0, 2.0, 3.0, 4.0],
        }
    )


@pytest.fixture
def encoder(table):
    return TabularEncoder().fit(table)


class TestFitTransform:
    def test_shape(self, encoder, table):
        X = encoder.transform(table)
        assert X.shape == (4, 4)  # 3 one-hot + 1 numeric

    def test_one_hot_exact(self, encoder, table):
        X = encoder.transform(table)
        group = encoder.group_for("color")
        block = X[:, group.start:group.stop]
        np.testing.assert_array_equal(block.sum(axis=1), np.ones(4))

    def test_numeric_standardized(self, encoder, table):
        X = encoder.transform(table)
        group = encoder.group_for("size")
        col = X[:, group.start]
        assert abs(col.mean()) < 1e-12
        assert abs(col.std() - 1.0) < 1e-12

    def test_feature_names(self, encoder):
        assert "color=red" in encoder.feature_names
        assert "size" in encoder.feature_names

    def test_transform_before_fit_raises(self, table):
        with pytest.raises(RuntimeError, match="not fitted"):
            TabularEncoder().transform(table)

    def test_unknown_group_raises(self, encoder):
        with pytest.raises(KeyError):
            encoder.group_for("nope")

    def test_constant_numeric_column_no_nan(self):
        t = Table.from_dict({"x": [5.0, 5.0, 5.0]})
        X = TabularEncoder().fit_transform(t)
        assert np.isfinite(X).all()


class TestDecodeProject:
    def test_decode_row_roundtrip(self, encoder, table):
        X = encoder.transform(table)
        decoded = encoder.decode_row(X[0])
        assert decoded["color"] == "red"
        assert decoded["size"] == pytest.approx(1.0)

    def test_decode_wrong_shape(self, encoder):
        with pytest.raises(ValueError, match="row shape"):
            encoder.decode_row(np.zeros(2))

    def test_project_snaps_one_hot(self, encoder, table):
        X = encoder.transform(table)
        perturbed = X.copy()
        group = encoder.group_for("color")
        perturbed[0, group.start:group.stop] = [0.4, 0.7, 0.2]
        projected = encoder.project_rows(perturbed)
        block = projected[0, group.start:group.stop]
        assert sorted(block) == [0.0, 0.0, 1.0]

    def test_project_clips_numeric(self, encoder, table):
        X = encoder.transform(table)
        group = encoder.group_for("size")
        perturbed = X.copy()
        perturbed[0, group.start] = 100.0
        projected = encoder.project_rows(perturbed)
        hi = (group.maximum - group.mean) / group.std
        assert projected[0, group.start] == pytest.approx(hi)

    def test_project_is_idempotent(self, encoder, table):
        X = encoder.transform(table)
        once = encoder.project_rows(X)
        twice = encoder.project_rows(once)
        np.testing.assert_array_almost_equal(once, twice)

    def test_project_wrong_width(self, encoder):
        with pytest.raises(ValueError, match="features"):
            encoder.project_rows(np.zeros((1, 2)))
