"""Tests for repro.datasets.binning."""

import numpy as np
import pytest

from repro.datasets.binning import equal_width_thresholds, quantile_thresholds


class TestQuantileThresholds:
    def test_count(self):
        values = np.arange(100.0)
        thresholds = quantile_thresholds(values, 4)
        assert len(thresholds) == 3

    def test_strictly_interior(self):
        values = np.arange(10.0)
        for t in quantile_thresholds(values, 4):
            assert values.min() < t < values.max()

    def test_sorted_and_unique(self):
        values = np.random.default_rng(0).normal(size=200)
        thresholds = quantile_thresholds(values, 5)
        assert thresholds == sorted(set(thresholds))

    def test_ties_collapse(self):
        values = np.array([1.0] * 95 + [2.0] * 5)
        thresholds = quantile_thresholds(values, 4)
        assert len(thresholds) <= 1

    def test_constant_column_empty(self):
        assert quantile_thresholds(np.ones(50), 4) == []

    def test_empty_input(self):
        assert quantile_thresholds(np.array([]), 4) == []

    def test_invalid_bins(self):
        with pytest.raises(ValueError, match=">= 2"):
            quantile_thresholds(np.arange(5.0), 1)


class TestEqualWidthThresholds:
    def test_even_spacing(self):
        thresholds = equal_width_thresholds(np.array([0.0, 10.0]), 5)
        np.testing.assert_allclose(thresholds, [2.0, 4.0, 6.0, 8.0])

    def test_constant_column_empty(self):
        assert equal_width_thresholds(np.full(10, 3.0), 4) == []

    def test_invalid_bins(self):
        with pytest.raises(ValueError, match=">= 2"):
            equal_width_thresholds(np.arange(5.0), 0)
