"""Tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, ProtectedGroup
from repro.tabular import Table


@pytest.fixture
def dataset():
    table = Table.from_dict(
        {
            "age": [30.0, 50.0, 60.0, 20.0],
            "gender": ["F", "M", "F", "M"],
        }
    )
    labels = np.array([0, 1, 1, 0])
    return Dataset("toy", table, labels, ProtectedGroup("age", privileged_threshold=45.0))


class TestProtectedGroup:
    def test_requires_exactly_one_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            ProtectedGroup("age")
        with pytest.raises(ValueError, match="exactly one"):
            ProtectedGroup("age", privileged_category="a", privileged_threshold=1.0)

    def test_threshold_mask(self, dataset):
        np.testing.assert_array_equal(
            dataset.privileged_mask(), [False, True, True, False]
        )

    def test_category_mask(self):
        table = Table.from_dict({"g": ["A", "B", "A"]})
        group = ProtectedGroup("g", privileged_category="A")
        np.testing.assert_array_equal(group.privileged_mask(table), [True, False, True])

    def test_category_on_numeric_rejected(self, dataset):
        group = ProtectedGroup("age", privileged_category="x")
        with pytest.raises(TypeError, match="categorical"):
            group.privileged_mask(dataset.table)

    def test_threshold_on_categorical_rejected(self, dataset):
        group = ProtectedGroup("gender", privileged_threshold=1.0)
        with pytest.raises(TypeError, match="numeric"):
            group.privileged_mask(dataset.table)

    def test_describe(self):
        assert "gender = M" in ProtectedGroup("gender", privileged_category="M").describe()
        assert ">= 45" in ProtectedGroup("age", privileged_threshold=45.0).describe()


class TestDataset:
    def test_basic_properties(self, dataset):
        assert dataset.num_rows == 4
        assert "age" in dataset.feature_names

    def test_label_length_check(self, dataset):
        with pytest.raises(ValueError, match="labels length"):
            Dataset("x", dataset.table, np.array([0, 1]), dataset.protected)

    def test_protected_attr_must_exist(self, dataset):
        with pytest.raises(ValueError, match="missing"):
            Dataset(
                "x",
                dataset.table,
                dataset.labels,
                ProtectedGroup("nope", privileged_category="a"),
            )

    def test_invalid_favorable_label(self, dataset):
        with pytest.raises(ValueError, match="favorable_label"):
            Dataset("x", dataset.table, dataset.labels, dataset.protected, favorable_label=2)

    def test_favorable_mask_respects_flip(self, dataset):
        flipped = Dataset(
            "x", dataset.table, dataset.labels, dataset.protected, favorable_label=0
        )
        np.testing.assert_array_equal(
            flipped.favorable_mask(), dataset.labels == 0
        )

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([1, 2]))
        assert sub.num_rows == 2
        np.testing.assert_array_equal(sub.labels, [1, 1])

    def test_without(self, dataset):
        remaining = dataset.without(np.array([True, False, False, True]))
        assert remaining.num_rows == 2
        np.testing.assert_array_equal(remaining.labels, [1, 1])

    def test_without_wrong_shape(self, dataset):
        with pytest.raises(ValueError, match="mask shape"):
            dataset.without(np.array([True]))

    def test_replicate(self, dataset):
        rep = dataset.replicate(3)
        assert rep.num_rows == 12
        np.testing.assert_array_equal(rep.labels[:4], dataset.labels)

    def test_with_rows(self, dataset):
        extra = dataset.table.take(np.array([0]))
        bigger = dataset.with_rows(extra, np.array([1]))
        assert bigger.num_rows == 5
        assert bigger.labels[-1] == 1

    def test_renamed(self, dataset):
        assert dataset.renamed("other").name == "other"
