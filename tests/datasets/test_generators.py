"""Tests for the three synthetic dataset generators.

Beyond schema checks, these verify each generator actually *plants* the bias
mechanism its module docstring promises — the property every downstream
experiment relies on.
"""

import numpy as np
import pytest

from repro.datasets import load_adult, load_german, load_sqf
from repro.tabular import NumericColumn, write_csv


class TestGermanSchema:
    def test_default_size(self):
        assert load_german().num_rows == 1000

    def test_twenty_attributes(self):
        assert len(load_german(100, seed=0).feature_names) == 20

    def test_protected_is_age(self):
        ds = load_german(100, seed=0)
        assert ds.protected.attribute == "age"
        assert ds.favorable_label == 1

    def test_deterministic(self):
        a = load_german(200, seed=5)
        b = load_german(200, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_min_rows_enforced(self):
        with pytest.raises(ValueError, match=">= 50"):
            load_german(10)


class TestGermanBias:
    def test_old_favored(self):
        ds = load_german(2000, seed=0)
        old = ds.privileged_mask()
        gap = ds.labels[old].mean() - ds.labels[~old].mean()
        assert gap > 0.05

    def test_old_females_strongly_favorable(self):
        ds = load_german(2000, seed=0)
        age = np.asarray(ds.table.column("age").values)
        gender = np.asarray(ds.table.column("gender").values, dtype=object)
        of = (age >= 45) & (gender == "Female")
        assert ds.labels[of].mean() > 0.85

    def test_bias_strength_zero_is_fairer(self):
        biased = load_german(2000, seed=0, bias_strength=1.0)
        fair = load_german(2000, seed=0, bias_strength=0.0)

        def gap(ds):
            old = ds.privileged_mask()
            return ds.labels[old].mean() - ds.labels[~old].mean()

        assert abs(gap(fair)) < abs(gap(biased))

    def test_csv_roundtrip(self, tmp_path):
        ds = load_german(120, seed=0)
        table = ds.table.with_column(NumericColumn("credit_risk", ds.labels.astype(float)))
        path = tmp_path / "german.csv"
        write_csv(table, path)
        loaded = load_german(csv_path=path)
        assert loaded.num_rows == 120
        np.testing.assert_array_equal(loaded.labels, ds.labels)

    def test_csv_missing_label_column(self, tmp_path):
        ds = load_german(60, seed=0)
        path = tmp_path / "bad.csv"
        write_csv(ds.table, path)
        with pytest.raises(ValueError, match="credit_risk"):
            load_german(csv_path=path)


class TestAdult:
    def test_schema(self):
        ds = load_adult(500, seed=0)
        assert ds.protected.attribute == "gender"
        assert ds.protected.privileged_category == "Male"
        assert "marital" in ds.feature_names
        assert ds.favorable_label == 1

    def test_males_favored(self):
        ds = load_adult(4000, seed=0)
        male = ds.privileged_mask()
        assert ds.labels[male].mean() > ds.labels[~male].mean() + 0.05

    def test_married_income_artifact(self):
        ds = load_adult(4000, seed=0)
        marital = np.asarray(ds.table.column("marital").values, dtype=object)
        married = marital == "Married-civ-spouse"
        assert ds.labels[married].mean() > ds.labels[~married].mean() + 0.15

    def test_relationship_consistent_with_marriage(self):
        ds = load_adult(1000, seed=0)
        marital = np.asarray(ds.table.column("marital").values, dtype=object)
        rel = np.asarray(ds.table.column("relationship").values, dtype=object)
        married = marital == "Married-civ-spouse"
        assert set(rel[married]) <= {"Husband", "Wife"}
        assert not (set(rel[~married]) & {"Husband", "Wife"})

    def test_education_num_matches_education(self):
        ds = load_adult(500, seed=0)
        edu = np.asarray(ds.table.column("education").values, dtype=object)
        num = np.asarray(ds.table.column("education_num").values)
        doctorate = edu == "Doctorate"
        if doctorate.any():
            assert (num[doctorate] == 16.0).all()

    def test_min_rows(self):
        with pytest.raises(ValueError, match=">= 100"):
            load_adult(50)

    def test_bias_strength_zero_is_fairer(self):
        def gap(ds):
            male = ds.privileged_mask()
            return ds.labels[male].mean() - ds.labels[~male].mean()

        assert abs(gap(load_adult(4000, seed=0, bias_strength=0.0))) < abs(
            gap(load_adult(4000, seed=0, bias_strength=1.0))
        )


class TestSQF:
    def test_schema(self):
        ds = load_sqf(500, seed=0)
        assert ds.protected.attribute == "race"
        assert ds.protected.privileged_category == "White"
        assert ds.favorable_label == 0  # not being frisked is favorable

    def test_blacks_frisked_more(self):
        ds = load_sqf(6000, seed=0)
        race = np.asarray(ds.table.column("race").values, dtype=object)
        frisked = ds.labels == 1
        assert frisked[race == "Black"].mean() > frisked[race == "White"].mean() + 0.1

    def test_no_description_mechanism(self):
        ds = load_sqf(6000, seed=0)
        race = np.asarray(ds.table.column("race").values, dtype=object)
        fits = np.asarray(ds.table.column("fits_description").values, dtype=object)
        loc = np.asarray(ds.table.column("location").values, dtype=object)
        age = np.asarray(ds.table.column("age").values)
        target = (race == "Black") & (fits == "No") & (loc == "Outside") & (age < 25)
        baseline = (race == "White") & (fits == "No")
        assert ds.labels[target].mean() > ds.labels[baseline].mean() + 0.2

    def test_favorable_mask_is_not_frisked(self):
        ds = load_sqf(300, seed=0)
        np.testing.assert_array_equal(ds.favorable_mask(), ds.labels == 0)

    def test_min_rows(self):
        with pytest.raises(ValueError, match=">= 100"):
            load_sqf(50)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            load_sqf(300, seed=9).labels, load_sqf(300, seed=9).labels
        )
