"""DataEdit semantics and the degenerate-protected-group guards.

Pins the edit value object (validation, the fixed relabel → remove → add
application order, factories, ``random_edit``) and — riding the same
debugging-loop surface — the named errors for a protected group that
matches no rows (or every row) of a split, raised by
``Dataset.fairness_context`` and ``AuditSession.context_for`` instead of
NaNs deep inside the metric pass.
"""

import numpy as np
import pytest

from repro.core import AuditSession
from repro.datasets import DataEdit, ProtectedGroup, random_edit


class TestDataEditValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DataEdit.remove([3, -1])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataEdit.remove([2, 2])
        with pytest.raises(ValueError, match="duplicate"):
            DataEdit.relabel([5, 5], [0, 1])

    def test_remove_relabel_overlap_rejected(self):
        with pytest.raises(ValueError, match="both removed and relabelled"):
            DataEdit(remove_indices=[4, 7], relabel_indices=[7], relabel_labels=[1])

    def test_relabel_misalignment_rejected(self):
        with pytest.raises(ValueError, match="relabel_labels"):
            DataEdit.relabel([1, 2, 3], [0, 1])

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValueError):
            DataEdit.relabel([0], [2])

    def test_empty_edit_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DataEdit()

    def test_add_requires_both_halves(self, german_train):
        with pytest.raises(ValueError, match="together"):
            DataEdit(add_table=german_train.table.take(np.array([0])))

    def test_add_length_mismatch_rejected(self, german_train):
        with pytest.raises(ValueError, match="add_labels length"):
            DataEdit.add(german_train.table.take(np.array([0, 1])), [1])

    def test_describe(self, german_train):
        edit = DataEdit(
            remove_indices=[1],
            relabel_indices=[2, 3],
            relabel_labels=[0, 1],
            add_table=german_train.table.take(np.array([0])),
            add_labels=[1],
        )
        assert edit.describe() == "edit(relabel 2, remove 1, add 1)"
        assert edit.changes_rows and edit.max_index() == 3


class TestApplyEditSemantics:
    def test_relabel_then_remove_then_add_order(self, german_train):
        """A relabel of a kept row survives; indices are pre-edit throughout."""
        labels = german_train.labels
        keep_target = 10
        edit = DataEdit(
            remove_indices=[0, 1, 2],
            relabel_indices=[keep_target],
            relabel_labels=[1 - labels[keep_target]],
            add_table=german_train.table.take(np.array([5, 6])),
            add_labels=labels[[5, 6]],
        )
        edited = german_train.apply_edit(edit)
        assert edited.num_rows == german_train.num_rows - 3 + 2
        # Row `keep_target` slid up by the 3 removals before it.
        assert edited.labels[keep_target - 3] == 1 - labels[keep_target]
        # Removal preserves order; adds land at the end.
        np.testing.assert_array_equal(edited.labels[-2:], labels[[5, 6]])
        assert edited.table.num_rows == edited.num_rows

    def test_relabel_only_shares_table_instance(self, german_train):
        edit = DataEdit.relabel([4], [1 - german_train.labels[4]])
        edited = german_train.apply_edit(edit)
        assert edited.table is german_train.table
        assert not np.array_equal(edited.labels, german_train.labels)

    def test_out_of_range_rejected(self, german_train):
        with pytest.raises(IndexError, match="row"):
            german_train.apply_edit(DataEdit.remove([german_train.num_rows]))


class TestRandomEdit:
    @pytest.mark.parametrize("kind", ["remove", "relabel", "add"])
    def test_kinds_and_determinism(self, german_train, kind):
        a = random_edit(german_train, kind, count=6, seed=9)
        b = random_edit(german_train, kind, count=6, seed=9)
        assert a.describe() == f"edit({kind} 6)"
        assert (a.remove_indices, a.relabel_indices, a.relabel_labels) == (
            b.remove_indices,
            b.relabel_indices,
            b.relabel_labels,
        )
        german_train.apply_edit(a)  # applies cleanly

    def test_add_resamples_existing_rows(self, german_train):
        edit = random_edit(german_train, "add", count=4, seed=2)
        # Resampling keeps the feature domain: every added row exists verbatim.
        edited = german_train.apply_edit(edit)
        assert edited.num_rows == german_train.num_rows + 4

    def test_bad_arguments(self, german_train):
        with pytest.raises(ValueError, match="kind"):
            random_edit(german_train, "shuffle", count=1)
        with pytest.raises(ValueError, match="count"):
            random_edit(german_train, "remove", count=0)
        with pytest.raises(ValueError, match="cannot"):
            random_edit(german_train, "remove", count=german_train.num_rows)


class TestDegenerateProtectedGroups:
    """Satellite: zero-match (or all-match) groups fail with a named error."""

    NOBODY = ProtectedGroup(attribute="gender", privileged_category="Nonbinary")

    def test_fairness_context_rejects_zero_match(self, german_test, X_test):
        with pytest.raises(ValueError, match="matches no rows"):
            german_test.fairness_context(X_test, self.NOBODY)

    def test_fairness_context_rejects_all_match(self, german_test, X_test):
        everybody = ProtectedGroup(attribute="age", privileged_threshold=-1.0)
        with pytest.raises(ValueError, match="matches every row"):
            german_test.fairness_context(X_test, everybody)

    def test_error_names_group_and_split(self, german_test, X_test):
        with pytest.raises(ValueError) as err:
            german_test.fairness_context(X_test, self.NOBODY)
        message = str(err.value)
        assert "gender" in message and german_test.name in message
        assert str(german_test.num_rows) in message

    def test_session_context_for_rejects_zero_match(
        self, lr_model, german_train, german_test
    ):
        session = AuditSession(
            lr_model, max_predicates=2, support_threshold=0.05
        ).fit(german_train, german_test)
        with pytest.raises(ValueError, match="matches no rows .* test split"):
            session.context_for(self.NOBODY)
