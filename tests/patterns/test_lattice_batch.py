"""Regression tests for the batched lattice search.

Golden guarantee: ``compute_candidates`` with ``batch=True`` (the default)
returns *the identical candidate set* — patterns, supports,
responsibilities — and identical per-level accounting as the per-candidate
query loop (``batch=False``), on the seeded synthetic dataset.  Plus the
support-threshold boundary: a pattern covering exactly τ of the rows is
excluded at every lattice level, matching the "strictly more than τ"
contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.patterns import compute_candidates
from repro.patterns.pattern import Pattern
from repro.patterns.predicate import Predicate
from repro.tabular import Table


@pytest.fixture(scope="module", params=["first_order", "second_order"])
def lattice_pair(request, german_train, fo_estimator, so_estimator):
    estimator = {"first_order": fo_estimator, "second_order": so_estimator}[request.param]
    kwargs = dict(support_threshold=0.05, max_predicates=3)
    loop = compute_candidates(german_train.table, estimator, batch=False, **kwargs)
    batched = compute_candidates(german_train.table, estimator, batch=True, **kwargs)
    return loop, batched


class TestGoldenEquivalence:
    def test_identical_patterns(self, lattice_pair):
        loop, batched = lattice_pair
        assert [s.pattern for s in loop.candidates] == [s.pattern for s in batched.candidates]

    def test_identical_supports_and_sizes(self, lattice_pair):
        loop, batched = lattice_pair
        assert [s.support for s in loop.candidates] == [s.support for s in batched.candidates]
        assert [s.size for s in loop.candidates] == [s.size for s in batched.candidates]

    def test_identical_responsibilities(self, lattice_pair):
        loop, batched = lattice_pair
        np.testing.assert_allclose(
            [s.responsibility for s in batched.candidates],
            [s.responsibility for s in loop.candidates],
            atol=1e-10,
            rtol=0.0,
        )
        np.testing.assert_allclose(
            [s.bias_change for s in batched.candidates],
            [s.bias_change for s in loop.candidates],
            atol=1e-10,
            rtol=0.0,
        )

    def test_level_accounting_preserved(self, lattice_pair):
        loop, batched = lattice_pair
        assert [
            (lv.level, lv.num_candidates, lv.num_merges_tried) for lv in loop.levels
        ] == [(lv.level, lv.num_candidates, lv.num_merges_tried) for lv in batched.levels]

    def test_batched_search_is_deterministic(self, german_train, fo_estimator):
        runs = [
            compute_candidates(german_train.table, fo_estimator, 0.05, max_predicates=2)
            for _ in range(2)
        ]
        assert [s.pattern for s in runs[0].candidates] == [s.pattern for s in runs[1].candidates]
        assert [s.responsibility for s in runs[0].candidates] == [
            s.responsibility for s in runs[1].candidates
        ]

    def test_small_batch_size_chunks_identically(self, german_train, fo_estimator):
        whole = compute_candidates(german_train.table, fo_estimator, 0.05, max_predicates=2)
        chunked = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=2, batch_size=7
        )
        assert [s.pattern for s in whole.candidates] == [s.pattern for s in chunked.candidates]
        np.testing.assert_allclose(
            [s.responsibility for s in whole.candidates],
            [s.responsibility for s in chunked.candidates],
            atol=1e-10,
            rtol=0.0,
        )

    def test_invalid_batch_size(self, german_train, fo_estimator):
        with pytest.raises(ValueError, match="batch_size"):
            compute_candidates(german_train.table, fo_estimator, 0.05, batch_size=0)


# ----------------------------------------------------------------------
# Support-threshold boundary: strictly-more-than τ at every level.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def boundary_setup():
    """20-row table engineered so several patterns sit exactly at τ = 0.2.

    Level 1: ``b = w`` covers exactly 4/20 rows.  Level 2: ``a = x ∧ b = u``
    covers exactly 4/20, while ``a = x ∧ b = v`` (6/20) and ``a = y ∧ b = u``
    (6/20) clear the bar.
    """
    a = ["x"] * 10 + ["y"] * 10
    b = ["u"] * 4 + ["v"] * 6 + ["u"] * 6 + ["w"] * 4
    table = Table.from_dict({"a": a, "b": b})
    rng = np.random.default_rng(3)
    X = rng.normal(size=(20, 3))
    y = np.array([0, 1] * 10)
    model = LogisticRegression(l2_reg=1e-2).fit(X, y)
    ctx = FairnessContext(
        X=X, y=y, privileged=np.array([True] * 10 + [False] * 10), favorable_label=1
    )
    estimator = make_estimator(
        "first_order", model, X, y, get_metric("statistical_parity"), ctx
    )
    return table, estimator


@pytest.mark.parametrize("batch", [True, False])
class TestSupportBoundary:
    TAU = 0.2

    def _candidates(self, boundary_setup, batch):
        table, estimator = boundary_setup
        result = compute_candidates(
            table,
            estimator,
            support_threshold=self.TAU,
            max_predicates=2,
            prune_by_responsibility=False,
            min_responsibility=-np.inf,
            batch=batch,
        )
        return result.candidates

    def test_no_candidate_at_exactly_tau(self, boundary_setup, batch):
        for stats in self._candidates(boundary_setup, batch):
            assert stats.support > self.TAU

    def test_level1_boundary_predicate_excluded(self, boundary_setup, batch):
        patterns = {s.pattern for s in self._candidates(boundary_setup, batch)}
        assert Pattern([Predicate("b", "=", "w")]) not in patterns

    def test_level2_boundary_merge_excluded(self, boundary_setup, batch):
        patterns = {s.pattern for s in self._candidates(boundary_setup, batch)}
        assert Pattern([Predicate("a", "=", "x"), Predicate("b", "=", "u")]) not in patterns

    def test_level2_above_boundary_kept(self, boundary_setup, batch):
        patterns = {s.pattern for s in self._candidates(boundary_setup, batch)}
        assert Pattern([Predicate("a", "=", "x"), Predicate("b", "=", "v")]) in patterns
        assert Pattern([Predicate("a", "=", "y"), Predicate("b", "=", "u")]) in patterns
