"""Tests for repro.patterns.lattice (Algorithm 1)."""

import numpy as np
import pytest

from repro.patterns import compute_candidates
from repro.patterns.lattice import _mergeable_pairs
from repro.patterns.pattern import Pattern
from repro.patterns.predicate import Predicate


@pytest.fixture(scope="module")
def lattice(german_train, so_estimator):
    return compute_candidates(
        german_train.table,
        so_estimator,
        support_threshold=0.05,
        max_predicates=3,
    )


class TestComputeCandidates:
    def test_produces_candidates(self, lattice):
        assert lattice.num_candidates > 20

    def test_supports_above_threshold(self, lattice):
        for stats in lattice.candidates:
            assert stats.support >= 0.05

    def test_masks_consistent_with_support(self, lattice, german_train):
        for stats in lattice.candidates[:20]:
            mask = stats.mask()
            assert mask.sum() == stats.size
            np.testing.assert_array_equal(mask, stats.pattern.mask(german_train.table))

    def test_level_sizes_reported(self, lattice):
        assert lattice.levels[0].level == 1
        assert all(lv.seconds >= 0 for lv in lattice.levels)

    def test_max_predicates_respected(self, lattice):
        assert all(len(s.pattern) <= 3 for s in lattice.candidates)

    def test_interestingness_is_resp_over_support(self, lattice):
        for stats in lattice.candidates[:10]:
            assert stats.interestingness == pytest.approx(
                stats.responsibility / stats.support
            )

    def test_no_duplicate_patterns(self, lattice):
        patterns = [s.pattern for s in lattice.candidates]
        assert len(patterns) == len(set(patterns))

    def test_merged_patterns_satisfiable(self, lattice):
        for stats in lattice.candidates:
            assert stats.pattern.is_satisfiable()


class TestPruning:
    def test_responsibility_prune_reduces_candidates(self, german_train, fo_estimator):
        pruned = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=2,
            prune_by_responsibility=True,
        )
        unpruned = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=2,
            prune_by_responsibility=False,
        )
        assert pruned.num_candidates < unpruned.num_candidates

    def test_responsibility_increases_along_merges(self, german_train, fo_estimator):
        result = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=2,
            prune_by_responsibility=True,
        )
        singles = {
            s.pattern.predicates[0]: s.responsibility
            for s in result.candidates
            if len(s.pattern) == 1
        }
        for stats in result.candidates:
            if len(stats.pattern) == 2:
                parents = [singles.get(p) for p in stats.pattern.predicates]
                known = [r for r in parents if r is not None]
                # Only parents inside the root-cause window constrain the
                # merge (see lattice module docstring).
                valid = [r for r in known if 0.0 < r <= 1.25]
                if len(known) == 2 and valid:
                    assert stats.responsibility > max(valid)

    def test_higher_threshold_fewer_candidates(self, german_train, fo_estimator):
        low = compute_candidates(german_train.table, fo_estimator, 0.05, max_predicates=2)
        high = compute_candidates(german_train.table, fo_estimator, 0.25, max_predicates=2)
        assert high.num_candidates < low.num_candidates

    def test_min_responsibility_filters_results(self, german_train, fo_estimator):
        filtered = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=2,
            min_responsibility=0.05,
        )
        assert all(s.responsibility >= 0.05 for s in filtered.candidates)


class TestFullCoveragePatterns:
    def test_full_coverage_single_predicate_skipped(self, german_train, fo_estimator):
        """foreign_worker = Yes covers ~96% but a constant column would cover
        100%; full-coverage patterns must never reach the estimator."""
        result = compute_candidates(
            german_train.table, fo_estimator, 0.05, max_predicates=1
        )
        assert all(s.support < 1.0 for s in result.candidates)


class TestValidation:
    def test_row_mismatch_rejected(self, german_test, so_estimator):
        with pytest.raises(ValueError, match="must match"):
            compute_candidates(german_test.table, so_estimator, 0.05)

    def test_invalid_max_predicates(self, german_train, so_estimator):
        with pytest.raises(ValueError, match="max_predicates"):
            compute_candidates(german_train.table, so_estimator, 0.05, max_predicates=0)


class TestMergeablePairs:
    @staticmethod
    def _entry(*preds):
        return (Pattern(list(preds)), np.ones(1, dtype=bool), 0.0)

    def test_level1_all_pairs(self):
        entries = [self._entry(Predicate(f, "=", 1)) for f in "abc"]
        pairs = list(_mergeable_pairs(entries))
        assert len(pairs) == 3

    def test_level2_only_one_predicate_difference(self):
        a, b, c, d = (Predicate(f, "=", 1) for f in "abcd")
        entries = [self._entry(a, b), self._entry(a, c), self._entry(c, d)]
        pairs = {tuple(sorted(p)) for p in _mergeable_pairs(entries)}
        # (ab, ac) share a; (ac, cd) share c; (ab, cd) share nothing.
        assert (0, 1) in pairs
        assert (1, 2) in pairs
        assert (0, 2) not in pairs

    def test_no_duplicate_pairs(self):
        a, b, c = (Predicate(f, "=", 1) for f in "abc")
        entries = [self._entry(a, b), self._entry(a, c), self._entry(b, c)]
        pairs = list(_mergeable_pairs(entries))
        assert len(pairs) == len(set(pairs))

    def test_empty_input(self):
        assert list(_mergeable_pairs([])) == []
