"""Tests for repro.patterns.topk (Algorithm 2)."""

import numpy as np
import pytest

from repro.patterns import Pattern, Predicate, containment, select_top_k
from repro.patterns.lattice import PatternStats


def make_stats(name, mask, responsibility):
    mask = np.asarray(mask, dtype=bool)
    return PatternStats(
        pattern=Pattern([Predicate(name, "=", "v")]),
        support=float(mask.mean()),
        size=int(mask.sum()),
        responsibility=responsibility,
        bias_change=-responsibility,
        _packed_mask=np.packbits(mask),
        _num_rows=len(mask),
    )


@pytest.fixture
def candidates():
    return [
        make_stats("a", [1, 1, 1, 1, 0, 0, 0, 0], 0.4),   # U = 0.8
        make_stats("b", [1, 1, 1, 0, 0, 0, 0, 0], 0.45),  # U = 1.2, inside a
        make_stats("c", [0, 0, 0, 0, 1, 1, 0, 0], 0.2),   # U = 0.8, disjoint
        make_stats("d", [0, 0, 0, 0, 0, 0, 1, 1], 0.1),   # U = 0.4, disjoint
        make_stats("e", [1, 0, 0, 0, 0, 0, 0, 0], -0.5),  # negative responsibility
    ]


class TestSelectTopK:
    def test_ranked_by_interestingness(self, candidates):
        selected, _ = select_top_k(candidates, k=1, containment_threshold=0.99)
        assert str(selected[0].pattern) == "b = v"

    def test_diversity_filter_drops_contained(self, candidates):
        # b is selected first (highest U); then a is skipped because
        # C(a, b) = |a ∧ b| / |a| = 3/4 exceeds the 0.5 threshold.
        selected, _ = select_top_k(candidates, k=3, containment_threshold=0.5)
        names = [str(s.pattern) for s in selected]
        assert "b = v" in names
        assert "a = v" not in names

    def test_high_threshold_keeps_overlapping(self, candidates):
        selected, _ = select_top_k(candidates, k=3, containment_threshold=0.99)
        names = [str(s.pattern) for s in selected]
        assert {"a = v", "b = v"} <= set(names)

    def test_negative_responsibility_excluded_by_default(self, candidates):
        selected, _ = select_top_k(candidates, k=5, containment_threshold=0.99)
        assert all(s.responsibility > 0 for s in selected)

    def test_negative_allowed_when_requested(self):
        pool = [
            make_stats("p", [1, 1, 0, 0], 0.3),
            make_stats("q", [0, 0, 1, 1], -0.5),  # disjoint, negative R
        ]
        selected, _ = select_top_k(
            pool, k=5, containment_threshold=0.99,
            require_positive_responsibility=False,
        )
        assert any(s.responsibility < 0 for s in selected)

    def test_k_respected(self, candidates):
        selected, _ = select_top_k(candidates, k=2, containment_threshold=0.99)
        assert len(selected) == 2

    def test_selected_pairwise_containment_below_threshold(self, candidates):
        threshold = 0.6
        selected, _ = select_top_k(candidates, k=4, containment_threshold=threshold)
        masks = [s.mask() for s in selected]
        for i, a in enumerate(masks):
            for j, b in enumerate(masks):
                if i < j:
                    assert containment(b, a) <= threshold

    def test_filter_seconds_reported(self, candidates):
        _, seconds = select_top_k(candidates, k=2)
        assert seconds >= 0.0

    def test_deterministic_tie_break(self):
        mask1 = [1, 1, 0, 0]
        mask2 = [0, 0, 1, 1]
        a = make_stats("z", mask1, 0.2)
        b = make_stats("a", mask2, 0.2)  # same interestingness
        selected, _ = select_top_k([a, b], k=1, containment_threshold=0.99)
        assert str(selected[0].pattern) == "a = v"  # canonical order wins

    def test_invalid_k(self, candidates):
        with pytest.raises(ValueError, match="k must be"):
            select_top_k(candidates, k=0)

    def test_invalid_threshold(self, candidates):
        with pytest.raises(ValueError, match="containment_threshold"):
            select_top_k(candidates, k=1, containment_threshold=0.0)

    def test_empty_candidates(self):
        selected, _ = select_top_k([], k=3)
        assert selected == []

    def test_exclude_features_only_drops_vacuous(self):
        pool = [
            make_stats("gender", [1, 1, 0, 0], 0.9),   # protected-only -> dropped
            make_stats("hours", [0, 0, 1, 1], 0.2),
        ]
        selected, _ = select_top_k(
            pool, k=2, containment_threshold=0.99, exclude_features_only={"gender"}
        )
        assert [str(s.pattern) for s in selected] == ["hours = v"]

    def test_exclude_features_only_keeps_combinations(self):
        from repro.patterns import Pattern, Predicate
        mask = np.array([1, 1, 0, 0], dtype=bool)
        combined = PatternStats(
            pattern=Pattern([Predicate("gender", "=", "F"), Predicate("age", ">=", 45.0)]),
            support=0.5,
            size=2,
            responsibility=0.3,
            bias_change=-0.06,
            _packed_mask=np.packbits(mask),
            _num_rows=4,
        )
        selected, _ = select_top_k(
            [combined], k=1, containment_threshold=0.99, exclude_features_only={"gender"}
        )
        assert len(selected) == 1
