"""Tests for the Definition-3.1 root-cause window in pruning and selection."""

import numpy as np
import pytest

from repro.patterns.lattice import _parent_bar
from repro.patterns.topk import select_top_k

from test_topk import make_stats  # same-directory test helper


class TestParentBar:
    def test_both_valid_takes_max(self):
        assert _parent_bar(0.3, 0.6, cap=1.25) == 0.6

    def test_overshooting_parent_ignored(self):
        assert _parent_bar(1.56, 0.6, cap=1.25) == 0.6

    def test_negative_parent_ignored(self):
        assert _parent_bar(-0.4, 0.2, cap=1.25) == 0.2

    def test_no_valid_parents_no_bar(self):
        assert _parent_bar(1.6, -0.1, cap=1.25) == -np.inf

    def test_boundary_inclusive(self):
        assert _parent_bar(1.25, 0.1, cap=1.25) == 1.25

    def test_zero_is_invalid(self):
        assert _parent_bar(0.0, 0.0, cap=1.25) == -np.inf


class TestSelectionWindow:
    def test_overshooting_candidate_excluded(self):
        pool = [
            make_stats("broad", [1] * 8 + [0] * 2, 1.6),   # overshoots
            make_stats("tight", [0] * 8 + [1] * 2, 0.5),
        ]
        selected, _ = select_top_k(pool, k=2, containment_threshold=0.99)
        assert [str(s.pattern) for s in selected] == ["tight = v"]

    def test_cap_configurable(self):
        pool = [make_stats("broad", [1, 1, 0, 0], 1.6)]
        selected, _ = select_top_k(
            pool, k=1, containment_threshold=0.99, max_responsibility=float("inf")
        )
        assert len(selected) == 1

    def test_invalid_cap(self):
        with pytest.raises(ValueError, match="max_responsibility"):
            select_top_k([], k=1, max_responsibility=0.0)

    def test_near_one_estimates_kept(self):
        """Near-total fixes (R slightly above 1) survive the default slack."""
        pool = [make_stats("fix", [1, 1, 0, 0], 1.05)]
        selected, _ = select_top_k(pool, k=1, containment_threshold=0.99)
        assert len(selected) == 1
