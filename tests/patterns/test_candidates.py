"""Tests for repro.patterns.candidates (level-1 generation)."""

import numpy as np
import pytest

from repro.patterns.candidates import generate_single_predicates
from repro.tabular import Table


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    return Table.from_dict(
        {
            "color": ["red"] * 50 + ["blue"] * 45 + ["green"] * 5,
            "value": rng.normal(50, 10, 100).round(),
            "rate": np.tile([1.0, 2.0, 3.0, 4.0], 25),
        }
    )


class TestGeneration:
    def test_all_supports_above_threshold(self, table):
        for predicate, mask in generate_single_predicates(table, 0.1):
            assert mask.mean() > 0.1, str(predicate)

    def test_low_support_category_pruned(self, table):
        predicates = {
            str(p) for p, _ in generate_single_predicates(table, 0.1)
        }
        assert "color = green" not in predicates
        assert "color = red" in predicates

    def test_masks_match_predicates(self, table):
        for predicate, mask in generate_single_predicates(table, 0.05):
            np.testing.assert_array_equal(mask, predicate.mask(table))

    def test_numeric_gets_threshold_pairs(self, table):
        predicates = [p for p, _ in generate_single_predicates(table, 0.05)]
        ops = {p.op for p in predicates if p.feature == "value"}
        assert ops == {">=", "<"}

    def test_low_cardinality_numeric_gets_equality(self, table):
        predicates = [p for p, _ in generate_single_predicates(table, 0.05)]
        eq = [p for p in predicates if p.feature == "rate" and p.op == "="]
        assert len(eq) == 4

    def test_integer_column_integer_thresholds(self, table):
        predicates = [p for p, _ in generate_single_predicates(table, 0.05)]
        for p in predicates:
            if p.feature == "value" and p.op in (">=", "<"):
                assert float(p.value) == round(float(p.value))

    def test_exclude_features(self, table):
        predicates = [
            p for p, _ in generate_single_predicates(table, 0.05, exclude_features={"color"})
        ]
        assert all(p.feature != "color" for p in predicates)

    def test_more_bins_more_thresholds(self, table):
        few = generate_single_predicates(table, 0.01, num_bins=2)
        many = generate_single_predicates(table, 0.01, num_bins=8)
        assert len(many) > len(few)

    def test_invalid_threshold(self, table):
        with pytest.raises(ValueError, match="support_threshold"):
            generate_single_predicates(table, 1.0)
