"""Tests for repro.patterns.pattern."""

import numpy as np
import pytest

from repro.patterns import Pattern, Predicate
from repro.tabular import Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "age": [20.0, 45.0, 60.0, 50.0],
            "gender": ["F", "M", "F", "F"],
        }
    )


def P(*preds):
    return Pattern(list(preds))


class TestConstruction:
    def test_canonical_order(self):
        a = P(Predicate("b", "=", "x"), Predicate("a", ">", 1.0))
        b = P(Predicate("a", ">", 1.0), Predicate("b", "=", "x"))
        assert a == b
        assert hash(a) == hash(b)

    def test_duplicates_collapse(self):
        p = P(Predicate("a", "=", 1), Predicate("a", "=", 1))
        assert len(p) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Pattern([])

    def test_immutable(self):
        p = P(Predicate("a", "=", 1))
        with pytest.raises(AttributeError):
            p.predicates = ()

    def test_str_joins_with_conjunction(self):
        p = P(Predicate("age", ">=", 45.0), Predicate("gender", "=", "F"))
        assert str(p) == "age >= 45 ∧ gender = F"


class TestMatching:
    def test_mask_conjunction(self, table):
        p = P(Predicate("age", ">=", 45.0), Predicate("gender", "=", "F"))
        np.testing.assert_array_equal(p.mask(table), [False, False, True, True])

    def test_support(self, table):
        p = P(Predicate("gender", "=", "F"))
        assert p.support(table) == pytest.approx(0.75)

    def test_support_empty_table_rejected(self, table):
        p = P(Predicate("gender", "=", "F"))
        with pytest.raises(ValueError, match="empty"):
            p.support(table.filter(np.zeros(4, dtype=bool)))

    def test_features(self):
        p = P(Predicate("a", "=", 1), Predicate("b", "<", 2.0))
        assert p.features() == {"a", "b"}


class TestAlgebra:
    def test_merge_union(self):
        a = P(Predicate("a", "=", 1))
        b = P(Predicate("b", "=", 2))
        merged = a.merge(b)
        assert len(merged) == 2

    def test_merge_overlapping(self):
        shared = Predicate("a", "=", 1)
        a = P(shared, Predicate("b", "=", 2))
        b = P(shared, Predicate("c", "=", 3))
        assert len(a.merge(b)) == 3

    def test_differs_in_one(self):
        shared = Predicate("a", "=", 1)
        a = P(shared, Predicate("b", "=", 2))
        b = P(shared, Predicate("c", "=", 3))
        assert a.differs_in_one(b)

    def test_differs_in_one_false_for_disjoint(self):
        a = P(Predicate("a", "=", 1), Predicate("b", "=", 2))
        b = P(Predicate("c", "=", 3), Predicate("d", "=", 4))
        assert not a.differs_in_one(b)

    def test_differs_in_one_false_for_different_sizes(self):
        a = P(Predicate("a", "=", 1))
        b = P(Predicate("a", "=", 1), Predicate("b", "=", 2))
        assert not a.differs_in_one(b)

    def test_satisfiable(self):
        ok = P(Predicate("age", ">=", 30.0), Predicate("age", "<", 50.0))
        assert ok.is_satisfiable()
        bad = P(Predicate("age", "<", 30.0), Predicate("age", ">", 50.0))
        assert not bad.is_satisfiable()

    def test_unsatisfiable_pattern_matches_nothing(self, table):
        bad = P(Predicate("gender", "=", "F"), Predicate("gender", "=", "M"))
        assert not bad.mask(table).any()

    def test_contains_pattern(self):
        small = P(Predicate("a", "=", 1))
        big = P(Predicate("a", "=", 1), Predicate("b", "=", 2))
        assert big.contains_pattern(small)
        assert not small.contains_pattern(big)
