"""Tests for repro.patterns.predicate."""

import numpy as np
import pytest

from repro.patterns import Predicate
from repro.tabular import Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "age": [20.0, 45.0, 60.0],
            "gender": ["F", "M", "F"],
        }
    )


class TestMask:
    def test_categorical_equality(self, table):
        np.testing.assert_array_equal(
            Predicate("gender", "=", "F").mask(table), [True, False, True]
        )

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("<", 45.0, [True, False, False]),
            ("<=", 45.0, [True, True, False]),
            (">", 45.0, [False, False, True]),
            (">=", 45.0, [False, True, True]),
            ("=", 45.0, [False, True, False]),
        ],
    )
    def test_numeric_ops(self, table, op, value, expected):
        np.testing.assert_array_equal(Predicate("age", op, value).mask(table), expected)

    def test_categorical_inequality_rejected(self, table):
        with pytest.raises(ValueError, match="'=' only"):
            Predicate("gender", "<", "F").mask(table)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unsupported operator"):
            Predicate("age", "!=", 5)


class TestConflicts:
    def test_different_features_never_conflict(self):
        assert not Predicate("a", "=", 1).conflicts_with(Predicate("b", "=", 99))

    def test_categorical_equality_conflict(self):
        a = Predicate("gender", "=", "F")
        b = Predicate("gender", "=", "M")
        assert a.conflicts_with(b)
        assert not a.conflicts_with(Predicate("gender", "=", "F"))

    def test_numeric_disjoint_intervals(self):
        assert Predicate("age", "<", 30.0).conflicts_with(Predicate("age", ">", 40.0))
        assert Predicate("age", ">=", 45.0).conflicts_with(Predicate("age", "<", 45.0))

    def test_numeric_touching_closed_intervals_ok(self):
        assert not Predicate("age", "<=", 45.0).conflicts_with(Predicate("age", ">=", 45.0))

    def test_numeric_touching_open_conflicts(self):
        assert Predicate("age", "<", 45.0).conflicts_with(Predicate("age", ">=", 45.0))

    def test_equality_inside_interval_ok(self):
        assert not Predicate("age", "=", 40.0).conflicts_with(Predicate("age", "<", 45.0))

    def test_equality_outside_interval_conflicts(self):
        assert Predicate("age", "=", 50.0).conflicts_with(Predicate("age", "<", 45.0))

    def test_overlapping_intervals_ok(self):
        assert not Predicate("age", ">", 20.0).conflicts_with(Predicate("age", "<", 40.0))

    def test_symmetry(self):
        a, b = Predicate("age", "<", 30.0), Predicate("age", ">", 40.0)
        assert a.conflicts_with(b) == b.conflicts_with(a)


class TestDisplay:
    def test_str_integral_value(self):
        assert str(Predicate("age", ">=", 45.0)) == "age >= 45"

    def test_str_fractional_value(self):
        assert str(Predicate("x", "<", 2.5)) == "x < 2.5"

    def test_str_categorical(self):
        assert str(Predicate("gender", "=", "Female")) == "gender = Female"

    def test_hashable_and_equal(self):
        assert Predicate("a", "=", 1) == Predicate("a", "=", 1)
        assert len({Predicate("a", "=", 1), Predicate("a", "=", 1)}) == 1

    def test_sort_key_total_order(self):
        preds = [Predicate("b", "=", 1), Predicate("a", ">", 2), Predicate("a", "<", 2)]
        ordered = sorted(preds, key=lambda p: p.sort_key())
        assert ordered[0].feature == "a"
