"""Tests for repro.patterns.containment."""

import numpy as np
import pytest

from repro.patterns import containment, max_containment


class TestContainment:
    def test_full_containment(self):
        a = np.array([True, True, False, False])
        b = np.array([True, True, True, False])
        assert containment(a, b) == 1.0

    def test_partial(self):
        a = np.array([True, True, True, True])
        b = np.array([True, True, False, False])
        assert containment(a, b) == 0.5

    def test_disjoint(self):
        a = np.array([True, False])
        b = np.array([False, True])
        assert containment(a, b) == 0.0

    def test_asymmetric(self):
        small = np.array([True, False, False, False])
        big = np.array([True, True, True, False])
        assert containment(small, big) == 1.0
        assert containment(big, small) == pytest.approx(1 / 3)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            containment(np.zeros(3, dtype=bool), np.ones(3, dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            containment(np.ones(3, dtype=bool), np.ones(4, dtype=bool))


class TestMaxContainment:
    def test_empty_set_is_zero(self):
        assert max_containment(np.array([True, False]), []) == 0.0

    def test_takes_maximum(self):
        target = np.array([True, True, False, False])
        others = [
            np.array([True, False, False, False]),   # 0.5
            np.array([True, True, True, False]),      # 1.0
        ]
        assert max_containment(target, others) == 1.0

    def test_short_circuits_at_one(self):
        target = np.array([True, False])
        others = iter([np.array([True, True]), np.array([False, False])])
        assert max_containment(target, others) == 1.0
