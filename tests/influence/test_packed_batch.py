"""Packed-mask fast path of the batched influence API.

A packed batch — (m, ceil(n/8)) uint8 rows plus ``num_rows`` — must give
bit-identical answers to the boolean mask matrix it encodes, for every
estimator and batch entry point, including batches larger than the
internal unpack chunk (so the streaming path is actually exercised).
"""

import numpy as np
import pytest

from repro.influence import make_estimator
from repro.influence.estimators import _PACKED_CHUNK
from repro.mining.bitset import pack_rows
from repro.utils.rng import ensure_rng

ESTIMATOR_SETUPS = [
    ("first_order", {"evaluation": "linear"}),
    ("first_order", {"evaluation": "smooth"}),
    ("second_order", {"variant": "series", "evaluation": "smooth"}),
    ("second_order", {"variant": "exact", "evaluation": "smooth"}),
    ("one_step_gd", {"evaluation": "hard"}),
]


def random_mask_matrix(num_train, count, seed=0):
    rng = ensure_rng(seed)
    masks = np.zeros((count, num_train), dtype=bool)
    for j in range(count):
        size = int(rng.integers(5, max(6, num_train // 8)))
        masks[j, rng.choice(num_train, size=size, replace=False)] = True
    return masks


@pytest.fixture(scope="module", params=ESTIMATOR_SETUPS, ids=lambda s: f"{s[0]}-{list(s[1].values())[-1]}")
def estimator(request, lr_model, X_train, german_train, sp_metric, test_ctx):
    name, kwargs = request.param
    return make_estimator(
        name, lr_model, X_train, german_train.labels, sp_metric, test_ctx, **kwargs
    )


class TestPackedEqualsBoolean:
    def test_bias_change_batch(self, estimator):
        masks = random_mask_matrix(estimator.num_train, 40, seed=1)
        expected = estimator.bias_change_batch(masks)
        packed = estimator.bias_change_batch(pack_rows(masks), num_rows=estimator.num_train)
        np.testing.assert_allclose(packed, expected, atol=1e-12, rtol=0)

    def test_param_change_batch(self, estimator):
        masks = random_mask_matrix(estimator.num_train, 17, seed=2)
        expected = estimator.param_change_batch(masks)
        packed = estimator.param_change_batch(pack_rows(masks), num_rows=estimator.num_train)
        np.testing.assert_allclose(packed, expected, atol=1e-12, rtol=0)

    def test_responsibility_batch(self, estimator):
        masks = random_mask_matrix(estimator.num_train, 23, seed=3)
        expected = estimator.responsibility_batch(masks)
        packed = estimator.responsibility_batch(
            pack_rows(masks), num_rows=estimator.num_train
        )
        np.testing.assert_allclose(packed, expected, atol=1e-12, rtol=0)


class TestStreamingChunks:
    def test_batch_larger_than_unpack_chunk(self, fo_estimator):
        count = _PACKED_CHUNK + 37  # force at least two unpack chunks
        masks = random_mask_matrix(fo_estimator.num_train, count, seed=4)
        expected = fo_estimator.bias_change_batch(masks)
        packed = fo_estimator.bias_change_batch(
            pack_rows(masks), num_rows=fo_estimator.num_train
        )
        assert packed.shape == (count,)
        np.testing.assert_allclose(packed, expected, atol=1e-12, rtol=0)

    def test_empty_packed_batch(self, fo_estimator):
        packed = np.zeros((0, (fo_estimator.num_train + 7) // 8), dtype=np.uint8)
        assert fo_estimator.bias_change_batch(packed, num_rows=fo_estimator.num_train).shape == (0,)
        assert fo_estimator.param_change_batch(
            packed, num_rows=fo_estimator.num_train
        ).shape == (0, fo_estimator.model.num_params)


class TestPackedValidation:
    def test_wrong_num_rows_rejected(self, fo_estimator):
        masks = random_mask_matrix(fo_estimator.num_train, 3, seed=5)
        with pytest.raises(ValueError, match="cover"):
            fo_estimator.bias_change_batch(pack_rows(masks), num_rows=fo_estimator.num_train + 1)

    def test_bool_matrix_with_num_rows_rejected(self, fo_estimator):
        masks = random_mask_matrix(fo_estimator.num_train, 3, seed=6)
        with pytest.raises(ValueError, match="packed batch"):
            fo_estimator.bias_change_batch(masks, num_rows=fo_estimator.num_train)

    def test_wrong_byte_width_rejected(self, fo_estimator):
        packed = np.zeros((3, 4), dtype=np.uint8)
        with pytest.raises(ValueError, match="byte columns"):
            fo_estimator.bias_change_batch(packed, num_rows=fo_estimator.num_train)

    def test_uint8_without_num_rows_still_rejected(self, fo_estimator):
        """The pre-existing guard: a bare 2-D uint8 matrix is ambiguous and
        must not be silently read as packed (or as masks)."""
        masks = random_mask_matrix(fo_estimator.num_train, 3, seed=7)
        with pytest.raises(ValueError, match="boolean mask"):
            fo_estimator.bias_change_batch(pack_rows(masks))

    def test_full_row_rejected(self, fo_estimator):
        full = np.ones((1, fo_estimator.num_train), dtype=bool)
        with pytest.raises(ValueError, match="entire training set"):
            fo_estimator.bias_change_batch(pack_rows(full), num_rows=fo_estimator.num_train)
