"""The shared (optionally process-parallel) retrain helper.

``retrain_thetas`` is the one refit loop behind ``RetrainInfluence``'s batch
queries and the §5 update verification; parallel dispatch must change
nothing but wall time.
"""

import numpy as np
import pytest

from repro.influence import RetrainInfluence, RetrainTask, retrain_thetas
from repro.influence.parallel import modified_training_set, resolve_jobs


@pytest.fixture(scope="module")
def subsets():
    return [np.arange(5), np.arange(20, 60), np.array([3, 7, 400, 401])]


class TestRetrainThetas:
    def test_removal_tasks_match_scalar_path(
        self, retrain_estimator, lr_model, X_train, german_train, subsets
    ):
        tasks = [RetrainTask(s) for s in subsets]
        thetas = retrain_thetas(
            lr_model, X_train, german_train.labels, tasks,
            warm_start=lr_model.theta, n_jobs=1,
        )
        for subset, theta in zip(subsets, thetas):
            np.testing.assert_allclose(
                theta, retrain_estimator.retrained_theta(subset), atol=1e-12
            )

    def test_parallel_matches_serial(self, lr_model, X_train, german_train, subsets):
        tasks = [RetrainTask(s) for s in subsets]
        serial = retrain_thetas(
            lr_model, X_train, german_train.labels, tasks,
            warm_start=lr_model.theta, n_jobs=1,
        )
        parallel = retrain_thetas(
            lr_model, X_train, german_train.labels, tasks,
            warm_start=lr_model.theta, n_jobs=2,
        )
        np.testing.assert_allclose(parallel, serial, atol=1e-12)

    def test_replacement_task_matches_manual_refit(
        self, lr_model, X_train, german_train
    ):
        indices = np.arange(10)
        replacement = X_train[indices] * 0.5
        thetas = retrain_thetas(
            lr_model, X_train, german_train.labels,
            [RetrainTask(indices, replacement)],
            warm_start=lr_model.theta,
        )
        X_new = X_train.copy()
        X_new[indices] = replacement
        clone = lr_model.clone().fit(X_new, german_train.labels,
                                     warm_start=lr_model.theta.copy())
        np.testing.assert_allclose(thetas[0], clone.theta, atol=1e-12)

    def test_empty_task_list(self, lr_model, X_train, german_train):
        thetas = retrain_thetas(lr_model, X_train, german_train.labels, [])
        assert thetas.shape == (0, lr_model.num_params)

    def test_replacement_row_count_checked(self):
        with pytest.raises(ValueError, match="replacement"):
            RetrainTask(np.arange(3), np.zeros((2, 4)))

    def test_degenerate_removal_raises(self, lr_model, X_train, german_train):
        labels = np.asarray(german_train.labels)
        keep_class = np.flatnonzero(labels == 0)
        task = RetrainTask(np.flatnonzero(labels == 1))
        assert keep_class.size > 0
        with pytest.raises(ValueError, match="single class"):
            retrain_thetas(lr_model, X_train, labels, [task])


class TestHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(1, 10) == 1
        assert resolve_jobs(4, 2) == 2
        assert resolve_jobs(None, 3) >= 1
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_jobs(0, 3)

    def test_modified_training_set_removal(self, X_train, german_train):
        X_new, y_new = modified_training_set(
            X_train, np.asarray(german_train.labels), RetrainTask(np.arange(5))
        )
        assert len(X_new) == len(X_train) - 5
        np.testing.assert_array_equal(X_new[0], X_train[5])
        assert len(y_new) == len(X_new)

    def test_modified_training_set_replacement(self, X_train, german_train):
        rows = X_train[:3] + 1.0
        X_new, y_new = modified_training_set(
            X_train, np.asarray(german_train.labels), RetrainTask(np.arange(3), rows)
        )
        assert len(X_new) == len(X_train)
        np.testing.assert_array_equal(X_new[:3], rows)
        np.testing.assert_array_equal(y_new, np.asarray(german_train.labels))


class TestRetrainInfluenceBatch:
    def test_batch_matches_scalar(self, retrain_estimator, subsets):
        batch = retrain_estimator.bias_change_batch(subsets)
        scalar = [retrain_estimator.bias_change(s) for s in subsets]
        np.testing.assert_allclose(batch, scalar, atol=1e-12)

    def test_parallel_estimator_matches_serial(
        self, lr_model, X_train, german_train, sp_metric, test_ctx,
        retrain_estimator, subsets,
    ):
        parallel = RetrainInfluence(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx, n_jobs=2
        )
        np.testing.assert_allclose(
            parallel.bias_change_batch(subsets),
            retrain_estimator.bias_change_batch(subsets),
            atol=1e-12,
        )
