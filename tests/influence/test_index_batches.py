"""Index-streamed batches of the influence API.

With ``num_rows``, the batch entry points accept a sequence of per-subset
index arrays — the miner's compressed sparse tidlists — and must answer
identically (to 1e-10) to the boolean mask matrix encoding the same
subsets, for every estimator family and entry point.  The suite also pins
the first-order linear gather fast path, the row-blocked packed GEMM the
out-of-core path switches to on huge training sets, and the validation
errors that keep malformed batches from silently scoring wrong subsets.
"""

import numpy as np
import pytest

import repro.influence.first_order as first_order_mod
from repro.influence import make_estimator
from repro.mining.bitset import pack_rows
from repro.utils.rng import ensure_rng

ESTIMATOR_SETUPS = [
    ("first_order", {"evaluation": "linear"}),
    ("first_order", {"evaluation": "smooth"}),
    ("second_order", {"variant": "series", "evaluation": "smooth"}),
    ("one_step_gd", {"evaluation": "hard"}),
]


def random_subsets(num_train, count, seed=0, max_size=40):
    rng = ensure_rng(seed)
    subsets = []
    for _ in range(count):
        size = int(rng.integers(3, max_size))
        subsets.append(np.sort(rng.choice(num_train, size=size, replace=False)))
    return subsets


def to_masks(subsets, num_train):
    masks = np.zeros((len(subsets), num_train), dtype=bool)
    for j, idx in enumerate(subsets):
        masks[j, idx] = True
    return masks


@pytest.fixture(
    scope="module",
    params=ESTIMATOR_SETUPS,
    ids=lambda s: f"{s[0]}-{list(s[1].values())[-1]}",
)
def estimator(request, lr_model, X_train, german_train, sp_metric, test_ctx):
    name, kwargs = request.param
    return make_estimator(
        name, lr_model, X_train, german_train.labels, sp_metric, test_ctx, **kwargs
    )


class TestIndexEqualsMask:
    def test_bias_change_batch(self, estimator):
        subsets = random_subsets(estimator.num_train, 30, seed=1)
        expected = estimator.bias_change_batch(to_masks(subsets, estimator.num_train))
        got = estimator.bias_change_batch(subsets, num_rows=estimator.num_train)
        np.testing.assert_allclose(got, expected, atol=1e-10, rtol=0)

    def test_param_change_batch(self, estimator):
        subsets = random_subsets(estimator.num_train, 12, seed=2)
        expected = estimator.param_change_batch(to_masks(subsets, estimator.num_train))
        got = estimator.param_change_batch(subsets, num_rows=estimator.num_train)
        np.testing.assert_allclose(got, expected, atol=1e-10, rtol=0)

    def test_responsibility_batch(self, estimator):
        subsets = random_subsets(estimator.num_train, 18, seed=3)
        expected = estimator.responsibility_batch(to_masks(subsets, estimator.num_train))
        got = estimator.responsibility_batch(subsets, num_rows=estimator.num_train)
        np.testing.assert_allclose(got, expected, atol=1e-10, rtol=0)

    def test_int32_indices_accepted(self, fo_estimator):
        """The miner's sparse tidlists are int32 below 2^31 rows."""
        subsets = [idx.astype(np.int32) for idx in random_subsets(fo_estimator.num_train, 8, seed=4)]
        expected = fo_estimator.bias_change_batch(to_masks(subsets, fo_estimator.num_train))
        got = fo_estimator.bias_change_batch(subsets, num_rows=fo_estimator.num_train)
        np.testing.assert_allclose(got, expected, atol=1e-10, rtol=0)

    def test_mixed_with_scalar_loop(self, estimator):
        subsets = random_subsets(estimator.num_train, 6, seed=5)
        got = estimator.bias_change_batch(subsets, num_rows=estimator.num_train)
        loop = np.array([estimator.bias_change(idx) for idx in subsets])
        np.testing.assert_allclose(got, loop, atol=1e-10, rtol=0)


class TestBlockedPackedGemm:
    """The >_STREAM_MIN_ROWS row-blocked linear fold, forced small."""

    def test_blocked_equals_unblocked(self, fo_estimator, monkeypatch):
        subsets = random_subsets(fo_estimator.num_train, 20, seed=6)
        masks = to_masks(subsets, fo_estimator.num_train)
        packed = pack_rows(masks)
        # Force the historical chunk-unpack path for the reference value…
        monkeypatch.setattr(first_order_mod, "_STREAM_MIN_ROWS", 10**12)
        expected = fo_estimator.bias_change_batch(packed, num_rows=fo_estimator.num_train)
        # …then the blocked fold with a tiny byte budget (many column blocks).
        monkeypatch.setattr(first_order_mod, "_STREAM_MIN_ROWS", 1)
        monkeypatch.setattr(first_order_mod, "_MASK_BLOCK_BYTES", 512)
        blocked = fo_estimator.bias_change_batch(packed, num_rows=fo_estimator.num_train)
        np.testing.assert_allclose(blocked, expected, atol=1e-12, rtol=0)

    def test_blocked_entire_train_set_guard(self, fo_estimator, monkeypatch):
        monkeypatch.setattr(first_order_mod, "_STREAM_MIN_ROWS", 1)
        full = pack_rows(np.ones((1, fo_estimator.num_train), dtype=bool))
        with pytest.raises(ValueError, match="entire training set"):
            fo_estimator.bias_change_batch(full, num_rows=fo_estimator.num_train)

    def test_blocked_empty_batch(self, fo_estimator, monkeypatch):
        monkeypatch.setattr(first_order_mod, "_STREAM_MIN_ROWS", 1)
        empty = np.zeros((0, (fo_estimator.num_train + 7) // 8), dtype=np.uint8)
        assert fo_estimator.bias_change_batch(empty, num_rows=fo_estimator.num_train).shape == (0,)


class TestValidation:
    def test_wrong_num_rows_rejected(self, fo_estimator):
        subsets = random_subsets(fo_estimator.num_train, 3, seed=7)
        with pytest.raises(ValueError, match="rows"):
            fo_estimator.bias_change_batch(subsets, num_rows=fo_estimator.num_train + 1)

    def test_out_of_range_indices_rejected(self, fo_estimator):
        bad = [np.array([0, fo_estimator.num_train], dtype=np.int64)]
        with pytest.raises(IndexError):
            fo_estimator.bias_change_batch(bad, num_rows=fo_estimator.num_train)

    def test_duplicate_indices_rejected(self, fo_estimator):
        bad = [np.array([3, 3, 5], dtype=np.int64)]
        with pytest.raises(ValueError, match="duplicates"):
            fo_estimator.bias_change_batch(bad, num_rows=fo_estimator.num_train)

    def test_entire_training_set_rejected(self, fo_estimator):
        full = [np.arange(fo_estimator.num_train, dtype=np.int64)]
        with pytest.raises(ValueError, match="entire training set"):
            fo_estimator.bias_change_batch(full, num_rows=fo_estimator.num_train)

    def test_empty_sequence_with_num_rows_rejected(self, fo_estimator):
        """An empty list under num_rows keeps the historical packed error
        rather than silently scoring nothing."""
        with pytest.raises(ValueError):
            fo_estimator.bias_change_batch([], num_rows=fo_estimator.num_train)

    def test_float_subsets_with_num_rows_rejected(self, fo_estimator):
        with pytest.raises(ValueError, match="packed"):
            fo_estimator.bias_change_batch(
                [np.array([0.5, 1.5])], num_rows=fo_estimator.num_train
            )

    def test_without_num_rows_index_sequences_still_work(self, fo_estimator):
        """The pre-existing mask-scatter path is untouched."""
        subsets = random_subsets(fo_estimator.num_train, 5, seed=8)
        a = fo_estimator.bias_change_batch(subsets)
        b = fo_estimator.bias_change_batch(subsets, num_rows=fo_estimator.num_train)
        np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
