"""Unit tests specific to each estimator implementation."""

import numpy as np
import pytest

from repro.influence import (
    FirstOrderInfluence,
    OneStepGradientDescent,
    RetrainInfluence,
    SecondOrderInfluence,
)


class TestFirstOrder:
    def test_point_influences_sum_equals_subset(self, fo_estimator):
        idx = np.array([1, 4, 6, 9])
        expected = fo_estimator.point_influences()[idx].sum()
        assert fo_estimator.bias_change(idx) == pytest.approx(expected)

    def test_additivity(self, fo_estimator):
        """FO influence is additive by construction (Eq. 9)."""
        a, b = np.arange(10), np.arange(10, 30)
        total = fo_estimator.bias_change(np.concatenate([a, b]))
        assert total == pytest.approx(
            fo_estimator.bias_change(a) + fo_estimator.bias_change(b)
        )

    def test_param_change_linear_system(self, fo_estimator):
        idx = np.arange(12)
        delta = fo_estimator.param_change(idx)
        g_s = fo_estimator.subset_grad_sum(idx)
        lhs = fo_estimator.solver.apply(delta) * fo_estimator.num_train
        np.testing.assert_allclose(lhs, g_s, atol=1e-8)

    def test_point_influences_cached(self, fo_estimator):
        assert fo_estimator.point_influences() is fo_estimator.point_influences()

    def test_hard_evaluation_mode(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = FirstOrderInfluence(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx, evaluation="hard"
        )
        idx = np.arange(40)
        theta_new = est.theta + est.param_change(idx)
        expected = sp_metric.value(lr_model, test_ctx, theta_new) - est.original_bias
        assert est.bias_change(idx) == pytest.approx(expected)


class TestSecondOrder:
    def test_invalid_variant(self, lr_model, X_train, german_train, sp_metric, test_ctx):
        with pytest.raises(ValueError, match="variant"):
            SecondOrderInfluence(
                lr_model, X_train, german_train.labels, sp_metric, test_ctx, variant="x"
            )

    def test_exact_solves_reduced_newton_system(self, so_estimator):
        idx = np.arange(25)
        delta = so_estimator.param_change(idx)
        n, m = so_estimator.num_train, len(idx)
        h_s = so_estimator.model.hessian(
            so_estimator.X_train[idx], so_estimator.y_train[idx]
        )
        reduced = n * so_estimator.hessian - m * h_s
        np.testing.assert_allclose(reduced @ delta, so_estimator.subset_grad_sum(idx), atol=1e-6)

    def test_approaches_fo_for_tiny_subsets(self, so_estimator, fo_estimator):
        """For m = 1 the curvature correction is an O(H_z / nH) effect —
        small, though not zero (a single point's Hessian can be tens of
        times the average in some directions)."""
        idx = np.array([7])
        so = so_estimator.param_change(idx)
        fo = fo_estimator.param_change(idx)
        assert np.linalg.norm(so - fo) / np.linalg.norm(fo) < 0.15

    def test_smooth_default_evaluation(self, so_estimator):
        assert so_estimator.evaluation == "smooth"


class TestOneStepGD:
    def test_param_change_formula(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = OneStepGradientDescent(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx, learning_rate=0.5
        )
        idx = np.arange(15)
        expected = 0.5 / est.num_train * est.subset_grad_sum(idx)
        np.testing.assert_allclose(est.param_change(idx), expected)

    def test_auto_learning_rate_is_inverse_top_eigenvalue(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = OneStepGradientDescent(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx
        )
        hessian = lr_model.hessian(X_train, german_train.labels)
        assert est.learning_rate == pytest.approx(1.0 / np.linalg.eigvalsh(hessian).max())

    def test_invalid_learning_rate(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        with pytest.raises(ValueError, match="positive"):
            OneStepGradientDescent(
                lr_model, X_train, german_train.labels, sp_metric, test_ctx, learning_rate=-1
            )

    def test_hard_default_evaluation(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = OneStepGradientDescent(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx
        )
        assert est.evaluation == "hard"


class TestRetrain:
    def test_param_change_is_actual_refit(self, retrain_estimator, X_train, german_train):
        idx = np.arange(20)
        theta_new = retrain_estimator.retrained_theta(idx)
        keep = np.setdiff1d(np.arange(len(X_train)), idx)
        clone = retrain_estimator.model.clone()
        clone.fit(X_train[keep], german_train.labels[keep])
        grad_norm = np.linalg.norm(clone.grad(X_train[keep], german_train.labels[keep], theta_new))
        assert grad_norm < 1e-5  # refit parameters are stationary on reduced data

    def test_rejects_linear_evaluation(
        self, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        with pytest.raises(ValueError, match="exact parameters"):
            RetrainInfluence(
                lr_model, X_train, german_train.labels, sp_metric, test_ctx,
                evaluation="linear",
            )

    def test_degenerate_removal_rejected(self, retrain_estimator, german_train):
        """Removing every negative example leaves one class -> degenerate."""
        idx = np.flatnonzero(german_train.labels == 0)
        with pytest.raises(ValueError, match="single class"):
            retrain_estimator.retrained_theta(idx)

    def test_cold_start_agrees_with_warm(
        self, lr_model, X_train, german_train, sp_metric, test_ctx, retrain_estimator
    ):
        cold = RetrainInfluence(
            lr_model, X_train, german_train.labels, sp_metric, test_ctx, warm_start=False
        )
        idx = np.arange(25)
        np.testing.assert_allclose(
            cold.retrained_theta(idx), retrain_estimator.retrained_theta(idx), atol=1e-4
        )
