"""Seeded fuzz for the Woodbury-batched exact path.

Random tables × random mask batches: whatever the draw, the batched exact
query must agree with the per-subset dense loop to 1e-8, and a genuinely
rank-deficient reduced matrix must be *detected* — routed through the
dense fallback (which reproduces the scalar damping escalation) — rather
than silently solved through a singular capacitance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LinearSVM, LogisticRegression

NUM_TABLES = 40
ATOL = 1e-8


def _random_problem(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(50, 140))
    d = int(rng.integers(2, 6))
    X = rng.normal(size=(n, d))
    protected = rng.random(n) < 0.5
    logits = X @ rng.normal(size=d) - 0.5 * protected
    y = (logits + rng.normal(scale=0.7, size=n) > 0).astype(np.int64)
    n_test = max(20, n // 4)
    X_test = rng.normal(size=(n_test, d))
    y_test = (X_test @ rng.normal(size=d) > 0).astype(np.int64)
    ctx = FairnessContext(
        X=X_test, y=y_test, privileged=rng.random(n_test) < 0.5, favorable_label=1
    )
    if seed % 2:
        model = LinearSVM(l2_reg=float(rng.choice([1e-3, 1e-2])))
    else:
        model = LogisticRegression(l2_reg=float(rng.choice([1e-3, 1e-2])))
    model.fit(X, y)
    damping = float(rng.choice([0.0, 1e-3]))
    return make_estimator(
        "exact", model, X, y, get_metric("statistical_parity"), ctx,
        evaluation="smooth", damping=damping,
    ), rng


def _random_batch(rng: np.random.Generator, n: int, p: int) -> list[np.ndarray]:
    """Half the subsets drawn below the |S| >= p crossover (Woodbury), half
    anywhere in [0, n) (mostly the dense fallback for these tiny models)."""
    subsets = []
    for k in range(int(rng.integers(6, 11))):
        hi = min(p, n - 1) if k % 2 else n - 1
        size = int(rng.integers(0, hi))
        subsets.append(np.sort(rng.choice(n, size=size, replace=False)))
    return subsets


@pytest.mark.parametrize("seed", range(NUM_TABLES))
def test_fuzz_batch_matches_loop(seed):
    est, rng = _random_problem(seed)
    subsets = _random_batch(rng, est.num_train, est.model.num_params)
    loop = np.stack([est.param_change(s) for s in subsets])
    batch = est.param_change_batch(subsets)
    np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)
    bias_loop = np.array([est.bias_change(s) for s in subsets])
    bias_batch = est.bias_change_batch(subsets)
    np.testing.assert_allclose(bias_batch, bias_loop, atol=ATOL, rtol=0.0)
    if seed % 5 == 0:  # spot-check the packed entry point on the same draw
        masks = np.zeros((len(subsets), est.num_train), dtype=bool)
        for j, idx in enumerate(subsets):
            masks[j, idx] = True
        packed = np.packbits(masks, axis=1)
        np.testing.assert_allclose(
            est.param_change_batch(packed, num_rows=est.num_train),
            batch,
            atol=1e-12,
            rtol=0.0,
        )


def test_fuzz_exercises_woodbury_path():
    """The fuzz is only meaningful if the fast path actually runs."""
    est, _ = _random_problem(0)
    below_crossover = [np.arange(size) for size in range(1, est.model.num_params)]
    est.param_change_batch(below_crossover)
    assert est.exact_batch_stats["woodbury"] == len(below_crossover)


def test_rank_deficient_subset_triggers_conditioning_fallback():
    """An unregularized model whose complement rows are rank deficient makes
    ``n·H − m·H_S`` exactly singular: the capacitance detector must fire and
    the batch must still match the scalar loop (which escalates damping),
    not return a silently garbage Woodbury solve."""
    rng = np.random.default_rng(7)
    base = rng.normal(size=(3, 3))
    X = np.vstack([base, np.tile(rng.normal(size=3), (27, 1))])
    y = np.concatenate([[1, 0, 1], np.tile([1, 1, 0], 9)])
    model = LogisticRegression(l2_reg=0.0).fit(X, y)
    ctx = FairnessContext(
        X=rng.normal(size=(20, 3)),
        y=(rng.random(20) > 0.5).astype(np.int64),
        privileged=rng.random(20) < 0.5,
        favorable_label=1,
    )
    est = make_estimator(
        "exact", model, X, y, get_metric("statistical_parity"), ctx,
        evaluation="smooth", damping=0.0,
    )
    # Removing the three distinct rows leaves only 27 copies of one point:
    # rank-1 complement, p = 4, |S| = 3 < p, ridge = damping = 0.
    singular_subset = np.arange(3)
    healthy_subset = np.arange(3, 10)
    batch = est.param_change_batch([singular_subset, healthy_subset])
    assert est.exact_batch_stats["fallback_cond"] >= 1
    loop = np.stack([est.param_change(s) for s in (singular_subset, healthy_subset)])
    np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)
    assert np.isfinite(batch).all()
