"""Tests for the estimator interface, factory, and shared plumbing."""

import numpy as np
import pytest

from repro.influence import make_estimator
from repro.influence.estimators import InfluenceEstimator
from repro.models import LogisticRegression


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["first_order", "second_order", "one_step_gd", "retrain"]
    )
    def test_builds_each_estimator(
        self, name, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = make_estimator(name, lr_model, X_train, german_train.labels, sp_metric, test_ctx)
        assert isinstance(est, InfluenceEstimator)

    def test_unknown_name(self, lr_model, X_train, german_train, sp_metric, test_ctx):
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("nope", lr_model, X_train, german_train.labels, sp_metric, test_ctx)

    def test_unfitted_model_rejected(self, X_train, german_train, sp_metric, test_ctx):
        with pytest.raises(ValueError, match="fitted"):
            make_estimator(
                "first_order",
                LogisticRegression(),
                X_train,
                german_train.labels,
                sp_metric,
                test_ctx,
            )

    def test_invalid_evaluation_mode(self, lr_model, X_train, german_train, sp_metric, test_ctx):
        with pytest.raises(ValueError, match="evaluation"):
            make_estimator(
                "first_order",
                lr_model,
                X_train,
                german_train.labels,
                sp_metric,
                test_ctx,
                evaluation="bogus",
            )


class TestSharedPlumbing:
    def test_original_bias_matches_metric(self, fo_estimator, lr_model, sp_metric, test_ctx):
        assert fo_estimator.original_bias == pytest.approx(sp_metric.value(lr_model, test_ctx))

    def test_boolean_mask_equivalent_to_indices(self, fo_estimator):
        mask = np.zeros(fo_estimator.num_train, dtype=bool)
        mask[[3, 10, 42]] = True
        assert fo_estimator.bias_change(mask) == pytest.approx(
            fo_estimator.bias_change(np.array([3, 10, 42]))
        )

    def test_out_of_range_indices(self, fo_estimator):
        with pytest.raises(IndexError):
            fo_estimator.bias_change(np.array([fo_estimator.num_train + 5]))

    def test_wrong_mask_length(self, fo_estimator):
        with pytest.raises(ValueError, match="mask length"):
            fo_estimator.bias_change(np.zeros(3, dtype=bool))

    def test_cannot_remove_everything(self, fo_estimator):
        with pytest.raises(ValueError, match="entire"):
            fo_estimator.bias_change(np.arange(fo_estimator.num_train))

    def test_subset_grad_sum_matches_manual(self, fo_estimator):
        idx = np.array([0, 5, 9])
        manual = fo_estimator.per_sample_grads[idx].sum(axis=0)
        np.testing.assert_allclose(fo_estimator.subset_grad_sum(idx), manual)

    def test_responsibility_sign_convention(self, fo_estimator):
        """A subset whose removal reduces bias has positive responsibility."""
        infl = fo_estimator.point_influences()
        helping = np.argsort(infl)[:30]  # most bias-reducing points
        assert fo_estimator.responsibility(helping) > 0

    def test_grad_f_cached(self, fo_estimator):
        assert fo_estimator.grad_f is fo_estimator.grad_f

    def test_per_sample_grads_cached(self, fo_estimator):
        assert fo_estimator.per_sample_grads is fo_estimator.per_sample_grads
