"""ModelArtifacts: shared metric-independent caches across estimators."""

import numpy as np
import pytest

from repro.fairness import get_metric
from repro.influence import ModelArtifacts, make_estimator
from repro.influence.hessian import HessianSolver


@pytest.fixture()
def artifacts(lr_model, X_train, german_train):
    return ModelArtifacts(lr_model, X_train, german_train.labels)


class TestSharing:
    def test_estimators_share_solver_and_grads(
        self, artifacts, lr_model, X_train, german_train, test_ctx
    ):
        sp = make_estimator(
            "second_order", lr_model, X_train, german_train.labels,
            get_metric("statistical_parity"), test_ctx, artifacts=artifacts,
        )
        eo = make_estimator(
            "second_order", lr_model, X_train, german_train.labels,
            get_metric("equal_opportunity"), test_ctx, artifacts=artifacts,
        )
        fo = make_estimator(
            "first_order", lr_model, X_train, german_train.labels,
            get_metric("statistical_parity"), test_ctx, artifacts=artifacts,
        )
        assert sp.solver is eo.solver
        assert sp.solver is fo.solver  # same damping key -> same factorization
        assert sp.per_sample_grads is eo.per_sample_grads
        assert artifacts.stats["hessian_factorizations"] == 1
        assert artifacts.stats["per_sample_grad_builds"] == 1
        assert artifacts.stats["hessian_builds"] == 1

    def test_damping_keys_distinct_solvers(self, artifacts):
        a = artifacts.solver(0.0)
        b = artifacts.solver(1e-3)
        assert a is not b
        assert artifacts.solver(0.0) is a
        assert artifacts.stats["hessian_factorizations"] == 2

    def test_results_identical_to_private_bundle(
        self, artifacts, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        shared = make_estimator(
            "second_order", lr_model, X_train, german_train.labels,
            sp_metric, test_ctx, artifacts=artifacts,
        )
        private = make_estimator(
            "second_order", lr_model, X_train, german_train.labels,
            sp_metric, test_ctx,
        )
        rng = np.random.default_rng(3)
        subsets = [
            np.sort(rng.choice(len(X_train), size=size, replace=False))
            for size in (5, 20, 60)
        ]
        np.testing.assert_allclose(
            shared.bias_change_batch(subsets),
            private.bias_change_batch(subsets),
            atol=1e-12,
        )

    def test_exact_rotation_cached_per_damping(self, artifacts):
        first = artifacts.exact_rotation(0.0)
        second = artifacts.exact_rotation(0.0)
        assert first[0] is second[0] and first[1] is second[1]
        assert artifacts.stats["exact_rotation_builds"] == 1

    def test_auto_learning_rate_matches_helper(self, artifacts):
        from repro.influence import auto_learning_rate

        assert artifacts.auto_learning_rate() == pytest.approx(
            auto_learning_rate(artifacts.hessian)
        )

    def test_solver_is_hessian_solver_over_training_hessian(self, artifacts, lr_model):
        solver = artifacts.solver(0.0)
        assert isinstance(solver, HessianSolver)
        np.testing.assert_allclose(
            solver.hessian,
            lr_model.hessian(artifacts.X_train, artifacts.y_train),
        )


class TestCompatibility:
    def test_unfitted_model_rejected(self, lr_model, X_train, german_train):
        clone = lr_model.clone()
        with pytest.raises(ValueError, match="fitted"):
            ModelArtifacts(clone, X_train, german_train.labels)

    def test_different_model_instance_rejected(
        self, artifacts, X_train, german_train, sp_metric, test_ctx
    ):
        other = artifacts.model.clone().fit(X_train, german_train.labels)
        with pytest.raises(ValueError, match="different model"):
            make_estimator(
                "first_order", other, X_train, german_train.labels,
                sp_metric, test_ctx, artifacts=artifacts,
            )

    def test_different_training_matrix_rejected(
        self, artifacts, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        X_other = X_train.copy()
        X_other[0, 0] += 1.0
        with pytest.raises(ValueError, match="different matrix|shape"):
            make_estimator(
                "first_order", lr_model, X_other, german_train.labels,
                sp_metric, test_ctx, artifacts=artifacts,
            )

    def test_refit_model_detected(self, X_train, german_train, sp_metric, test_ctx):
        from repro.models import LogisticRegression

        model = LogisticRegression(l2_reg=1e-3).fit(X_train, german_train.labels)
        artifacts = ModelArtifacts(model, X_train, german_train.labels)
        model.fit(X_train[:400], german_train.labels[:400])  # refit -> new theta
        with pytest.raises(ValueError, match="parameters changed"):
            make_estimator(
                "first_order", model, X_train[:400], german_train.labels[:400],
                sp_metric, test_ctx, artifacts=artifacts,
            )
