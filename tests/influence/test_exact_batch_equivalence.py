"""Cross-estimator equivalence for the Woodbury-batched ``exact`` variant.

The acceptance contract of the batched exact second-order path: for every
built-in model × fairness metric × damping ∈ {0, 1e-3}, the Woodbury/
capacitance batch must reproduce the per-subset dense-refactorization loop
to 1e-8 — including the edge batches (empty subset, singletons, a subset
duplicated within the batch, near-full subsets) and batches that straddle
the ``|S| ≥ p`` crossover where individual subsets route to the dense
fallback mid-batch — for both dense boolean-mask and packed uint8 inputs.
Any drift between the downdate algebra and the scalar Newton step fails
here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness import FairnessContext, get_metric, list_metrics
from repro.influence import make_estimator
from repro.models import LinearSVM, LogisticRegression, NeuralNetwork

ATOL = 1e-8

MODEL_BUILDERS = {
    "logistic_regression": lambda: LogisticRegression(l2_reg=1e-3),
    "linear_svm": lambda: LinearSVM(l2_reg=1e-2),
    "neural_network": lambda: NeuralNetwork(hidden_units=3, l2_reg=1e-3, seed=0, max_iter=150),
}
DAMPINGS = [0.0, 1e-3]


@pytest.fixture(scope="module")
def exact_data():
    """Small synthetic problem with a protected attribute and clear signal.

    Sized so that the crossover |S| >= p is reachable by modest subsets for
    every model (p = 6 for the linear models, 22 for the 3-unit network).
    """
    rng = np.random.default_rng(42)
    n = 210
    X = rng.normal(size=(n, 5))
    protected = rng.random(n) < 0.45
    X[:, 0] += 0.8 * protected
    logits = 1.3 * X[:, 0] - 0.9 * X[:, 1] + 0.5 * X[:, 2] - 0.6 * protected
    y = (logits + rng.normal(scale=0.8, size=n) > 0).astype(np.int64)
    train, test = np.arange(150), np.arange(150, n)
    ctx = FairnessContext(
        X=X[test], y=y[test], privileged=~protected[test], favorable_label=1
    )
    return X[train], y[train], ctx


@pytest.fixture(scope="module")
def fitted_models(exact_data):
    X_train, y_train, _ = exact_data
    return {name: build().fit(X_train, y_train) for name, build in MODEL_BUILDERS.items()}


@pytest.fixture(scope="module")
def get_exact(exact_data, fitted_models):
    """Cached factory over (model, metric, damping) exact estimators."""
    X_train, y_train, ctx = exact_data
    cache: dict[tuple, object] = {}

    def build(model_name: str, metric_name: str, damping: float):
        key = (model_name, metric_name, damping)
        if key not in cache:
            cache[key] = make_estimator(
                "exact",
                fitted_models[model_name],
                X_train,
                y_train,
                get_metric(metric_name),
                ctx,
                evaluation="smooth",
                damping=damping,
            )
        return cache[key]

    return build


def edge_subsets(num_train: int, p: int) -> list[np.ndarray]:
    """Empty / singleton / duplicated / near-full / crossover-straddling."""
    rng = np.random.default_rng(3)
    pick = lambda size: np.sort(rng.choice(num_train, size=size, replace=False))
    duplicated = pick(7)
    subsets = [
        np.array([], dtype=np.int64),  # empty
        np.array([int(rng.integers(num_train))]),  # singleton
        duplicated,
        duplicated.copy(),  # the same subset twice in one batch
        np.arange(num_train - 1),  # near-full (always past the crossover)
        pick(min(max(p - 1, 1), num_train - 2)),  # just below |S| >= p
        pick(min(p, num_train - 2)),  # exactly at the crossover
        pick(min(p + 3, num_train - 2)),  # just above
    ]
    subsets += [pick(int(s)) for s in rng.integers(2, num_train // 3, size=6)]
    return subsets


def _mask_matrix(subsets, n):
    masks = np.zeros((len(subsets), n), dtype=bool)
    for j, idx in enumerate(subsets):
        masks[j, idx] = True
    return masks


@pytest.mark.parametrize("model_name", sorted(MODEL_BUILDERS))
@pytest.mark.parametrize("metric_name", list_metrics())
@pytest.mark.parametrize("damping", DAMPINGS, ids=["d0", "d1e-3"])
class TestWoodburyMatchesDenseLoop:
    def test_param_change(self, model_name, metric_name, damping, get_exact):
        est = get_exact(model_name, metric_name, damping)
        subsets = edge_subsets(est.num_train, est.model.num_params)
        loop = np.stack([est.param_change(s) for s in subsets])
        batch = est.param_change_batch(subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)

    def test_bias_change(self, model_name, metric_name, damping, get_exact):
        est = get_exact(model_name, metric_name, damping)
        subsets = edge_subsets(est.num_train, est.model.num_params)
        loop = np.array([est.bias_change(s) for s in subsets])
        batch = est.bias_change_batch(subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)

    def test_packed_input_matches_dense(self, model_name, metric_name, damping, get_exact):
        est = get_exact(model_name, metric_name, damping)
        subsets = edge_subsets(est.num_train, est.model.num_params)
        masks = _mask_matrix(subsets, est.num_train)
        packed = np.packbits(masks, axis=1)
        np.testing.assert_allclose(
            est.bias_change_batch(packed, num_rows=est.num_train),
            est.bias_change_batch(masks),
            atol=1e-12,
            rtol=0.0,
        )
        np.testing.assert_allclose(
            est.param_change_batch(packed, num_rows=est.num_train),
            est.param_change_batch(masks),
            atol=1e-12,
            rtol=0.0,
        )


class TestRoutingAccounting:
    def test_straddling_batch_splits_between_paths(self, get_exact):
        est = get_exact("logistic_regression", "statistical_parity", 0.0)
        p = est.model.num_params
        before = dict(est.exact_batch_stats)
        subsets = [np.arange(3), np.arange(p - 1), np.arange(p), np.arange(p + 10)]
        est.param_change_batch(subsets)
        assert est.exact_batch_stats["woodbury"] >= before["woodbury"] + 2
        assert est.exact_batch_stats["fallback_size"] >= before["fallback_size"] + 2

    def test_fd_hessian_routes_whole_batch_to_loop(self, exact_data):
        X_train, y_train, ctx = exact_data
        model = NeuralNetwork(
            hidden_units=2, l2_reg=1e-3, seed=0, max_iter=60, hessian_mode="exact_fd"
        ).fit(X_train, y_train)
        est = make_estimator(
            "exact", model, X_train, y_train,
            get_metric("statistical_parity"), ctx, evaluation="smooth",
        )
        subsets = [np.arange(4), np.arange(9)]
        loop = np.stack([est.param_change(s) for s in subsets])
        batch = est.param_change_batch(subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)
        assert est.exact_batch_stats["fallback_factors"] == len(subsets)
        assert est.exact_batch_stats["woodbury"] == 0


class TestExactAlias:
    def test_exact_alias_builds_exact_variant(self, get_exact):
        est = get_exact("logistic_regression", "statistical_parity", 0.0)
        assert type(est).__name__ == "SecondOrderInfluence"
        assert est.variant == "exact"

    def test_series_alias(self, exact_data, fitted_models):
        X_train, y_train, ctx = exact_data
        est = make_estimator(
            "series", fitted_models["logistic_regression"], X_train, y_train,
            get_metric("statistical_parity"), ctx,
        )
        assert est.variant == "series"

    def test_conflicting_variant_rejected(self, exact_data, fitted_models):
        X_train, y_train, ctx = exact_data
        with pytest.raises(ValueError, match="fixes variant"):
            make_estimator(
                "exact", fitted_models["logistic_regression"], X_train, y_train,
                get_metric("statistical_parity"), ctx, variant="series",
            )
