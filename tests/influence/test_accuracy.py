"""Accuracy of the influence approximations against retraining ground truth.

These tests pin down the *qualitative* claims of the paper's Figure 3:
second-order group influence tracks ground truth better than first-order,
which in turn beats one-step gradient descent; and all approximations agree
with ground truth in sign/scale for moderate subsets.
"""

import numpy as np
import pytest

from repro.influence import make_estimator


@pytest.fixture(scope="module")
def estimators(lr_model, X_train, german_train, sp_metric, test_ctx):
    build = lambda name, **kw: make_estimator(
        name, lr_model, X_train, german_train.labels, sp_metric, test_ctx, **kw
    )
    return {
        "fo": build("first_order", evaluation="hard"),
        "so": build("second_order", evaluation="hard"),
        "so_series": build("second_order", evaluation="hard", variant="series"),
        "gd": build("one_step_gd"),
        "rt": build("retrain"),
    }


@pytest.fixture(scope="module")
def random_subsets(X_train):
    rng = np.random.default_rng(4)
    return [
        rng.choice(len(X_train), size=size, replace=False)
        for size in (25, 60, 120, 200, 60, 120)
    ]


class TestParameterChangeAccuracy:
    def test_so_beats_fo_on_params(self, estimators, random_subsets):
        fo_err, so_err = [], []
        for idx in random_subsets:
            gt = estimators["rt"].param_change(idx)
            fo_err.append(np.linalg.norm(estimators["fo"].param_change(idx) - gt))
            so_err.append(np.linalg.norm(estimators["so"].param_change(idx) - gt))
        assert np.mean(so_err) < np.mean(fo_err)

    def test_so_param_change_close_to_ground_truth(self, estimators, random_subsets):
        for idx in random_subsets[:3]:
            gt = estimators["rt"].param_change(idx)
            so = estimators["so"].param_change(idx)
            rel = np.linalg.norm(so - gt) / max(np.linalg.norm(gt), 1e-12)
            assert rel < 0.35

    def test_series_variant_close_to_exact(self, estimators, random_subsets):
        for idx in random_subsets[:3]:
            exact = estimators["so"].param_change(idx)
            series = estimators["so_series"].param_change(idx)
            rel = np.linalg.norm(series - exact) / max(np.linalg.norm(exact), 1e-12)
            assert rel < 0.25

    def test_fo_direction_correlates_with_ground_truth(self, estimators, random_subsets):
        for idx in random_subsets[:3]:
            gt = estimators["rt"].param_change(idx)
            fo = estimators["fo"].param_change(idx)
            cos = fo @ gt / (np.linalg.norm(fo) * np.linalg.norm(gt))
            assert cos > 0.7

    def test_gd_underestimates_magnitude(self, estimators, random_subsets):
        """One gradient step cannot cover the full Newton-like move."""
        shorter = 0
        for idx in random_subsets:
            gt = np.linalg.norm(estimators["rt"].param_change(idx))
            gd = np.linalg.norm(estimators["gd"].param_change(idx))
            shorter += gd < gt
        assert shorter >= len(random_subsets) - 1


class TestBiasChangeAccuracy:
    def test_figure3_error_ordering(self, estimators, random_subsets):
        """The headline of Figure 3: SO < FO and SO < one-step GD on average."""
        errors = {k: [] for k in ("fo", "so", "gd")}
        for idx in random_subsets:
            gt = estimators["rt"].bias_change(idx)
            for key in errors:
                errors[key].append(abs(estimators[key].bias_change(idx) - gt))
        assert np.mean(errors["so"]) < np.mean(errors["fo"])
        assert np.mean(errors["so"]) < np.mean(errors["gd"])

    def test_so_error_small_in_absolute_terms(self, estimators, random_subsets):
        errs = [
            abs(estimators["so"].bias_change(idx) - estimators["rt"].bias_change(idx))
            for idx in random_subsets
        ]
        assert np.mean(errs) < 0.02  # the paper's Figure 3 y-axis scale

    def test_single_point_removal_tiny_effect(self, estimators):
        change = estimators["so"].bias_change(np.array([0]))
        assert abs(change) < 0.02

    def test_retrain_is_self_consistent(self, estimators, X_train):
        """Retraining twice on the same subset gives identical answers."""
        idx = np.arange(30)
        assert estimators["rt"].bias_change(idx) == pytest.approx(
            estimators["rt"].bias_change(idx)
        )


class TestCoherentSubsets:
    def test_planted_bias_subset_reduces_bias(self, estimators, german_train):
        """Removing the planted old-female subgroup must reduce bias under
        ground truth *and* both influence approximations."""
        age = np.asarray(german_train.table.column("age").values)
        gender = np.asarray(german_train.table.column("gender").values, dtype=object)
        idx = np.flatnonzero((age >= 45) & (gender == "Female"))
        assert estimators["rt"].bias_change(idx) < 0
        assert estimators["fo"].bias_change(idx) < 0
        assert estimators["so"].bias_change(idx) < 0

    def test_helping_vs_hurting_subsets_ordered(self, estimators, fo_estimator):
        """Ground truth must rank a bias-reducing subset below (more
        negative ΔF than) a bias-increasing one identified by FO influence."""
        infl = fo_estimator.point_influences()
        helping = np.argsort(infl)[:40]   # removal reduces bias most
        hurting = np.argsort(infl)[-40:]  # removal increases bias most
        assert estimators["rt"].bias_change(helping) < estimators["rt"].bias_change(hurting)
