"""Tests for repro.influence.hessian."""

import numpy as np
import pytest

from repro.influence.hessian import HessianSolver, conjugate_gradient_solve


@pytest.fixture
def spd_matrix():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(8, 8))
    return A @ A.T + 0.5 * np.eye(8)


class TestHessianSolver:
    def test_solves_exactly(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        b = np.arange(8.0)
        x = solver.solve(b)
        np.testing.assert_allclose(spd_matrix @ x, b, atol=1e-8)

    def test_solve_stacked_vectors(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        B = np.random.default_rng(1).normal(size=(8, 3))
        X = solver.solve(B)
        np.testing.assert_allclose(spd_matrix @ X, B, atol=1e-8)

    def test_no_damping_when_pd(self, spd_matrix):
        assert HessianSolver(spd_matrix).damping_used == 0.0

    def test_damping_applied_to_singular(self):
        singular = np.zeros((4, 4))
        solver = HessianSolver(singular)
        assert solver.damping_used > 0
        x = solver.solve(np.ones(4))
        assert np.isfinite(x).all()

    def test_apply_is_inverse_of_solve(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        b = np.random.default_rng(2).normal(size=8)
        np.testing.assert_allclose(solver.apply(solver.solve(b)), b, atol=1e-8)

    def test_apply_includes_damping(self):
        solver = HessianSolver(np.zeros((3, 3)))
        x = np.ones(3)
        np.testing.assert_allclose(solver.apply(solver.solve(x)), x, atol=1e-8)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            HessianSolver(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        M = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            HessianSolver(M)


class TestConjugateGradient:
    def test_matches_direct_solve(self, spd_matrix):
        b = np.arange(8.0)
        direct = np.linalg.solve(spd_matrix, b)
        cg = conjugate_gradient_solve(lambda v: spd_matrix @ v, b, dim=8)
        np.testing.assert_allclose(cg, direct, atol=1e-6)

    def test_nonconvergence_raises(self, spd_matrix):
        with pytest.raises(RuntimeError, match="converge"):
            conjugate_gradient_solve(
                lambda v: spd_matrix @ v, np.ones(8), dim=8, tol=1e-14, max_iter=1
            )
