"""Tests for repro.influence.hessian."""

import numpy as np
import pytest

from repro.influence.hessian import HessianSolver, conjugate_gradient_solve


@pytest.fixture
def spd_matrix():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(8, 8))
    return A @ A.T + 0.5 * np.eye(8)


class TestHessianSolver:
    def test_solves_exactly(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        b = np.arange(8.0)
        x = solver.solve(b)
        np.testing.assert_allclose(spd_matrix @ x, b, atol=1e-8)

    def test_solve_stacked_vectors(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        B = np.random.default_rng(1).normal(size=(8, 3))
        X = solver.solve(B)
        np.testing.assert_allclose(spd_matrix @ X, B, atol=1e-8)

    def test_no_damping_when_pd(self, spd_matrix):
        assert HessianSolver(spd_matrix).damping_used == 0.0

    def test_damping_applied_to_singular(self):
        singular = np.zeros((4, 4))
        solver = HessianSolver(singular)
        assert solver.damping_used > 0
        x = solver.solve(np.ones(4))
        assert np.isfinite(x).all()

    def test_apply_is_inverse_of_solve(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        b = np.random.default_rng(2).normal(size=8)
        np.testing.assert_allclose(solver.apply(solver.solve(b)), b, atol=1e-8)

    def test_apply_includes_damping(self):
        solver = HessianSolver(np.zeros((3, 3)))
        x = np.ones(3)
        np.testing.assert_allclose(solver.apply(solver.solve(x)), x, atol=1e-8)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            HessianSolver(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        M = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            HessianSolver(M)

    def test_factor_exposed_for_external_solves(self, spd_matrix):
        from scipy import linalg

        solver = HessianSolver(spd_matrix)
        b = np.arange(8.0)
        np.testing.assert_allclose(
            linalg.cho_solve(solver.factor, b), solver.solve(b), atol=1e-12
        )


class TestEigendecomposition:
    def test_reconstructs_damped_matrix(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        eigvals, eigvecs = solver.eigendecomposition()
        np.testing.assert_allclose(
            (eigvecs * eigvals) @ eigvecs.T, spd_matrix, atol=1e-8
        )

    def test_cached(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        assert solver.eigendecomposition()[1] is solver.eigendecomposition()[1]

    def test_covers_escalated_damping(self):
        solver = HessianSolver(np.zeros((4, 4)))
        eigvals, _ = solver.eigendecomposition()
        # The decomposition is of the *damped* matrix, consistent with solve().
        np.testing.assert_allclose(eigvals, solver.damping_used, atol=1e-15)


class TestShiftedSolveMany:
    def test_zero_shift_matches_solve(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        B = np.random.default_rng(3).normal(size=(5, 8))
        np.testing.assert_allclose(
            solver.shifted_solve_many(B, np.zeros(5)), solver.solve_many(B), atol=1e-10
        )

    def test_per_row_shifts(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        B = np.random.default_rng(4).normal(size=(3, 8))
        shifts = np.array([0.1, 1.0, 7.5])
        out = solver.shifted_solve_many(B, shifts)
        for row, shift, x in zip(B, shifts, out):
            expected = np.linalg.solve(spd_matrix + shift * np.eye(8), row)
            np.testing.assert_allclose(x, expected, atol=1e-10)

    def test_scalar_shift_broadcasts(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        B = np.random.default_rng(5).normal(size=(4, 8))
        np.testing.assert_allclose(
            solver.shifted_solve_many(B, 0.5),
            solver.shifted_solve_many(B, np.full(4, 0.5)),
            atol=1e-14,
        )

    def test_empty_batch(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        assert solver.shifted_solve_many(np.zeros((0, 8)), np.zeros(0)).shape == (0, 8)

    def test_nonpositive_shifted_spectrum_raises(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        eigvals, _ = solver.eigendecomposition()
        with pytest.raises(np.linalg.LinAlgError, match="not positive definite"):
            solver.shifted_solve_many(np.ones((1, 8)), -(eigvals[0] + 1e-9))

    def test_rejects_wrong_width(self, spd_matrix):
        solver = HessianSolver(spd_matrix)
        with pytest.raises(ValueError, match="shape"):
            solver.shifted_solve_many(np.ones((2, 7)), np.zeros(2))


class TestConjugateGradient:
    def test_matches_direct_solve(self, spd_matrix):
        b = np.arange(8.0)
        direct = np.linalg.solve(spd_matrix, b)
        cg = conjugate_gradient_solve(lambda v: spd_matrix @ v, b, dim=8)
        np.testing.assert_allclose(cg, direct, atol=1e-6)

    def test_nonconvergence_raises(self, spd_matrix):
        with pytest.raises(RuntimeError, match="converge"):
            conjugate_gradient_solve(
                lambda v: spd_matrix @ v, np.ones(8), dim=8, tol=1e-14, max_iter=1
            )
