"""ModelArtifacts.apply_edit: patched caches equal a from-scratch rebuild.

The edit path never refactorizes or rebuilds — it patches the training
matrix, the per-sample gradient matrix, the mean Hessian (subset-Hessian
identity), every cached solver (rank-k eigenbasis update), and the
exact-rotation row caches.  Each patched cache is pinned against a
``ModelArtifacts`` built from scratch on the edited data, and the stats
counters prove nothing heavy ran.  Version stamping: estimators built
before an edit must refuse to score afterwards.
"""

import numpy as np
import pytest

from repro.influence import make_estimator
from repro.influence.artifacts import ModelArtifacts

DAMPING = 1e-3


def edited_arrays(X, y, remove=(), relabel=(), relabels=(), X_add=None, y_add=None):
    """Reference edit semantics: relabel → remove → append."""
    y2 = np.asarray(y).copy()
    if len(relabel):
        y2[list(relabel)] = relabels
    keep = np.ones(len(X), dtype=bool)
    if len(remove):
        keep[list(remove)] = False
    X2, y2 = X[keep], y2[keep]
    if X_add is not None:
        X2 = np.concatenate([X2, X_add])
        y2 = np.concatenate([y2, y_add])
    return X2, y2


@pytest.fixture()
def artifacts(lr_model, X_train, german_train):
    return ModelArtifacts(lr_model, X_train, german_train.labels)


class TestPatchedCachesMatchRebuild:
    @pytest.mark.parametrize(
        "kind", ["remove", "relabel", "add", "mixed"], ids=str
    )
    def test_all_caches(self, artifacts, lr_model, X_train, german_train, kind):
        y = german_train.labels
        rng = np.random.default_rng(0)
        remove, relabel, relabels, X_add, y_add = (), (), (), None, None
        if kind in ("remove", "mixed"):
            remove = rng.choice(len(X_train), size=9, replace=False)
        if kind in ("relabel", "mixed"):
            pool = np.setdiff1d(np.arange(len(X_train)), remove)
            relabel = rng.choice(pool, size=7, replace=False)
            relabels = 1 - y[relabel]
        if kind in ("add", "mixed"):
            picks = rng.integers(0, len(X_train), size=5)
            X_add, y_add = X_train[picks], y[picks]

        # Build every cache *before* the edit so each is patched, not lazily
        # rebuilt against the edited data.
        _ = artifacts.per_sample_grads
        _ = artifacts.hessian
        solver = artifacts.solver(DAMPING)
        artifacts.exact_rotation(DAMPING)
        artifacts.apply_edit(
            remove_indices=remove,
            relabel_indices=relabel,
            relabel_labels=relabels,
            X_add=X_add,
            y_add=y_add,
        )

        X2, y2 = edited_arrays(X_train, y, remove, relabel, relabels, X_add, y_add)
        fresh = ModelArtifacts(lr_model, X2, y2)
        np.testing.assert_array_equal(artifacts.X_train, X2)
        np.testing.assert_array_equal(artifacts.y_train, y2)
        assert artifacts.num_train == len(X2)
        np.testing.assert_allclose(
            artifacts.per_sample_grads, fresh.per_sample_grads, atol=1e-10
        )
        np.testing.assert_allclose(artifacts.hessian, fresh.hessian, atol=1e-10)
        b = rng.standard_normal(artifacts.hessian.shape[0])
        np.testing.assert_allclose(
            artifacts.solver(DAMPING).solve(b),
            fresh.solver(DAMPING).solve(b),
            atol=1e-8,
        )
        # The cached solver advanced through .updated() (a new object in the
        # updated eigenbasis) — hessian_factorizations pins that no Cholesky
        # ran; test_counters_prove_no_refactorization covers the accounting.
        assert artifacts.solver(DAMPING) is not solver
        rg, rc = artifacts.exact_rotation(DAMPING)
        rg_f, rc_f = fresh.exact_rotation(DAMPING)
        # The patched rotation lives in a different (updated, possibly
        # sign/order-permuted) eigenbasis, so compare the basis-independent
        # Gram and cross products the exact downdates consume.
        np.testing.assert_allclose(rg @ rg.T, rg_f @ rg_f.T, atol=1e-7)
        np.testing.assert_allclose(rc @ rc.T, rc_f @ rc_f.T, atol=1e-7)
        np.testing.assert_allclose(rg @ rc.T, rg_f @ rc_f.T, atol=1e-7)

    def test_counters_prove_no_refactorization(self, artifacts, X_train):
        _ = artifacts.per_sample_grads
        _ = artifacts.hessian
        artifacts.solver(DAMPING)
        before = dict(artifacts.stats)
        assert before["hessian_factorizations"] == 1
        artifacts.apply_edit(remove_indices=[3, 11, 42])
        after = artifacts.stats
        assert after["hessian_factorizations"] == 1
        assert after["per_sample_grad_builds"] == before["per_sample_grad_builds"]
        assert after["hessian_builds"] == before["hessian_builds"]
        assert after["edits"] == before["edits"] + 1
        assert after["solver_updates"] == before["solver_updates"] + 1

    def test_unbuilt_caches_stay_lazy(self, artifacts, lr_model, X_train, german_train):
        """An edit before any cache is built leaves the laziness intact."""
        artifacts.apply_edit(remove_indices=[0, 1])
        assert artifacts.stats["per_sample_grad_builds"] == 0
        X2, y2 = edited_arrays(X_train, german_train.labels, remove=[0, 1])
        fresh = ModelArtifacts(lr_model, X2, y2)
        np.testing.assert_allclose(
            artifacts.per_sample_grads, fresh.per_sample_grads, atol=1e-10
        )
        assert artifacts.stats["per_sample_grad_builds"] == 1


class TestEstimatorResultsAfterEdit:
    @pytest.mark.parametrize("name", ["first_order", "series", "exact"])
    def test_fresh_estimator_on_patched_artifacts_matches_rebuild(
        self, artifacts, lr_model, X_train, german_train, sp_metric, test_ctx, name
    ):
        _ = artifacts.per_sample_grads
        _ = artifacts.hessian
        artifacts.solver(DAMPING)
        remove = [5, 17, 200, 433]
        artifacts.apply_edit(remove_indices=remove)
        X2, y2 = edited_arrays(X_train, german_train.labels, remove=remove)
        patched_est = make_estimator(
            name, lr_model, artifacts.X_train, artifacts.y_train, sp_metric, test_ctx,
            artifacts=artifacts,
        )
        fresh_est = make_estimator(name, lr_model, X2, y2, sp_metric, test_ctx)
        subset = np.arange(0, len(X2), 7)
        assert patched_est.bias_change(subset) == pytest.approx(
            fresh_est.bias_change(subset), abs=1e-8
        )

    def test_stale_estimator_refuses(
        self, artifacts, lr_model, X_train, german_train, sp_metric, test_ctx
    ):
        est = make_estimator(
            "first_order", lr_model, X_train, german_train.labels, sp_metric, test_ctx,
            artifacts=artifacts,
        )
        est.bias_change(np.array([0, 1, 2]))  # fine before the edit
        artifacts.apply_edit(remove_indices=[0])
        with pytest.raises(RuntimeError, match="edited after this estimator"):
            est.bias_change(np.array([0, 1, 2]))


class TestEditValidation:
    def test_rejects_out_of_range(self, artifacts):
        with pytest.raises(IndexError):
            artifacts.apply_edit(remove_indices=[artifacts.num_train])

    def test_rejects_duplicates(self, artifacts):
        with pytest.raises(ValueError, match="duplicate"):
            artifacts.apply_edit(remove_indices=[1, 1])

    def test_rejects_remove_relabel_overlap(self, artifacts):
        with pytest.raises(ValueError, match="both"):
            artifacts.apply_edit(
                remove_indices=[4], relabel_indices=[4], relabel_labels=[0]
            )

    def test_rejects_empty_edit(self, artifacts):
        with pytest.raises(ValueError, match="at least one"):
            artifacts.apply_edit()

    def test_rejects_refit_model(self, lr_model, X_train, german_train):
        artifacts = ModelArtifacts(lr_model, X_train, german_train.labels)
        artifacts.theta = artifacts.theta + 1.0  # simulate a refit elsewhere
        with pytest.raises(ValueError, match="rebuild"):
            artifacts.apply_edit(remove_indices=[0])
