"""Estimator-equivalence suite: batched influence == the per-subset loop.

This is the safety net under the batched lattice search: for every
closed-form estimator × every evaluation mode, ``bias_change_batch`` /
``responsibility_batch`` / ``param_change_batch`` must reproduce the
corresponding per-subset queries to 1e-10 on random subsets of the seeded
synthetic data, including the edge batches (empty batch, single subset,
subset = all-but-one row).  Any vectorization rewrite that drifts from the
scalar semantics fails here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.influence import make_estimator
from repro.models import LinearSVM, NeuralNetwork

ATOL = 1e-10

# (estimator name, constructor kwargs) — every closed-form family, with both
# second-order variants: "series" takes the fully-batched GEMM path, "exact"
# the Woodbury/capacitance downdate path (its dedicated suite is
# test_exact_batch_equivalence.py; here it rides the shared contract).
ESTIMATOR_CONFIGS = [
    pytest.param(("first_order", {}), id="first_order"),
    pytest.param(("second_order", {"variant": "exact"}), id="second_order-exact"),
    pytest.param(("second_order", {"variant": "series"}), id="second_order-series"),
    pytest.param(("one_step_gd", {}), id="one_step_gd"),
]
EVALUATIONS = ["linear", "smooth", "hard"]


@pytest.fixture(scope="module")
def get_estimator(lr_model, X_train, german_train, sp_metric, test_ctx):
    """Cached factory over (name, kwargs, evaluation) combinations."""
    cache: dict[tuple, object] = {}

    def build(name: str, kwargs: dict, evaluation: str):
        key = (name, tuple(sorted(kwargs.items())), evaluation)
        if key not in cache:
            cache[key] = make_estimator(
                name,
                lr_model,
                X_train,
                german_train.labels,
                sp_metric,
                test_ctx,
                evaluation=evaluation,
                **kwargs,
            )
        return cache[key]

    return build


@pytest.fixture(scope="module")
def random_subsets(X_train):
    """Random subsets of the synthetic training data, varied in size."""
    rng = np.random.default_rng(7)
    n = len(X_train)
    subsets = [
        np.sort(rng.choice(n, size=int(size), replace=False))
        for size in rng.integers(1, max(2, n // 4), size=24)
    ]
    subsets.append(np.array([int(rng.integers(n))]))  # singleton subset
    subsets.append(np.arange(n - 1))  # all-but-one row
    return subsets


def _mask_matrix(subsets, n):
    masks = np.zeros((len(subsets), n), dtype=bool)
    for j, idx in enumerate(subsets):
        masks[j, idx] = True
    return masks


@pytest.mark.parametrize("config", ESTIMATOR_CONFIGS)
@pytest.mark.parametrize("evaluation", EVALUATIONS)
class TestBatchMatchesLoop:
    def test_bias_change(self, config, evaluation, get_estimator, random_subsets):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        loop = np.array([est.bias_change(s) for s in random_subsets])
        batch = est.bias_change_batch(random_subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)

    def test_responsibility(self, config, evaluation, get_estimator, random_subsets):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        loop = np.array([est.responsibility(s) for s in random_subsets])
        batch = est.responsibility_batch(random_subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)

    def test_param_change(self, config, evaluation, get_estimator, random_subsets):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        loop = np.stack([est.param_change(s) for s in random_subsets])
        batch = est.param_change_batch(random_subsets)
        np.testing.assert_allclose(batch, loop, atol=ATOL, rtol=0.0)

    def test_mask_matrix_input_equals_index_lists(
        self, config, evaluation, get_estimator, random_subsets
    ):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        masks = _mask_matrix(random_subsets, est.num_train)
        np.testing.assert_allclose(
            est.bias_change_batch(masks),
            est.bias_change_batch(random_subsets),
            atol=ATOL,
            rtol=0.0,
        )


@pytest.mark.parametrize("config", ESTIMATOR_CONFIGS)
@pytest.mark.parametrize("evaluation", EVALUATIONS)
class TestEdgeBatches:
    def test_empty_batch(self, config, evaluation, get_estimator):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        assert est.bias_change_batch([]).shape == (0,)
        assert est.responsibility_batch([]).shape == (0,)
        assert est.param_change_batch([]).shape == (0, est.model.num_params)

    def test_single_subset_batch(self, config, evaluation, get_estimator):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        subset = np.arange(5)
        batch = est.bias_change_batch([subset])
        assert batch.shape == (1,)
        assert batch[0] == pytest.approx(est.bias_change(subset), abs=ATOL)

    def test_all_but_one_row(self, config, evaluation, get_estimator):
        name, kwargs = config
        est = get_estimator(name, kwargs, evaluation)
        subset = np.arange(est.num_train - 1)
        batch = est.bias_change_batch([subset])
        assert batch[0] == pytest.approx(est.bias_change(subset), abs=ATOL)


class TestBatchValidation:
    def test_full_mask_row_rejected(self, fo_estimator):
        masks = np.zeros((2, fo_estimator.num_train), dtype=bool)
        masks[1] = True
        with pytest.raises(ValueError, match="entire training set"):
            fo_estimator.bias_change_batch(masks)

    def test_wrong_mask_width_rejected(self, fo_estimator):
        masks = np.zeros((2, fo_estimator.num_train + 1), dtype=bool)
        with pytest.raises(ValueError, match="columns"):
            fo_estimator.bias_change_batch(masks)

    def test_out_of_range_indices_rejected(self, fo_estimator):
        with pytest.raises(IndexError):
            fo_estimator.bias_change_batch([np.array([fo_estimator.num_train])])

    def test_bare_index_array_rejected(self, fo_estimator):
        """A 1-D index array must not silently become m singleton subsets."""
        with pytest.raises(ValueError, match="wrap a single subset"):
            fo_estimator.bias_change_batch(np.array([3, 5, 7]))

    def test_flat_int_list_rejected(self, fo_estimator):
        """Same hazard as the bare array, via a plain Python list of ints."""
        with pytest.raises(ValueError, match="wrap a single subset"):
            fo_estimator.bias_change_batch([3, 5, 7])

    def test_integer_mask_matrix_rejected(self, fo_estimator):
        """A 0/1 int matrix must not be silently read as per-row index lists."""
        masks = np.zeros((2, fo_estimator.num_train), dtype=np.int64)
        masks[:, :5] = 1
        with pytest.raises(ValueError, match="boolean mask"):
            fo_estimator.bias_change_batch(masks)

    def test_duplicate_indices_rejected(self, fo_estimator):
        """Duplicates would double-count in the scalar sum but collapse in the
        mask representation — both APIs refuse them."""
        with pytest.raises(ValueError, match="duplicates"):
            fo_estimator.bias_change(np.array([3, 3]))
        with pytest.raises(ValueError, match="duplicates"):
            fo_estimator.bias_change_batch([np.array([3, 3])])


class TestHessianFactors:
    """The rank-one factor hook must reconstruct ``model.hessian`` exactly —
    it is what lets batched second-order influence skip per-subset (p, p)
    Hessian builds."""

    def _check(self, model, X, y, subset):
        phi, weights, ridge = model.hessian_factors(X, y)
        sub = subset
        expected = model.hessian(X[sub], y[sub])
        rebuilt = (phi[sub] * weights[sub, None]).T @ phi[sub] / len(sub)
        rebuilt += ridge * np.eye(model.num_params)
        np.testing.assert_allclose(rebuilt, expected, atol=1e-10, rtol=0.0)

    def test_logistic_regression(self, lr_model, X_train, german_train):
        self._check(lr_model, X_train, german_train.labels, np.arange(40))

    def test_linear_svm(self, tiny_xy):
        X, y = tiny_xy
        model = LinearSVM(l2_reg=1e-2).fit(X, y)
        self._check(model, X, y, np.arange(60))

    def test_neural_network_gauss_newton(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(hidden_units=4, l2_reg=1e-3, seed=0, max_iter=150).fit(X, y)
        self._check(model, X, y, np.arange(60))

    def test_finite_difference_mode_has_no_factors(self, tiny_xy):
        X, y = tiny_xy
        model = NeuralNetwork(
            hidden_units=3, l2_reg=1e-3, seed=0, max_iter=50, hessian_mode="exact_fd"
        ).fit(X, y)
        with pytest.raises(NotImplementedError):
            model.hessian_factors(X, y)
