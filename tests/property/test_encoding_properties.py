"""Property-based tests for the tabular encoder and table engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.encoding import TabularEncoder
from repro.tabular import Table


@st.composite
def mixed_tables(draw):
    n = draw(st.integers(min_value=3, max_value=30))
    num = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    cat = draw(st.lists(st.sampled_from(["x", "y", "z"]), min_size=n, max_size=n))
    return Table.from_dict({"num": num, "cat": cat})


class TestEncoderProperties:
    @given(mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_one_hot_rows_sum_to_one(self, table):
        encoder = TabularEncoder().fit(table)
        X = encoder.transform(table)
        group = encoder.group_for("cat")
        np.testing.assert_allclose(
            X[:, group.start:group.stop].sum(axis=1), np.ones(table.num_rows)
        )

    @given(mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_decode_roundtrips_categories(self, table):
        encoder = TabularEncoder().fit(table)
        X = encoder.transform(table)
        originals = table.column("cat").to_list()
        for i in range(table.num_rows):
            assert encoder.decode_row(X[i])["cat"] == originals[i]

    @given(mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_decode_roundtrips_numerics(self, table):
        encoder = TabularEncoder().fit(table)
        X = encoder.transform(table)
        originals = table.column("num").to_list()
        for i in range(table.num_rows):
            assert abs(encoder.decode_row(X[i])["num"] - originals[i]) < 1e-6

    @given(mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_projection_idempotent(self, table):
        encoder = TabularEncoder().fit(table)
        X = encoder.transform(table)
        rng = np.random.default_rng(0)
        perturbed = X + rng.normal(scale=0.4, size=X.shape)
        once = encoder.project_rows(perturbed)
        np.testing.assert_allclose(encoder.project_rows(once), once)

    @given(mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_transform_width_constant(self, table):
        encoder = TabularEncoder().fit(table)
        X = encoder.transform(table)
        assert X.shape == (table.num_rows, encoder.num_features)

    @given(mixed_tables())
    @settings(max_examples=40, deadline=None)
    def test_table_filter_take_consistency(self, table):
        mask = np.zeros(table.num_rows, dtype=bool)
        mask[:: 2] = True
        a = table.filter(mask)
        b = table.take(np.flatnonzero(mask))
        assert a.to_dict() == b.to_dict()
