"""Property-based tests for influence estimators on a fixed pipeline.

The model/context come from the session fixtures; hypothesis drives the
*subsets*, checking structural invariants that must hold for any subset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def subset_strategy(n):
    return st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=1, max_size=60, unique=True,
    ).map(lambda lst: np.asarray(sorted(lst), dtype=np.int64))


class TestFirstOrderProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_additivity_over_disjoint_subsets(self, data, fo_estimator):
        n = fo_estimator.num_train
        idx = data.draw(subset_strategy(n))
        half = len(idx) // 2
        if half == 0 or half == len(idx):
            return
        a, b = idx[:half], idx[half:]
        total = fo_estimator.bias_change(idx)
        assert abs(total - fo_estimator.bias_change(a) - fo_estimator.bias_change(b)) < 1e-10

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_param_change_scales_with_gradient_sum(self, data, fo_estimator):
        n = fo_estimator.num_train
        idx = data.draw(subset_strategy(n))
        delta = fo_estimator.param_change(idx)
        g_s = fo_estimator.subset_grad_sum(idx)
        # H Δθ n = g_S exactly, by construction.
        np.testing.assert_allclose(
            fo_estimator.solver.apply(delta) * n, g_s, atol=1e-6
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_order_independence(self, data, fo_estimator):
        n = fo_estimator.num_train
        idx = data.draw(subset_strategy(n))
        shuffled = idx.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert fo_estimator.bias_change(idx) == pytest.approx(
            fo_estimator.bias_change(shuffled), rel=1e-12, abs=1e-15
        )


def subset_batch_strategy(n):
    return st.lists(subset_strategy(n), min_size=1, max_size=6)


class TestBatchProperties:
    """Structural invariants of the batched influence API.

    Each batch row is an independent subset query, so the results must be
    permutation-equivariant (shuffling batch rows shuffles the outputs) and
    duplication-consistent (a subset appearing twice yields the same output
    twice) — for both the fully-vectorized first-order path and the
    second-order multi-RHS path.
    """

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_permutation_equivariance_first_order(self, data, fo_estimator):
        self._check_permutation(data, fo_estimator)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_permutation_equivariance_second_order(self, data, so_estimator):
        self._check_permutation(data, so_estimator)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_duplicate_subset_duplicates_output_first_order(self, data, fo_estimator):
        self._check_duplicates(data, fo_estimator)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_duplicate_subset_duplicates_output_second_order(self, data, so_estimator):
        self._check_duplicates(data, so_estimator)

    @staticmethod
    def _check_permutation(data, estimator):
        n = estimator.num_train
        subsets = data.draw(subset_batch_strategy(n))
        perm = data.draw(st.permutations(range(len(subsets))))
        base = estimator.bias_change_batch(subsets)
        shuffled = estimator.bias_change_batch([subsets[i] for i in perm])
        np.testing.assert_allclose(shuffled, base[list(perm)], atol=1e-12, rtol=0.0)
        resp = estimator.responsibility_batch(subsets)
        resp_shuffled = estimator.responsibility_batch([subsets[i] for i in perm])
        np.testing.assert_allclose(resp_shuffled, resp[list(perm)], atol=1e-12, rtol=0.0)

    @staticmethod
    def _check_duplicates(data, estimator):
        n = estimator.num_train
        subsets = data.draw(subset_batch_strategy(n))
        dup_at = data.draw(st.integers(min_value=0, max_value=len(subsets) - 1))
        batch = estimator.bias_change_batch(subsets + [subsets[dup_at]])
        np.testing.assert_allclose(batch[-1], batch[dup_at], atol=1e-12, rtol=0.0)
        params = estimator.param_change_batch(subsets + [subsets[dup_at]])
        np.testing.assert_allclose(params[-1], params[dup_at], atol=1e-12, rtol=0.0)


class TestSecondOrderProperties:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_finite_and_bounded(self, data, so_estimator):
        n = so_estimator.num_train
        idx = data.draw(subset_strategy(n))
        delta = so_estimator.param_change(idx)
        assert np.isfinite(delta).all()
        assert np.linalg.norm(delta) < 10.0

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_responsibility_definition(self, data, so_estimator):
        n = so_estimator.num_train
        idx = data.draw(subset_strategy(n))
        resp = so_estimator.responsibility(idx)
        dbias = so_estimator.bias_change(idx)
        assert resp == -dbias / so_estimator.original_surrogate
