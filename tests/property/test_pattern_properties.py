"""Property-based tests (hypothesis) for the pattern algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import Pattern, Predicate, containment
from repro.tabular import Table

FEATURES = ["age", "hours", "grade"]


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    data = {}
    for name in FEATURES:
        data[name] = draw(
            st.lists(
                st.integers(min_value=0, max_value=9).map(float),
                min_size=n,
                max_size=n,
            )
        )
    data["cat"] = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    return Table.from_dict(data)


@st.composite
def predicates(draw):
    if draw(st.booleans()):
        feature = draw(st.sampled_from(FEATURES))
        op = draw(st.sampled_from(["=", "<", "<=", ">", ">="]))
        value = float(draw(st.integers(min_value=0, max_value=9)))
        return Predicate(feature, op, value)
    return Predicate("cat", "=", draw(st.sampled_from(["a", "b", "c"])))


@st.composite
def patterns(draw):
    preds = draw(st.lists(predicates(), min_size=1, max_size=4))
    return Pattern(preds)


class TestPatternAlgebraProperties:
    @given(patterns(), tables())
    @settings(max_examples=60, deadline=None)
    def test_support_in_unit_interval(self, pattern, table):
        assert 0.0 <= pattern.support(table) <= 1.0

    @given(patterns(), patterns(), tables())
    @settings(max_examples=60, deadline=None)
    def test_merge_support_anti_monotone(self, a, b, table):
        """Sup(a ∧ b) <= min(Sup(a), Sup(b)) — the Apriori property."""
        merged = a.merge(b)
        assert merged.support(table) <= min(a.support(table), b.support(table)) + 1e-12

    @given(patterns(), patterns())
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(patterns(), tables())
    @settings(max_examples=60, deadline=None)
    def test_mask_matches_per_predicate_and(self, pattern, table):
        expected = np.ones(table.num_rows, dtype=bool)
        for predicate in pattern.predicates:
            expected &= predicate.mask(table)
        np.testing.assert_array_equal(pattern.mask(table), expected)

    @given(patterns(), tables())
    @settings(max_examples=60, deadline=None)
    def test_unsatisfiable_implies_empty(self, pattern, table):
        """Structural conflict detection is sound: a conflicting pattern can
        never match a row."""
        if not pattern.is_satisfiable():
            assert not pattern.mask(table).any()

    @given(predicates(), predicates())
    @settings(max_examples=60, deadline=None)
    def test_conflict_symmetric(self, a, b):
        assert a.conflicts_with(b) == b.conflicts_with(a)

    @given(patterns(), patterns())
    @settings(max_examples=60, deadline=None)
    def test_merge_contains_both_parents(self, a, b):
        merged = a.merge(b)
        assert merged.contains_pattern(a)
        assert merged.contains_pattern(b)


class TestContainmentProperties:
    @given(tables(), patterns(), patterns())
    @settings(max_examples=60, deadline=None)
    def test_containment_in_unit_interval(self, table, a, b):
        mask_a, mask_b = a.mask(table), b.mask(table)
        if mask_a.any():
            assert 0.0 <= containment(mask_a, mask_b) <= 1.0

    @given(tables(), patterns())
    @settings(max_examples=60, deadline=None)
    def test_self_containment_is_one(self, table, a):
        mask = a.mask(table)
        if mask.any():
            assert containment(mask, mask) == 1.0

    @given(tables(), patterns(), patterns())
    @settings(max_examples=60, deadline=None)
    def test_subset_containment_is_one(self, table, a, b):
        """A merged (more specific) pattern is always fully contained in
        each parent."""
        merged = a.merge(b)
        mask_m = merged.mask(table)
        if mask_m.any():
            assert containment(mask_m, a.mask(table)) == 1.0
