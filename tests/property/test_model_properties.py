"""Property-based tests on the model family contracts.

Hypothesis drives random parameter vectors and data; the invariants are the
ones the influence machinery silently relies on everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import LinearSVM, LogisticRegression, NeuralNetwork

_MODELS = {
    "lr": lambda: LogisticRegression(l2_reg=1e-2),
    "svm": lambda: LinearSVM(l2_reg=1e-2),
    "nn": lambda: NeuralNetwork(hidden_units=3, l2_reg=1e-2, seed=0, max_iter=60),
}


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    y = (X[:, 0] - X[:, 1] + rng.normal(scale=0.4, size=80) > 0).astype(np.int64)
    return {name: factory().fit(X, y) for name, factory in _MODELS.items()}, X, y


def thetas(dim):
    return st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        min_size=dim, max_size=dim,
    ).map(np.asarray)


class TestModelInvariants:
    @pytest.mark.parametrize("name", list(_MODELS))
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_proba_in_unit_interval_for_any_theta(self, data, fitted, name):
        models, X, _ = fitted
        model = models[name]
        theta = data.draw(thetas(model.num_params))
        proba = model.predict_proba(X, theta)
        assert (proba >= 0.0).all() and (proba <= 1.0).all()

    @pytest.mark.parametrize("name", list(_MODELS))
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_loss_finite_and_nonnegative(self, data, fitted, name):
        models, X, y = fitted
        model = models[name]
        theta = data.draw(thetas(model.num_params))
        losses = model.per_sample_losses(X, y, theta)
        assert np.isfinite(losses).all()
        assert (losses >= 0.0).all()

    @pytest.mark.parametrize("name", list(_MODELS))
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_predict_thresholds_proba(self, data, fitted, name):
        models, X, _ = fitted
        model = models[name]
        theta = data.draw(thetas(model.num_params))
        np.testing.assert_array_equal(
            model.predict(X, theta), (model.predict_proba(X, theta) >= 0.5).astype(int)
        )

    @pytest.mark.parametrize("name", list(_MODELS))
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_mean_grad_equals_per_sample_mean(self, data, fitted, name):
        models, X, y = fitted
        model = models[name]
        theta = data.draw(thetas(model.num_params))
        np.testing.assert_allclose(
            model.grad(X, y, theta),
            model.per_sample_grads(X, y, theta).mean(axis=0),
            atol=1e-10,
        )

    @pytest.mark.parametrize("name", list(_MODELS))
    def test_optimum_beats_perturbations(self, fitted, name):
        models, X, y = fitted
        model = models[name]
        base = model.loss(X, y)
        rng = np.random.default_rng(1)
        for _ in range(5):
            nearby = model.theta + rng.normal(scale=0.05, size=model.num_params)
            assert model.loss(X, y, nearby) >= base - 1e-9

    @pytest.mark.parametrize("name", list(_MODELS))
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_hessian_psd_for_any_theta(self, data, fitted, name):
        """All three losses are (locally) convex in θ under our Hessian
        conventions: logistic and squared hinge exactly, the NN through its
        Gauss-Newton approximation."""
        models, X, y = fitted
        model = models[name]
        theta = data.draw(thetas(model.num_params))
        eigenvalues = np.linalg.eigvalsh(model.hessian(X, y, theta))
        assert eigenvalues.min() > -1e-8
