"""Tests for the anchoring data-poisoning attack."""

import numpy as np
import pytest

from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.models import LogisticRegression
from repro.poisoning import AnchoringAttack


@pytest.fixture(scope="module")
def clean_train():
    ds = load_german(800, seed=11)
    train, _ = train_test_split(ds, 0.25, seed=1)
    return train


@pytest.fixture(scope="module")
def poisoned(clean_train):
    return AnchoringAttack(poison_fraction=0.1, seed=5).poison(clean_train)


class TestAttackMechanics:
    def test_budget_respected(self, clean_train, poisoned):
        expected = round(0.1 * clean_train.num_rows)
        assert poisoned.num_poisoned == pytest.approx(expected, abs=1)

    def test_clean_rows_first(self, clean_train, poisoned):
        assert not poisoned.is_poisoned[: clean_train.num_rows].any()
        assert poisoned.is_poisoned[clean_train.num_rows:].all()

    def test_labels_adversarial(self, clean_train, poisoned):
        """Protected-group poison gets the unfavorable label, privileged
        poison the favorable one."""
        ds = poisoned.dataset
        poisoned_rows = np.flatnonzero(poisoned.is_poisoned)
        privileged = ds.privileged_mask()[poisoned_rows]
        labels = ds.labels[poisoned_rows]
        fav = ds.favorable_label
        assert (labels[privileged] == fav).all()
        assert (labels[~privileged] == (1 - fav)).all()

    def test_poison_within_feature_domain(self, clean_train, poisoned):
        """Jittered copies stay inside the clean data's numeric ranges."""
        for name in clean_train.table.column_names:
            if not clean_train.table.is_numeric(name):
                continue
            clean_vals = np.asarray(clean_train.table.column(name).values)
            all_vals = np.asarray(poisoned.dataset.table.column(name).values)
            assert all_vals.min() >= clean_vals.min() - 1e-9
            assert all_vals.max() <= clean_vals.max() + 1e-9

    def test_deterministic(self, clean_train):
        a = AnchoringAttack(poison_fraction=0.05, seed=9).poison(clean_train)
        b = AnchoringAttack(poison_fraction=0.05, seed=9).poison(clean_train)
        np.testing.assert_array_equal(a.dataset.labels, b.dataset.labels)

    def test_random_mode(self, clean_train):
        out = AnchoringAttack(poison_fraction=0.05, anchor_mode="random", seed=3).poison(
            clean_train
        )
        assert out.num_poisoned > 0


class TestAttackEffect:
    def test_bias_worsens(self, clean_train, poisoned):
        """Training on contaminated data must increase the fairness gap."""
        metric = get_metric("statistical_parity")
        _, test = train_test_split(load_german(800, seed=11), 0.25, seed=1)

        def bias_of(train):
            enc = TabularEncoder().fit(train.table)
            model = LogisticRegression(1e-3).fit(enc.transform(train.table), train.labels)
            ctx = FairnessContext(
                enc.transform(test.table), test.labels, test.privileged_mask(), 1
            )
            return metric.value(model, ctx)

        assert bias_of(poisoned.dataset) > bias_of(clean_train)


class TestValidation:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="poison_fraction"):
            AnchoringAttack(poison_fraction=0.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="anchor_mode"):
            AnchoringAttack(anchor_mode="bogus")

    def test_invalid_anchors(self):
        with pytest.raises(ValueError, match="num_anchors"):
            AnchoringAttack(num_anchors=0)
