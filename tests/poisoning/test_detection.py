"""Tests for influence-ranked cluster detection (§6.7)."""

import numpy as np
import pytest

from repro.cluster import local_outlier_factor
from repro.datasets import TabularEncoder, load_german, train_test_split
from repro.fairness import FairnessContext, get_metric
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.poisoning import AnchoringAttack, rank_clusters_by_influence


@pytest.fixture(scope="module")
def detection_setup():
    """Poisoned mildly-biased German + SO estimator on the poisoned model."""
    ds = load_german(800, seed=1, bias_strength=0.3)
    train, test = train_test_split(ds, 0.25, seed=1)
    poisoned = AnchoringAttack(poison_fraction=0.1, num_anchors=5, seed=5).poison(train)
    encoder = TabularEncoder().fit(poisoned.dataset.table)
    X = encoder.transform(poisoned.dataset.table)
    model = LogisticRegression(1e-3).fit(X, poisoned.dataset.labels)
    ctx = FairnessContext(
        encoder.transform(test.table), test.labels, test.privileged_mask(), 1
    )
    estimator = make_estimator(
        "second_order", model, X, poisoned.dataset.labels,
        get_metric("statistical_parity"), ctx,
    )
    return X, estimator, poisoned


class TestDetection:
    def test_gmm_top2_concentrates_poison(self, detection_setup):
        """The §6.7 claim: top-2 influence-ranked clusters hold most poison."""
        X, estimator, poisoned = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=8, method="gmm", seed=0)
        assert report.fraction_in_top(poisoned.is_poisoned, 2) > 0.6

    def test_beats_random_baseline(self, detection_setup):
        X, estimator, poisoned = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=8, method="gmm", seed=0)
        top2 = report.top_clusters(2)
        budget_fraction = sum(report.sizes[c] for c in top2) / len(X)
        recall = report.fraction_in_top(poisoned.is_poisoned, 2)
        assert recall > 2.0 * budget_fraction  # far better than random flagging

    def test_lof_fails(self, detection_setup):
        """The paper's negative result: LOF finds (almost) none of the poison."""
        X, _, poisoned = detection_setup
        lof = local_outlier_factor(X, n_neighbors=20)
        flagged = np.zeros(len(X), dtype=bool)
        flagged[np.argsort(-lof)[: poisoned.num_poisoned]] = True
        recall = (flagged & poisoned.is_poisoned).sum() / poisoned.num_poisoned
        assert recall < 0.1

    def test_kmeans_method(self, detection_setup):
        X, estimator, poisoned = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=8, method="kmeans", seed=0)
        assert len(report.ranking) == 8

    def test_sizes_account_all_rows(self, detection_setup):
        X, estimator, _ = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=6, seed=0)
        assert sum(report.sizes.values()) == len(X)


class TestReportInterface:
    def test_membership_mask(self, detection_setup):
        X, estimator, _ = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=5, seed=0)
        mask = report.membership_mask(report.top_clusters(1))
        assert mask.sum() == report.sizes[report.ranking[0]]

    def test_invalid_j(self, detection_setup):
        X, estimator, _ = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=5, seed=0)
        with pytest.raises(ValueError, match="j must be"):
            report.top_clusters(0)

    def test_empty_target_mask_rejected(self, detection_setup):
        X, estimator, _ = detection_setup
        report = rank_clusters_by_influence(X, estimator, n_clusters=5, seed=0)
        with pytest.raises(ValueError, match="no rows"):
            report.fraction_in_top(np.zeros(len(X), dtype=bool), 2)

    def test_row_mismatch_rejected(self, detection_setup):
        X, estimator, _ = detection_setup
        with pytest.raises(ValueError, match="rows"):
            rank_clusters_by_influence(X[:10], estimator, n_clusters=3)

    def test_unknown_method(self, detection_setup):
        X, estimator, _ = detection_setup
        with pytest.raises(ValueError, match="method"):
            rank_clusters_by_influence(X, estimator, n_clusters=3, method="dbscan")
