"""The column-oriented :class:`Table` used throughout the library."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.columns import CategoricalColumn, Column, NumericColumn


class Table:
    """An immutable, column-oriented table.

    Columns are typed (:class:`NumericColumn` or :class:`CategoricalColumn`)
    and all row operations are expressed through boolean masks or index
    arrays, which is the access pattern the pattern-lattice search needs.

    Example
    -------
    >>> t = Table.from_dict({"age": [30, 50], "gender": ["Female", "Male"]})
    >>> t.num_rows
    2
    >>> t.filter(t.column("age").greater_equal_mask(40)).num_rows
    1
    """

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise ValueError("a Table needs at least one column")
        lengths = {len(col) for col in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {col.name: col for col in columns}
        self._num_rows = lengths.pop()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[object]]) -> "Table":
        """Build a table, inferring numeric vs. categorical per column."""
        columns: list[Column] = []
        for name, values in data.items():
            values = list(values) if not isinstance(values, np.ndarray) else values
            columns.append(_infer_column(name, values))
        return cls(columns)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:
        return f"Table(rows={self._num_rows}, columns={self.column_names})"

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        """Return the column named ``name`` (raises ``KeyError`` if absent)."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}; available: {self.column_names}")
        return self._columns[name]

    def is_numeric(self, name: str) -> bool:
        return isinstance(self.column(name), NumericColumn)

    def is_categorical(self, name: str) -> bool:
        return isinstance(self.column(name), CategoricalColumn)

    def distinct(self, name: str) -> list[object]:
        """Distinct values of a column (the π_X(D) of Algorithm 1)."""
        return self.column(name).distinct()

    def row(self, index: int) -> dict[str, object]:
        """Materialize a single row as a dict (for display/debugging)."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row {index} out of range [0, {self._num_rows})")
        return {name: col.to_list()[index] for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Return the sub-table of rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._num_rows,):
            raise ValueError(
                f"mask shape {mask.shape} does not match table rows {self._num_rows}"
            )
        indices = np.flatnonzero(mask)
        return self.take(indices)

    def take(self, indices: np.ndarray) -> "Table":
        """Return the sub-table of rows at ``indices`` (in order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table([col.take(indices) for col in self._columns.values()])

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto the given columns, preserving order of ``names``."""
        return Table([self.column(name) for name in names])

    def drop(self, names: Sequence[str]) -> "Table":
        """Return the table without the given columns."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"cannot drop missing columns: {missing}")
        keep = [n for n in self.column_names if n not in set(names)]
        return self.select(keep)

    def with_column(self, column: Column) -> "Table":
        """Return a copy with ``column`` added or replaced."""
        if len(column) != self._num_rows:
            raise ValueError(
                f"column length {len(column)} does not match table rows {self._num_rows}"
            )
        columns = [c for c in self._columns.values() if c.name != column.name]
        columns.append(column)
        return Table(columns)

    def concat(self, other: "Table") -> "Table":
        """Vertically stack two tables with identical schemas."""
        if self.column_names != other.column_names:
            raise ValueError(
                "schema mismatch: "
                f"{self.column_names} vs {other.column_names}"
            )
        columns: list[Column] = []
        for name in self.column_names:
            left, right = self.column(name), other.column(name)
            if isinstance(left, NumericColumn) and isinstance(right, NumericColumn):
                columns.append(NumericColumn(name, np.concatenate([left.values, right.values])))
            elif isinstance(left, CategoricalColumn) and isinstance(right, CategoricalColumn):
                merged = np.concatenate([left.values, right.values])
                columns.append(CategoricalColumn(name, merged))
            else:
                raise ValueError(f"column {name!r} has mismatched types across tables")
        return Table(columns)

    def replicate(self, factor: int) -> "Table":
        """Tile the table ``factor`` times (used by the Figure 5 scale-up)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        indices = np.tile(np.arange(self._num_rows), factor)
        return self.take(indices)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def group_by_count(self, name: str) -> dict[object, int]:
        """Counts of each distinct value of a column."""
        col = self.column(name)
        if isinstance(col, CategoricalColumn):
            counts = np.bincount(col.codes, minlength=len(col.categories))
            return {
                cat: int(cnt)
                for cat, cnt in zip(col.categories, counts)
                if cnt > 0
            }
        values, counts = np.unique(col.values, return_counts=True)
        return {float(v): int(c) for v, c in zip(values, counts)}

    def to_dict(self) -> dict[str, list[object]]:
        """Materialize the full table as a dict of lists."""
        return {name: col.to_list() for name, col in self._columns.items()}


def _infer_column(name: str, values: Sequence[object] | np.ndarray) -> Column:
    """Build a NumericColumn if every value is number-like, else categorical."""
    arr = np.asarray(values)
    if arr.dtype.kind in "ifu" and arr.dtype.kind != "b":
        return NumericColumn(name, arr.astype(np.float64))
    if arr.dtype.kind == "b":
        return CategoricalColumn(name, [str(bool(v)) for v in arr])
    return CategoricalColumn(name, [str(v) for v in arr])
