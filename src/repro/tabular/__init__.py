"""A small column-oriented table engine.

pandas is not available in this environment, and Gopher only needs a narrow
slice of dataframe functionality: typed columns, boolean-mask filtering by
predicates, distinct values, group-by counts, and CSV round-trips.  This
package provides exactly that on top of numpy arrays, in a form the pattern
lattice can query efficiently (column-at-a-time, mask-based).
"""

from repro.tabular.columns import CategoricalColumn, Column, NumericColumn
from repro.tabular.csv_io import read_csv, write_csv
from repro.tabular.table import Table

__all__ = [
    "CategoricalColumn",
    "Column",
    "NumericColumn",
    "Table",
    "read_csv",
    "write_csv",
]
