"""CSV round-trips for :class:`repro.tabular.Table`.

Used by the dataset loaders to ingest the *real* German/Adult/SQF files when
a user has them on disk; the offline default is the synthetic generators.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.tabular.table import Table


def read_csv(path: str | Path, numeric_columns: set[str] | None = None) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Columns listed in ``numeric_columns`` are parsed as floats; any other
    column whose every value parses as a float is also treated as numeric,
    the rest become categorical.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    widths = {len(r) for r in rows}
    if widths != {len(header)}:
        raise ValueError(f"{path} has ragged rows: widths {sorted(widths)} vs header {len(header)}")

    data: dict[str, list[object]] = {}
    for j, name in enumerate(header):
        raw = [row[j] for row in rows]
        force_numeric = numeric_columns is not None and name in numeric_columns
        if force_numeric or _all_floatable(raw):
            data[name] = [float(v) for v in raw]
        else:
            data[name] = raw
    return Table.from_dict(data)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a :class:`Table` to ``path`` with a header row."""
    path = Path(path)
    materialized = table.to_dict()
    names = list(materialized)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            writer.writerow([materialized[name][i] for name in names])


def _all_floatable(values: list[object]) -> bool:
    try:
        for v in values:
            float(v)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False
    return True
