"""Typed columns backing :class:`repro.tabular.Table`.

Two concrete column kinds exist:

* :class:`NumericColumn` — float64 values, supports ordered comparisons.
* :class:`CategoricalColumn` — dictionary-encoded strings (int32 codes plus a
  category list), supports equality only.  Dictionary encoding keeps pattern
  matching and group-bys O(n) integer comparisons instead of string work,
  which matters because the lattice search evaluates thousands of predicates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class Column:
    """Abstract base for table columns.

    Subclasses must expose ``values`` (a numpy array view of the data),
    ``take`` (row subsetting) and the comparison mask builders used by
    predicates.
    """

    name: str

    def __len__(self) -> int:
        raise NotImplementedError

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column restricted to ``indices`` (in order)."""
        raise NotImplementedError

    def equals_mask(self, value: object) -> np.ndarray:
        """Boolean mask of rows equal to ``value``."""
        raise NotImplementedError

    def distinct(self) -> list[object]:
        """Sorted distinct values present in the column."""
        raise NotImplementedError

    def to_list(self) -> list[object]:
        """Materialize the column as a Python list."""
        raise NotImplementedError


class NumericColumn(Column):
    """A float64 column supporting ordered comparison masks."""

    def __init__(self, name: str, values: Iterable[float]) -> None:
        self.name = name
        self.values = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                                 dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-dimensional")

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"NumericColumn({self.name!r}, n={len(self)})"

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn(self.name, self.values[indices])

    def equals_mask(self, value: object) -> np.ndarray:
        return self.values == float(value)  # type: ignore[arg-type]

    def less_mask(self, value: float) -> np.ndarray:
        return self.values < value

    def less_equal_mask(self, value: float) -> np.ndarray:
        return self.values <= value

    def greater_mask(self, value: float) -> np.ndarray:
        return self.values > value

    def greater_equal_mask(self, value: float) -> np.ndarray:
        return self.values >= value

    def distinct(self) -> list[object]:
        return [float(v) for v in np.unique(self.values)]

    def to_list(self) -> list[object]:
        return [float(v) for v in self.values]

    def min(self) -> float:
        return float(self.values.min())

    def max(self) -> float:
        return float(self.values.max())


class CategoricalColumn(Column):
    """A dictionary-encoded string column supporting equality masks."""

    def __init__(
        self,
        name: str,
        values: Sequence[str] | np.ndarray | None = None,
        *,
        codes: np.ndarray | None = None,
        categories: Sequence[str] | None = None,
    ) -> None:
        self.name = name
        if codes is not None:
            if categories is None:
                raise ValueError("categories are required when passing codes")
            self.categories = list(categories)
            self.codes = np.asarray(codes, dtype=np.int32)
            if self.codes.size and (self.codes.min() < 0 or self.codes.max() >= len(self.categories)):
                raise ValueError(f"codes out of range for column {name!r}")
        else:
            if values is None:
                raise ValueError("either values or codes must be provided")
            as_str = np.asarray([str(v) for v in values])
            self.categories, codes_arr = _encode(as_str)
            self.codes = codes_arr

    def __len__(self) -> int:
        return len(self.codes)

    def __repr__(self) -> str:
        return f"CategoricalColumn({self.name!r}, n={len(self)}, k={len(self.categories)})"

    @property
    def values(self) -> np.ndarray:
        """Decoded string values (materialized on access)."""
        return np.asarray(self.categories, dtype=object)[self.codes]

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(
            self.name, codes=self.codes[indices], categories=self.categories
        )

    def code_of(self, value: str) -> int:
        """Return the integer code of ``value`` or -1 if absent."""
        try:
            return self.categories.index(str(value))
        except ValueError:
            return -1

    def equals_mask(self, value: object) -> np.ndarray:
        code = self.code_of(str(value))
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self.codes == code

    def distinct(self) -> list[object]:
        present = np.unique(self.codes)
        return sorted(self.categories[c] for c in present)

    def to_list(self) -> list[object]:
        return [self.categories[c] for c in self.codes]


def _encode(values: np.ndarray) -> tuple[list[str], np.ndarray]:
    """Dictionary-encode a string array into (categories, int32 codes)."""
    categories, codes = np.unique(values, return_inverse=True)
    return [str(c) for c in categories], codes.astype(np.int32)
