"""Per-dataset cache of the level-1 predicate alphabet and packed tidlists.

Both candidate-generation backends start from the same state: every single
predicate whose support strictly exceeds τ, with its boolean row mask —
the lattice's level 1 and the miner's item alphabet.  Building it scans
every column, bins every numeric feature, and materializes one (n,) mask
per predicate; the miner additionally sorts the alphabet
frequency-ascending and packs the masks into the (K, ceil(n/8)) tidlist
matrix its bitset traversal runs on.  None of that depends on the model,
the metric, or the protected group — only on the training table and the
generation parameters (τ, bins, excluded features) — so an interactive
audit re-running the search for every (metric, group, engine) pair
should pay it once.

:class:`PredicateAlphabet` is the built state for one parameter key;
:class:`AlphabetCache` owns one table and hands out alphabets keyed by
``(support_threshold, num_bins, exclude_features)`` — the exclude part
normalized through
:func:`repro.patterns.candidates.normalize_exclude_features`, so lists,
tuples, sets, and single names all hit one cache entry.  Both engines
accept a cache through their ``generate(..., alphabet_cache=...)``
parameter (:class:`repro.core.AuditSession` threads one through every
query); without a cache each search builds a throwaway alphabet exactly
as before.

Under a :class:`repro.datasets.DataEdit` the cache is *patched*, not
rebuilt: every predicate's mask keeps its bits for surviving rows, gains
fresh bits only for added rows, and the support filter re-runs over the
patched masks.  The pattern *language* is frozen: predicates — including
the quantile bin edges baked into numeric thresholds — are part of the
cached artifact and are deliberately not re-derived from the edited
table.  Re-deriving them would shift every data-dependent threshold by a
hair on each small edit (``amount >= 2692`` becoming ``amount >= 2680``
after dropping seven rows), making before/after explanations
incomparable and incremental re-certification impossible; a stable
language is what lets :meth:`repro.core.AuditSession.delta_audit` report
per-rank diffs that mean something.  A relabel-only edit leaves the
table (and therefore every mask) untouched.  Rebuild the session when
the cumulative edit volume warrants re-binning.

``stats`` counts ``alphabet_builds`` / ``tidlist_builds`` (full builds)
and ``alphabet_patches`` / ``tidlist_patches`` (edit-time patches), so the
audit and delta-audit benchmarks can assert a whole multi-query audit
built each exactly once — and that re-audits after an edit built nothing.
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping

import numpy as np

from repro.mining.bitset import pack_rows, packed_width, popcount, unpack_rows
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.patterns.candidates import iter_predicate_specs, normalize_exclude_features
from repro.patterns.predicate import Predicate
from repro.tabular import Table

#: Above this row count the alphabet stores *packed* masks and builds them
#: by streaming row blocks off the table — the (K, n) bool dict would cost
#: K·n bytes (tens of GB at 10M rows × 60 predicates) where packed costs
#: K·n/8.
_PACKED_AUTO_ROWS = 1_000_000

#: Rows per streamed block (a multiple of 8, so every block but the last
#: packs to a whole number of bytes and block outputs concatenate exactly).
_BLOCK_ROWS = 262_144


class PredicateAlphabet:
    """The level-1 search state for one (table, τ, bins, exclude) key.

    ``entries`` is the list of ``(predicate, mask)`` pairs both engines
    consume, full-coverage predicates already dropped (they "remove the
    entire data" and have no explanatory value); ``num_generated`` keeps
    the pre-filter count the lattice reports as level-1 merges tried.
    Masks are shared read-only across queries — consumers combine them
    with fresh ANDs and never mutate them in place.

    Every evaluated mask — including below-support ones — is retained in
    ``_evaluated``: an edit can push a predicate across the support
    threshold in either direction, so :meth:`apply_edit` must re-filter
    the *full* spec set, not just the surviving entries.

    Above ``_PACKED_AUTO_ROWS`` rows (or with ``packed=True``) the
    alphabet stores packed ``uint8`` masks instead of booleans and builds
    them by streaming row blocks off the table (:meth:`_build_packed`) —
    the out-of-core mode the million-row miner runs on.  ``entries`` then
    holds packed rows; consumers that require boolean masks (the lattice,
    the delta-replay path) must check :attr:`packed` and refuse rather
    than misread bytes as booleans.  The miner is representation-agnostic:
    :meth:`miner_items` already serves packed tidlists in both modes.
    """

    def __init__(
        self,
        table: Table,
        support_threshold: float,
        num_bins: int,
        exclude_features=None,
        stats: MutableMapping[str, int] | None = None,
        packed: bool | None = None,
        block_rows: int | None = None,
    ) -> None:
        self.support_threshold = float(support_threshold)
        self.num_bins = int(num_bins)
        self.exclude_features = normalize_exclude_features(exclude_features)
        self._stats = stats if stats is not None else StatsView(namespace="mining")
        self._stats.setdefault("tidlist_builds", 0)
        self._stats.setdefault("tidlist_patches", 0)
        self._stats.setdefault("skeleton_builds", 0)
        self._stats.setdefault("block_streams", 0)
        self._stats.setdefault("projection_builds", 0)
        self._stats.setdefault("tidlist_compressions", 0)
        self._stats.setdefault("sparse_dispatch_hits", 0)
        self._stats.setdefault("dense_dispatch_hits", 0)
        self.packed = bool(
            packed if packed is not None else table.num_rows >= _PACKED_AUTO_ROWS
        )
        self._block_rows = int(block_rows) if block_rows else _BLOCK_ROWS
        if self._block_rows % 8:
            raise ValueError(f"block_rows must be a multiple of 8, got {self._block_rows}")
        self._evaluated: dict[Predicate, np.ndarray] = {}
        self._build(table)
        self._miner_items: tuple[list[Predicate], np.ndarray] | None = None
        self._skeleton: tuple[np.ndarray, np.ndarray, list] | None = None
        # Guards the lazy views (miner_items / pair_skeleton) so a cold
        # alphabet shared across threads builds each exactly once.
        self._lock = threading.Lock()

    def _build(self, table: Table) -> None:
        """Evaluate every spec of ``table`` in canonical order — the full build."""
        if self.packed:
            self._build_packed(table)
            return
        with trace.span("alphabet.build", rows=table.num_rows) as s:
            evaluated: dict[Predicate, np.ndarray] = {}
            for predicate in iter_predicate_specs(table, self.num_bins, self.exclude_features):
                if predicate not in evaluated:
                    evaluated[predicate] = predicate.mask(table)
            self._evaluated = evaluated
            self.num_rows = table.num_rows
            self._filter_entries()
            s.set(predicates=len(evaluated), entries=len(self.entries))

    def _build_packed(self, table: Table) -> None:
        """The out-of-core build: stream row blocks, store packed masks.

        Specs are derived once from the full table (bin edges need the whole
        column), then each block of ``_block_rows`` rows is materialized as a
        sub-table and every predicate evaluated against it; the block's bits
        land in the predicate's packed buffer at ``block_start // 8``.  Peak
        transient memory is one block's sub-table plus one ``(block_rows,)``
        bool mask — independent of ``n`` — on top of the ``K · n/8`` packed
        output that *is* the alphabet.
        """
        with trace.span("alphabet.block_build", rows=table.num_rows) as s:
            n = table.num_rows
            width = packed_width(n)
            specs = list(
                dict.fromkeys(
                    iter_predicate_specs(table, self.num_bins, self.exclude_features)
                )
            )
            evaluated: dict[Predicate, np.ndarray] = {
                predicate: np.zeros(width, dtype=np.uint8) for predicate in specs
            }
            blocks = 0
            for start in range(0, n, self._block_rows):
                stop = min(start + self._block_rows, n)
                block = table.take(np.arange(start, stop))
                for predicate in specs:
                    packed = np.packbits(predicate.mask(block))
                    evaluated[predicate][start // 8 : start // 8 + packed.size] = packed
                blocks += 1
            self._evaluated = evaluated
            self.num_rows = n
            self._filter_entries()
            self._stats.inc("block_streams", blocks)
            s.set(
                predicates=len(evaluated),
                entries=len(self.entries),
                blocks=blocks,
                block_rows=self._block_rows,
            )

    def _support_count(self, mask: np.ndarray) -> int:
        """Covered-row count of a stored mask in either representation,
        pinned to a python int (no 32-bit accumulator on any path)."""
        return int(popcount(mask)) if self.packed else int(mask.sum(dtype=np.int64))

    def _filter_entries(self) -> None:
        """Re-run the support filter over ``_evaluated`` (canonical order)."""
        n = self.num_rows
        singles = [
            (predicate, mask, count)
            for predicate, mask in self._evaluated.items()
            for count in (self._support_count(mask),)
            if count / n > self.support_threshold
        ]
        self.num_generated = len(singles)
        self.entries: list[tuple[Predicate, np.ndarray]] = [
            (predicate, mask) for predicate, mask, count in singles if count != n
        ]

    # ------------------------------------------------------------------
    def apply_edit(self, edit, new_table: Table) -> None:
        """Patch the alphabet for a :class:`repro.datasets.DataEdit`.

        Surviving rows keep their evaluated bits (``mask[keep]``), added
        rows are evaluated only against the small added sub-table, and the
        support filter re-runs over the patched masks.  The predicate set
        itself is frozen — bin edges are *not* re-derived from the edited
        table (see the module docstring for why), so an edit can move
        predicates across the support threshold but never mint or retire
        specs.  Relabel-only edits are a no-op (a predicate mask never
        depends on labels).  A previously-built miner view is re-packed
        from the patched masks (``tidlist_patches``), never re-derived
        from scratch.
        """
        if new_table.num_rows != self.num_rows - edit.num_removed + edit.num_added:
            raise ValueError(
                f"edited table has {new_table.num_rows} rows; expected "
                f"{self.num_rows - edit.num_removed + edit.num_added} from {edit}"
            )
        if not edit.changes_rows:
            return
        keep = np.ones(self.num_rows, dtype=bool)
        if edit.num_removed:
            keep[list(edit.remove_indices)] = False
        patched: dict[Predicate, np.ndarray] = {}
        for predicate, mask in self._evaluated.items():
            if self.packed:
                # One predicate at a time: the O(n) bool form is a transient,
                # never K of them at once.
                new_mask = unpack_rows(mask, self.num_rows)[keep]
                if edit.num_added:
                    new_mask = np.concatenate([new_mask, predicate.mask(edit.add_table)])
                patched[predicate] = pack_rows(new_mask)
                continue
            new_mask = mask[keep]
            if edit.num_added:
                new_mask = np.concatenate([new_mask, predicate.mask(edit.add_table)])
            patched[predicate] = new_mask
        old_entry_predicates = [predicate for predicate, _ in self.entries]
        self._evaluated = patched
        self.num_rows = new_table.num_rows
        self._filter_entries()
        if old_entry_predicates != [predicate for predicate, _ in self.entries]:
            # The support filter moved an entry in or out: the level-2
            # merge skeleton no longer describes the entry list.
            self._skeleton = None
        if self._miner_items is not None:
            self._miner_items = self._pack_items()
            self._stats.inc("tidlist_patches")

    # ------------------------------------------------------------------
    def _pack_items(self) -> tuple[list[Predicate], np.ndarray]:
        ordered = sorted(
            self.entries,
            key=lambda pair: (self._support_count(pair[1]), pair[0].sort_key()),
        )
        predicates = [predicate for predicate, _ in ordered]
        if not ordered:
            tids = np.zeros((0, (self.num_rows + 7) // 8), dtype=np.uint8)
        elif self.packed:
            tids = np.stack([mask for _, mask in ordered])
        else:
            tids = pack_rows(np.stack([mask for _, mask in ordered]))
        return predicates, tids

    def pair_skeleton(self) -> tuple[np.ndarray, np.ndarray, list]:
        """The structural level-2 merge skeleton over the current entries.

        Returns ``(left, right, patterns)``: for every entry index pair
        ``i < j`` (in the lattice's enumeration order) whose merge is a
        genuine two-predicate, satisfiable, not-yet-seen pattern, the
        parallel index arrays and the merged :class:`Pattern` objects.
        The skeleton depends only on the entry *predicates* — never on
        masks or data — so it survives edits as long as the entry list
        does; :meth:`apply_edit` invalidates it when the support filter
        changes the entries.  Built lazily and cached: the incremental
        delta-audit path replays one search's worth of structural work
        here once, then reuses it across every (metric, estimator) query
        and every subsequent edit.
        """
        if self._skeleton is None:
            with self._lock:
                if self._skeleton is None:
                    from repro.patterns.pattern import Pattern

                    trace.add("cache_misses")
                    predicates = [predicate for predicate, _ in self.entries]
                    left: list[int] = []
                    right: list[int] = []
                    patterns: list = []
                    seen = set()
                    singles = [Pattern([predicate]) for predicate in predicates]
                    for i in range(len(singles)):
                        for j in range(i + 1, len(singles)):
                            merged = singles[i].merge(singles[j])
                            if len(merged) != 2 or merged in seen:
                                continue
                            seen.add(merged)
                            if not merged.is_satisfiable():
                                continue
                            left.append(i)
                            right.append(j)
                            patterns.append(merged)
                    self._skeleton = (
                        np.array(left, dtype=np.int64),
                        np.array(right, dtype=np.int64),
                        patterns,
                    )
                    self._stats.inc("skeleton_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._skeleton

    def miner_items(self) -> tuple[list[Predicate], np.ndarray]:
        """The miner's view: frequency-ascending predicates + packed tids.

        Built lazily (lattice-only workloads never pack) and cached — the
        sort order and the (K, ceil(n/8)) uint8 tidlist matrix are
        deterministic functions of the alphabet, so one build serves every
        mining query of the audit.  See :mod:`repro.mining.closed` for why
        the order must be frequency-ascending with sort-key tie-breaks.
        """
        if self._miner_items is None:
            with self._lock:
                if self._miner_items is None:
                    trace.add("cache_misses")
                    with trace.span("alphabet.pack_tidlists", entries=len(self.entries)):
                        self._miner_items = self._pack_items()
                    self._stats.inc("tidlist_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._miner_items

    def warm(self, miner: bool = True, skeleton: bool = False) -> "PredicateAlphabet":
        """Eagerly build the lazy views so shared reads never trigger a build.

        ``miner`` packs the tidlist matrix (what the bitset engine reads);
        ``skeleton`` additionally enumerates the level-2 merge skeleton the
        incremental delta path replays.  Idempotent — each build is counted
        by its own stats entry exactly once.
        """
        if miner:
            _ = self.miner_items()
        if skeleton:
            _ = self.pair_skeleton()
        return self

    def record_mining_counters(
        self,
        projection_builds: int = 0,
        tidlist_compressions: int = 0,
        sparse_dispatch_hits: int = 0,
        dense_dispatch_hits: int = 0,
        block_streams: int = 0,
    ) -> None:
        """Flush one search's worth of mining-layer counters.

        The miner tallies its hot-loop events (conditional-database
        projections, dense→sparse tidlist compressions, representation
        dispatch hits) in plain local ints — bumping the lock-protected
        registry per lattice node would put a mutex in the innermost loop —
        and flushes them here once per search, so the benchmarks and RL002
        see them through the same :class:`~repro.obs.metrics.StatsView` as
        every other mining counter.
        """
        if projection_builds:
            self._stats.inc("projection_builds", projection_builds)
        if tidlist_compressions:
            self._stats.inc("tidlist_compressions", tidlist_compressions)
        if sparse_dispatch_hits:
            self._stats.inc("sparse_dispatch_hits", sparse_dispatch_hits)
        if dense_dispatch_hits:
            self._stats.inc("dense_dispatch_hits", dense_dispatch_hits)
        if block_streams:
            self._stats.inc("block_streams", block_streams)


class AlphabetCache:
    """Alphabets of one training table, shared across search queries.

    The cache is bound to a table *instance*: engines handed a cache for a
    different table refuse it rather than silently serving masks for the
    wrong rows.  :meth:`apply_edit` rebinds the cache to the edited table
    after patching every cached alphabet in place.
    """

    def __init__(self, table: Table, metrics: MetricsRegistry | None = None) -> None:
        self.table = table
        self._alphabets: dict[tuple, PredicateAlphabet] = {}
        # Guards cache population so concurrent cold queries on a shared
        # session build one alphabet per key, not one per thread.
        self._lock = threading.Lock()
        self.stats = StatsView(
            {
                "alphabet_builds": 0,
                "tidlist_builds": 0,
                "skeleton_builds": 0,
                "alphabet_patches": 0,
                "tidlist_patches": 0,
                "block_streams": 0,
                "projection_builds": 0,
                "tidlist_compressions": 0,
                "sparse_dispatch_hits": 0,
                "dense_dispatch_hits": 0,
            },
            registry=metrics,
            namespace="mining",
        )

    def get(
        self,
        support_threshold: float,
        num_bins: int = 4,
        exclude_features=None,
    ) -> PredicateAlphabet:
        """The (cached) alphabet for one parameter combination.

        ``exclude_features`` is normalized before keying: ``["a", "b"]``,
        ``("b", "a")``, ``{"a", "b"}``, and repeated calls with any of them
        all resolve to one entry (and a single name is treated as one
        column, not a character set).
        """
        exclude = normalize_exclude_features(exclude_features)
        key = (float(support_threshold), int(num_bins), exclude)
        alphabet = self._alphabets.get(key)
        if alphabet is None:
            with self._lock:
                alphabet = self._alphabets.get(key)
                if alphabet is None:
                    trace.add("cache_misses")
                    alphabet = PredicateAlphabet(
                        self.table, support_threshold, num_bins, exclude, self.stats
                    )
                    self._alphabets[key] = alphabet
                    self.stats.inc("alphabet_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return alphabet

    def apply_edit(self, edit, new_table: Table) -> None:
        """Patch every cached alphabet for ``edit`` and rebind to ``new_table``.

        Row-changing edits patch each alphabet (counted under
        ``alphabet_patches``); relabel-only edits leave masks untouched.
        ``new_table`` must be the edited table the session now serves —
        for relabel-only edits that is the *same* table instance, so
        :meth:`check_table`'s identity check keeps passing.
        """
        if edit.changes_rows:
            for alphabet in self._alphabets.values():
                with trace.span("alphabet.patch", rows=new_table.num_rows):
                    alphabet.apply_edit(edit, new_table)
                self.stats.inc("alphabet_patches")
        self.table = new_table

    def check_table(self, table: Table) -> None:
        """Raise unless ``table`` is the table this cache was built on."""
        if table is not self.table:
            raise ValueError(
                "alphabet cache was built for a different table; per-dataset caches "
                "cannot be shared across training tables"
            )


def resolve_alphabet(
    table: Table,
    alphabet_cache: AlphabetCache | None,
    support_threshold: float,
    num_bins: int,
    exclude_features,
) -> PredicateAlphabet:
    """One alphabet for a search: from the cache if given, else throwaway."""
    if alphabet_cache is None:
        return PredicateAlphabet(table, support_threshold, num_bins, exclude_features)
    alphabet_cache.check_table(table)
    return alphabet_cache.get(support_threshold, num_bins, exclude_features)
