"""Per-dataset cache of the level-1 predicate alphabet and packed tidlists.

Both candidate-generation backends start from the same state: every single
predicate whose support strictly exceeds τ, with its boolean row mask —
the lattice's level 1 and the miner's item alphabet.  Building it scans
every column, bins every numeric feature, and materializes one (n,) mask
per predicate; the miner additionally sorts the alphabet
frequency-ascending and packs the masks into the (K, ceil(n/8)) tidlist
matrix its bitset traversal runs on.  None of that depends on the model,
the metric, or the protected group — only on the training table and the
generation parameters (τ, bins, excluded features) — so an interactive
audit re-running the search for every (metric, group, estimator) pair
should pay it once.

:class:`PredicateAlphabet` is the built state for one parameter key;
:class:`AlphabetCache` owns one table and hands out alphabets keyed by
``(support_threshold, num_bins, exclude_features)``.  Both engines accept
a cache through their ``generate(..., alphabet_cache=...)`` parameter
(:class:`repro.core.AuditSession` threads one through every query);
without a cache each search builds a throwaway alphabet exactly as
before.

``stats`` counts ``alphabet_builds`` (level-1 predicate/mask generation)
and ``tidlist_builds`` (miner-side sort + bit-pack), so the audit
benchmark can assert a whole multi-query audit built each exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.mining.bitset import pack_rows
from repro.patterns.candidates import generate_single_predicates
from repro.patterns.predicate import Predicate
from repro.tabular import Table


class PredicateAlphabet:
    """The level-1 search state for one (table, τ, bins, exclude) key.

    ``entries`` is the list of ``(predicate, mask)`` pairs both engines
    consume, full-coverage predicates already dropped (they "remove the
    entire data" and have no explanatory value); ``num_generated`` keeps
    the pre-filter count the lattice reports as level-1 merges tried.
    Masks are shared read-only across queries — consumers combine them
    with fresh ANDs and never mutate them in place.
    """

    def __init__(
        self,
        table: Table,
        support_threshold: float,
        num_bins: int,
        exclude_features: set[str] | None,
        stats: dict[str, int] | None = None,
    ) -> None:
        singles = generate_single_predicates(
            table, support_threshold, num_bins, exclude_features
        )
        self.num_generated = len(singles)
        self.entries: list[tuple[Predicate, np.ndarray]] = [
            (predicate, mask) for predicate, mask in singles if not mask.all()
        ]
        self.num_rows = table.num_rows
        self._stats = stats if stats is not None else {"tidlist_builds": 0}
        self._stats.setdefault("tidlist_builds", 0)
        self._miner_items: tuple[list[Predicate], np.ndarray] | None = None

    def miner_items(self) -> tuple[list[Predicate], np.ndarray]:
        """The miner's view: frequency-ascending predicates + packed tids.

        Built lazily (lattice-only workloads never pack) and cached — the
        sort order and the (K, ceil(n/8)) uint8 tidlist matrix are
        deterministic functions of the alphabet, so one build serves every
        mining query of the audit.  See :mod:`repro.mining.closed` for why
        the order must be frequency-ascending with sort-key tie-breaks.
        """
        if self._miner_items is None:
            ordered = sorted(
                self.entries, key=lambda pair: (int(pair[1].sum()), pair[0].sort_key())
            )
            predicates = [predicate for predicate, _ in ordered]
            if ordered:
                tids = pack_rows(np.stack([mask for _, mask in ordered]))
            else:
                tids = np.zeros((0, (self.num_rows + 7) // 8), dtype=np.uint8)
            self._miner_items = (predicates, tids)
            self._stats["tidlist_builds"] += 1
        return self._miner_items


class AlphabetCache:
    """Alphabets of one training table, shared across search queries.

    The cache is bound to a table *instance*: engines handed a cache for a
    different table refuse it rather than silently serving masks for the
    wrong rows.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._alphabets: dict[tuple, PredicateAlphabet] = {}
        self.stats = {"alphabet_builds": 0, "tidlist_builds": 0}

    def get(
        self,
        support_threshold: float,
        num_bins: int = 4,
        exclude_features: set[str] | None = None,
    ) -> PredicateAlphabet:
        """The (cached) alphabet for one parameter combination."""
        key = (
            float(support_threshold),
            int(num_bins),
            frozenset(exclude_features or ()),
        )
        if key not in self._alphabets:
            self._alphabets[key] = PredicateAlphabet(
                self.table, support_threshold, num_bins, exclude_features, self.stats
            )
            self.stats["alphabet_builds"] += 1
        return self._alphabets[key]

    def check_table(self, table: Table) -> None:
        """Raise unless ``table`` is the table this cache was built on."""
        if table is not self.table:
            raise ValueError(
                "alphabet cache was built for a different table; per-dataset caches "
                "cannot be shared across training tables"
            )


def resolve_alphabet(
    table: Table,
    alphabet_cache: AlphabetCache | None,
    support_threshold: float,
    num_bins: int,
    exclude_features: set[str] | None,
) -> PredicateAlphabet:
    """One alphabet for a search: from the cache if given, else throwaway."""
    if alphabet_cache is None:
        return PredicateAlphabet(table, support_threshold, num_bins, exclude_features)
    alphabet_cache.check_table(table)
    return alphabet_cache.get(support_threshold, num_bins, exclude_features)
