"""Packed-bitset primitives for the closed-pattern mining engine.

A *tidlist* (transaction-id list) is the set of training rows a predicate —
or a conjunction of predicates — covers.  The miner stores every tidlist as
a packed ``np.uint8`` row of ``ceil(n / 8)`` bytes instead of an ``(n,)``
boolean array, so the working set of a depth-``d`` search path is
``O(d · n/8)`` bytes rather than ``O(level_width · n)``.

Cost model
----------
* ``intersect`` — one vectorized ``bitwise_and`` over ``n/8`` bytes; the
  per-node cost of descending one edge of the pattern lattice.
* ``popcount`` — one table lookup plus a reduction over ``n/8`` bytes (or a
  native ``np.bitwise_count`` where NumPy provides it); the per-node support
  check.
* ``covers_all`` — one broadcast AND + popcount over a ``(k, n/8)`` tidlist
  matrix; the per-node closure computation of the LCM-style miner.

All helpers preserve the invariant that the padding bits of the final byte
are zero: ``pack_rows`` inherits it from ``np.packbits`` (which zero-pads),
and intersections of zero-padded rows stay zero-padded, so popcounts and
byte-wise equality are exact without masking.

Density-adaptive representation
-------------------------------
Deep mining nodes are *sparse*: a depth-3 extent at τ = 1% covers at most
a few percent of the table, yet a packed AND still touches all ``n/8``
bytes.  A second representation lives beside the packed one — a sorted
array of row indices (``int32`` when the index fits, ``int64`` past
2³¹ − 1 rows) — chosen per tidlist by :func:`sparse_eligible`: index form
wins once ``count · 32 ≤ num_rows`` (one 4-byte ``int32`` index per row
versus one bit per table row, with a 4× hysteresis margin so borderline
tidlists stay packed and dense-path popcounts stay vectorized).
``intersect`` / ``popcount`` / ``covers_all`` / ``tid_key`` dispatch on
the representation (``uint8`` dtype ⇒ packed, integer dtype ⇒ sparse):

* sparse × sparse — galloping intersection: binary-search the smaller
  list into the larger, ``O(|small| · log |large|)``.
* sparse × packed — gather the ``|small|`` addressed bits out of the
  packed row (:func:`bit_test`), never expanding the dense side.
* packed × packed — the original vectorized byte AND.

Counts and index sums are pinned to 64-bit accumulators throughout so a
``n > 2³¹``-row table cannot overflow a support counter (the packed
reduction in :func:`popcount` already sums with ``dtype=np.int64``).
"""

from __future__ import annotations

import numpy as np

#: A tidlist flips to the sorted-index representation when
#: ``count * SPARSE_DENSITY <= num_rows`` — i.e. below 1/32 ≈ 3.1% density.
#: At the flip point the index form costs ``4 · n/32 = n/8`` bytes
#: (``int32``), exactly the packed row it replaces; every halving of the
#: density halves it again, while the packed row would stay flat.
SPARSE_DENSITY = 32

_INT32_MAX = np.iinfo(np.int32).max

# np.bitwise_count arrived in NumPy 2.0; the lookup table keeps the miner
# working (at byte-LUT speed) on the 1.x line the CI matrix still includes.
_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
# uint8 entries so the per-byte count matrix is 1 byte per packed byte on
# both branches (the row sums below widen to int64 without a full copy).
_POPCOUNT_LUT = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)


def packed_width(num_rows: int) -> int:
    """Bytes per packed tidlist covering ``num_rows`` rows."""
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    return (num_rows + 7) // 8


def pack_rows(masks: np.ndarray) -> np.ndarray:
    """Pack boolean masks into uint8 rows (one packed row per mask).

    Accepts an ``(n,)`` mask or an ``(m, n)`` mask matrix; returns
    ``(ceil(n/8),)`` or ``(m, ceil(n/8))`` uint8 with zero padding bits.
    """
    masks = np.asarray(masks)
    if masks.dtype != bool:
        raise ValueError(f"masks must be boolean, got dtype {masks.dtype}")
    if masks.ndim == 1:
        return np.packbits(masks)
    if masks.ndim == 2:
        return np.packbits(masks, axis=1)
    raise ValueError(f"masks must be 1-D or 2-D, got shape {masks.shape}")


def unpack_rows(packed: np.ndarray, num_rows: int) -> np.ndarray:
    """Unpack uint8 rows back to boolean masks of length ``num_rows``."""
    packed = np.asarray(packed)
    if packed.dtype != np.uint8:
        raise ValueError(f"packed tidlists must be uint8, got dtype {packed.dtype}")
    width = packed_width(num_rows)
    if packed.shape[-1] != width:
        raise ValueError(
            f"packed width {packed.shape[-1]} does not cover {num_rows} rows "
            f"(expected {width} bytes)"
        )
    if packed.ndim == 1:
        # unpackbits returns a fresh 0/1 buffer, so the bool view is free.
        return np.unpackbits(packed, count=num_rows).view(np.bool_)
    if packed.ndim == 2:
        return np.unpackbits(packed, axis=1, count=num_rows).view(np.bool_)
    raise ValueError(f"packed tidlists must be 1-D or 2-D, got shape {packed.shape}")


def is_sparse(tid: np.ndarray) -> bool:
    """True when ``tid`` is a sorted-index tidlist (integer dtype), False for
    a packed ``uint8`` row."""
    return np.asarray(tid).dtype != np.uint8


def sparse_index_dtype(num_rows: int):
    """Index dtype for sparse tidlists over ``num_rows`` rows: ``int32``
    while the last row id fits, ``int64`` past 2³¹ − 1 rows."""
    return np.int32 if num_rows <= _INT32_MAX else np.int64


def sparse_eligible(count: int, num_rows: int) -> bool:
    """Density rule: index representation once ``count·32 ≤ num_rows``."""
    return count * SPARSE_DENSITY <= num_rows


def to_sparse(tid: np.ndarray, num_rows: int) -> np.ndarray:
    """Sorted-index form of a tidlist (no-op for an already-sparse one)."""
    tid = np.asarray(tid)
    if is_sparse(tid):
        return tid
    return np.flatnonzero(unpack_rows(tid, num_rows)).astype(
        sparse_index_dtype(num_rows), copy=False
    )


def to_packed(tid: np.ndarray, num_rows: int) -> np.ndarray:
    """Packed ``uint8`` form of a tidlist (no-op for an already-packed one)."""
    tid = np.asarray(tid)
    if not is_sparse(tid):
        return tid
    mask = np.zeros(num_rows, dtype=bool)
    mask[tid] = True
    return pack_rows(mask)


def bit_test(packed: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather bits ``indices`` out of a packed row (big-endian bit order):
    row ``r`` lives in byte ``r >> 3`` at bit ``7 - (r & 7)``."""
    indices = np.asarray(indices)
    bits = packed[indices >> 3] >> (7 - (indices & 7)).astype(np.uint8)
    return (bits & 1).astype(bool)


def galloping_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted index arrays via binary search of the
    smaller into the larger — ``O(|small| · log |large|)``, the win over a
    linear merge when the lists are very unequal (a deep extent against a
    level-1 item)."""
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return a
    pos = np.searchsorted(b, a)
    pos[pos == b.size] = b.size - 1
    return a[b[pos] == a]


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two tidlists, dispatching on representation.

    packed × packed returns packed (one vectorized ``bitwise_and``,
    broadcasting like the ufunc); any sparse operand returns sparse —
    galloping for sparse × sparse, a :func:`bit_test` gather for
    sparse × packed.  The result of a mixed intersection is at most as
    large as the sparse side, so staying sparse never loses eligibility.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    a_sparse = is_sparse(a)
    b_sparse = is_sparse(b)
    if not a_sparse and not b_sparse:
        return np.bitwise_and(a, b)
    if a_sparse and b_sparse:
        return galloping_intersect(a, b)
    if a_sparse:
        return a[bit_test(b, a)]
    return b[bit_test(a, b)]


def tid_count(tid: np.ndarray) -> int:
    """Row count of a tidlist in either representation (always a python int,
    immune to 32-bit accumulator overflow)."""
    tid = np.asarray(tid)
    if is_sparse(tid):
        return int(tid.size)
    return int(popcount(tid))


def popcount(packed: np.ndarray) -> np.ndarray | int:
    """Number of set bits per packed row (scalar for a single row).

    For a ``(w,)`` row (or a 0-d single byte) returns an int; for an
    ``(m, w)`` matrix returns an ``(m,)`` int64 array — including the
    degenerate ``(m, 0)`` width, which counts as zero bits per row.  The
    native ``np.bitwise_count`` path and the byte-LUT fallback agree on
    dtype and shape for every input; the CI matrix runs both.  A sparse
    (sorted-index) tidlist dispatches to its length.
    """
    arr = np.asarray(packed)
    if arr.ndim == 1 and arr.dtype.kind in "iu" and arr.dtype != np.uint8:
        return int(arr.size)
    packed = np.asarray(packed, dtype=np.uint8)
    if _HAVE_BITWISE_COUNT:
        counts = np.bitwise_count(packed)
    else:
        counts = _POPCOUNT_LUT[packed]
    if packed.ndim == 0:
        return int(counts)
    # Summing the uint8 byte counts straight into int64 keeps the transient
    # at 1 byte per packed byte; an astype here would hold an 8× copy of
    # the whole batch while the guard popcount of a flush group runs.
    summed = counts.sum(axis=-1, dtype=np.int64)
    return int(summed) if packed.ndim == 1 else summed


def covers_all(tidlists: np.ndarray, extent: np.ndarray) -> np.ndarray:
    """For each packed tidlist, does it cover every row of ``extent``?

    ``tidlists`` is a ``(k, w)`` packed matrix; ``extent`` is a ``(w,)``
    packed row or a sparse index tidlist.  Returns a ``(k,)`` boolean array
    with ``out[i]`` true iff ``tidlists[i] ⊇ extent`` — the closure
    membership test, one broadcast AND over the whole alphabet per lattice
    node.  A sparse extent gathers only its ``(k, count)`` addressed bits
    instead of touching all ``k · n/8`` bytes.
    """
    extent = np.asarray(extent)
    if is_sparse(extent):
        if extent.size == 0:
            return np.ones(tidlists.shape[0], dtype=bool)
        bits = (tidlists[:, extent >> 3] >> (7 - (extent & 7)).astype(np.uint8)) & 1
        return bits.all(axis=1)
    return ~np.any((tidlists & extent[None, :]) != extent[None, :], axis=1)


def extent_key(packed: np.ndarray) -> bytes:
    """Hashable identity of a packed extent (padding bits are zero, so equal
    row sets always map to equal keys)."""
    return np.ascontiguousarray(packed).tobytes()


def tid_key(tid: np.ndarray, num_rows: int) -> bytes:
    """Hashable identity of a tidlist in *either* representation.

    Equal row sets map to equal keys regardless of how the tidlist is
    stored: the key canonicalizes through the density rule — index bytes
    (prefixed to stay disjoint from packed bytes) below the
    :data:`SPARSE_DENSITY` threshold, packed bytes above it — converting
    whichever form it was handed.  ``O(min(count·log, n/8))`` like the
    operations themselves.
    """
    tid = np.asarray(tid)
    count = tid_count(tid)
    if sparse_eligible(count, num_rows):
        indices = to_sparse(tid, num_rows)
        return b"s" + np.ascontiguousarray(indices.astype(np.int64, copy=False)).tobytes()
    return extent_key(to_packed(tid, num_rows))
