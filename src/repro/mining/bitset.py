"""Packed-bitset primitives for the closed-pattern mining engine.

A *tidlist* (transaction-id list) is the set of training rows a predicate —
or a conjunction of predicates — covers.  The miner stores every tidlist as
a packed ``np.uint8`` row of ``ceil(n / 8)`` bytes instead of an ``(n,)``
boolean array, so the working set of a depth-``d`` search path is
``O(d · n/8)`` bytes rather than ``O(level_width · n)``.

Cost model
----------
* ``intersect`` — one vectorized ``bitwise_and`` over ``n/8`` bytes; the
  per-node cost of descending one edge of the pattern lattice.
* ``popcount`` — one table lookup plus a reduction over ``n/8`` bytes (or a
  native ``np.bitwise_count`` where NumPy provides it); the per-node support
  check.
* ``covers_all`` — one broadcast AND + popcount over a ``(k, n/8)`` tidlist
  matrix; the per-node closure computation of the LCM-style miner.

All helpers preserve the invariant that the padding bits of the final byte
are zero: ``pack_rows`` inherits it from ``np.packbits`` (which zero-pads),
and intersections of zero-padded rows stay zero-padded, so popcounts and
byte-wise equality are exact without masking.
"""

from __future__ import annotations

import numpy as np

# np.bitwise_count arrived in NumPy 2.0; the lookup table keeps the miner
# working (at byte-LUT speed) on the 1.x line the CI matrix still includes.
_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POPCOUNT_LUT = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)


def packed_width(num_rows: int) -> int:
    """Bytes per packed tidlist covering ``num_rows`` rows."""
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    return (num_rows + 7) // 8


def pack_rows(masks: np.ndarray) -> np.ndarray:
    """Pack boolean masks into uint8 rows (one packed row per mask).

    Accepts an ``(n,)`` mask or an ``(m, n)`` mask matrix; returns
    ``(ceil(n/8),)`` or ``(m, ceil(n/8))`` uint8 with zero padding bits.
    """
    masks = np.asarray(masks)
    if masks.dtype != bool:
        raise ValueError(f"masks must be boolean, got dtype {masks.dtype}")
    if masks.ndim == 1:
        return np.packbits(masks)
    if masks.ndim == 2:
        return np.packbits(masks, axis=1)
    raise ValueError(f"masks must be 1-D or 2-D, got shape {masks.shape}")


def unpack_rows(packed: np.ndarray, num_rows: int) -> np.ndarray:
    """Unpack uint8 rows back to boolean masks of length ``num_rows``."""
    packed = np.asarray(packed)
    if packed.dtype != np.uint8:
        raise ValueError(f"packed tidlists must be uint8, got dtype {packed.dtype}")
    width = packed_width(num_rows)
    if packed.shape[-1] != width:
        raise ValueError(
            f"packed width {packed.shape[-1]} does not cover {num_rows} rows "
            f"(expected {width} bytes)"
        )
    if packed.ndim == 1:
        return np.unpackbits(packed, count=num_rows).astype(bool)
    if packed.ndim == 2:
        return np.unpackbits(packed, axis=1, count=num_rows).astype(bool)
    raise ValueError(f"packed tidlists must be 1-D or 2-D, got shape {packed.shape}")


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND of packed tidlists (broadcasts like ``np.bitwise_and``)."""
    return np.bitwise_and(a, b)


def popcount(packed: np.ndarray) -> np.ndarray | int:
    """Number of set bits per packed row (scalar for a single row).

    For a ``(w,)`` row (or a 0-d single byte) returns an int; for an
    ``(m, w)`` matrix returns an ``(m,)`` int64 array — including the
    degenerate ``(m, 0)`` width, which counts as zero bits per row.  The
    native ``np.bitwise_count`` path and the byte-LUT fallback agree on
    dtype and shape for every input; the CI matrix runs both.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if _HAVE_BITWISE_COUNT:
        counts = np.bitwise_count(packed).astype(np.int64)
    else:
        counts = _POPCOUNT_LUT[packed]
    if packed.ndim == 0:
        return int(counts)
    summed = counts.sum(axis=-1, dtype=np.int64)
    return int(summed) if packed.ndim == 1 else summed


def covers_all(tidlists: np.ndarray, extent: np.ndarray) -> np.ndarray:
    """For each packed tidlist, does it cover every row of ``extent``?

    ``tidlists`` is a ``(k, w)`` packed matrix, ``extent`` a ``(w,)`` packed
    row.  Returns a ``(k,)`` boolean array with ``out[i]`` true iff
    ``tidlists[i] ⊇ extent`` — the closure membership test, one broadcast
    AND over the whole alphabet per lattice node.
    """
    return ~np.any((tidlists & extent[None, :]) != extent[None, :], axis=1)


def extent_key(packed: np.ndarray) -> bytes:
    """Hashable identity of a packed extent (padding bits are zero, so equal
    row sets always map to equal keys)."""
    return np.ascontiguousarray(packed).tobytes()
