"""Closed-pattern mining: a packed-bitset candidate-generation backend.

The subsystem has three layers:

* :mod:`repro.mining.bitset` — packed tidlist primitives (AND, popcount,
  closure cover tests, extent hashing);
* :mod:`repro.mining.closed` — LCM-style depth-first closed-pattern
  enumeration with support and responsibility pruning, scoring buffered
  frontiers through the packed batched influence API;
* :mod:`repro.mining.engine` — the :class:`CandidateEngine` strategy
  protocol with :class:`LatticeEngine` (Algorithm 1 as published) and
  :class:`ClosedMiningEngine` (this subsystem) as interchangeable
  backends behind ``GopherConfig(engine=...)``.
"""

from repro.mining.alphabet import AlphabetCache, PredicateAlphabet, resolve_alphabet
from repro.mining.bitset import (
    covers_all,
    extent_key,
    intersect,
    pack_rows,
    packed_width,
    popcount,
    unpack_rows,
)
from repro.mining.closed import MinedCandidates, mine_closed_candidates
from repro.mining.engine import (
    CandidateEngine,
    CandidateResult,
    ClosedMiningEngine,
    LatticeEngine,
    as_candidate_result,
    list_engines,
    make_engine,
)

__all__ = [
    "AlphabetCache",
    "CandidateEngine",
    "CandidateResult",
    "ClosedMiningEngine",
    "LatticeEngine",
    "MinedCandidates",
    "PredicateAlphabet",
    "as_candidate_result",
    "resolve_alphabet",
    "covers_all",
    "extent_key",
    "intersect",
    "list_engines",
    "make_engine",
    "mine_closed_candidates",
    "pack_rows",
    "packed_width",
    "popcount",
    "unpack_rows",
]
