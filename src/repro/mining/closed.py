"""Closed-pattern enumeration over packed tidlists (vertical mining).

The lattice search of Algorithm 1 (``repro.patterns.lattice``) enumerates
*patterns* level by level, so several candidates describing the exact same
training subset — the same *extent* — are all generated and (unless one
collapses onto a direct parent) all evaluated.  This module enumerates one
node per distinct extent instead, depth-first by vertical tidlist
intersection (the Eclat/LCM family of miners, cf. scikit-mine), with the
paper's two pruning heuristics applied per node.

The item alphabet is the level-1 predicate set of Algorithm 1 (every
single predicate whose support strictly exceeds τ), each carrying its
packed tidlist, ordered frequency-ascending.  A search node is the extent
``e = ⋂ tid`` of a *strictly shrinking* ascending item path — extensions
that leave the extent unchanged (items already in its closure) are
skipped, so path depth equals generator size and the ``max_predicates``
cap bounds exactly the pattern sizes Algorithm 1 explores.  Every such
extent is closed (it equals the intersection of all alphabet tidlists
covering it), and sibling/cross-branch duplicates are deduplicated by
extent key, so each distinct extent is scored once.  Classic LCM instead
walks prefix-preserving *closure* extensions; that enumeration is
output-linear but its canonical paths can be longer than the smallest
generator, which under a generator-size cap silently loses extents the
lattice reaches — completeness matters more here than per-node
output-linearity.

Cost model
----------
* **start-up** — one packed tidlist per level-1 predicate (``K · n/8``
  bytes) plus one batched influence query over the distinct level-1
  extents (exactly the evaluations Algorithm 1 spends on level 1, minus
  duplicate extents).
* **per node** — one bitset AND + one popcount per attempted extension
  (support check; see ``repro.mining.bitset``).  No influence work, no
  boolean masks.
* **per buffer** — frontier nodes are buffered up to ``batch_size`` packed
  extents and scored in one ``bias_change_batch(packed, num_rows=n)``
  call; the estimator unpacks the buffer chunk-by-chunk internally, so the
  search never materializes an (m, n) boolean mask matrix (one unpack +
  one GEMM per chunk — the packed cost model of
  ``repro.influence.estimators``).
* **per emitted extent** — one broadcast AND + popcount against the
  ``(K, n/8)`` tidlist matrix to recover the closure, then the generator
  replay of :class:`_GeneratorReplay` to pick the reported pattern.

Memory per search path is ``O(depth · n/8)`` for the extents plus the
``O(batch_size · n/8)`` packed buffer, instead of the
``O(level_width · n)`` boolean masks the lattice holds per level.

Conditional-database projection (``projection="auto"``, the default)
replaces both ``n/8`` terms with *parent-extent-proportional* ones: a
branch whose extent shrinks below ``1/_PROJECT_SHRINK`` of its space is
re-packed into a dense local coordinate space (LCM2-style) carrying the
still-extendable items' tidlists at ``ceil(count/8)`` bytes each, so the
per-node AND/popcount below it costs ``count/8`` — and the one-off
projection costs the same bytes one round of child ANDs would have.
Extent identity switches from packed bytes (``n/8`` per retained key) to
an O(1)-sized set-homomorphic digest, global tidlists handed to the
estimator switch to the sparse index representation below the
``repro.mining.bitset`` density threshold (the estimator consumes index
batches directly — no pack/unpack round trip), and flush groups are
byte-capped, so the frontier's peak memory is bounded by constants and
by extent sizes, not by the table's row count.  ``projection="never"``
preserves the flat traversal byte-for-byte; all modes visit the same
nodes and emit identical candidates (the projection property suite and
the engine-equivalence suite pin this).

Pruning mirrors Algorithm 1: support must stay strictly above τ
(anti-monotone, kills the subtree), and with ``prune_by_responsibility`` a
node survives only when its estimated responsibility strictly exceeds the
responsibility of its in-window ancestors (see
:func:`repro.patterns.lattice._parent_bar` for the root-cause window).
At depth 2 the DFS parent and extension item are exactly the lattice's
two merge parents.  Deeper, a *descent-bar cache* reconstructs the
lattice's merge-pair bars extent-wise: the traversal records every scored
extent as survived or defeated, and a depth-k extension looks up the
extents of its other (k−1)-sub-patterns — known survivors raise the bar
exactly as a producing merge parent would, and when every one of them is
known-defeated the pattern is unformable in the lattice (no surviving
pair can merge to it) and the branch is skipped without an influence
evaluation.  Unknown sub-extents stay conservative (no bar raise, no
veto), so a missed lookup degrades to the one-sided DFS-parent bar rather
than over-pruning.  Two path-level gaps versus Algorithm 1 remain
inherent to depth-first search and are accepted (the engine equivalence
suite pins the workloads where they never fire):

* pruning a node kills its whole ascending subtree, while the lattice
  can still reach a deeper pattern through an alternative surviving
  merge pair (e.g. ``abc`` via ``ac``+``bc`` after ``ab`` died);
* the lattice's own bar is path-dependent — each merged pattern is
  tested against the *first producing pair* in its deterministic bucket
  order — which the extent-level emission replay below approximates
  order-independently with all surviving sub-patterns.

Because several patterns can share one closed extent, each emitted node is
reported under a *representative* pattern: the lexicographically smallest
generator of its extent (in the canonical predicate order) that the
lattice's pruning would also have let through — which is exactly the
pattern Algorithm 2's deterministic tie-break would pick among the
lattice's duplicates, so the two engines agree on top-k output while the
miner evaluates each distinct extent once.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.influence.estimators import InfluenceEstimator
from repro.mining.alphabet import PredicateAlphabet
from repro.mining.bitset import (
    bit_test,
    covers_all,
    extent_key,
    intersect,
    is_sparse,
    pack_rows,
    popcount,
    sparse_eligible,
    sparse_index_dtype,
    to_packed,
    to_sparse,
    unpack_rows,
)
from repro.obs import trace
from repro.patterns.lattice import LatticeLevelStats, PatternStats, _baseline, _parent_bar
from repro.patterns.pattern import Pattern
from repro.patterns.predicate import Predicate
from repro.tabular import Table

#: Project a branch once its extent is this many times smaller than its
#: current coordinate space ("auto" mode).  Below 1/8 density the re-pack
#: pays for itself within one level: building the conditional database
#: costs one pass over the remaining items' local tidlists — the same
#: bytes a single round of child ANDs would have touched — and every
#: deeper AND, popcount, key, and co-parent lookup then runs over
#: ``count/8`` bytes instead of the parent space's width.
_PROJECT_SHRINK = 8

#: Items per chunk when re-packing a conditional database: bounds the
#: transient unpacked (items, count) bit matrix to chunk·count bytes.
_PROJECT_ITEM_CHUNK = 64

#: Below this many table rows, "auto" runs the flat (never-mode) search.
#: The projection machinery adds per-node work the flat search doesn't
#: do — member digests for sparse-eligible extents, a popcount per
#: descent-bar lookup, dense→sparse compressions, conditional-database
#: builds — and on a table small enough to sit in cache every full-width
#: AND and scoring pass is already near-free, so there is nothing for
#: that machinery to save.  Auto switches it on only once the byte
#: traffic it removes is worth the bookkeeping it adds.
_AUTO_DIGEST_MIN_ROWS = 1 << 17

#: Byte cap on one flush group's materialized global tidlists.  Local
#: extents are expanded to global coordinates only for scoring; capping
#: the group keeps that transient — and the stacked copy the estimator
#: sees — independent of how many rows the table has.
_FLUSH_GROUP_BYTES = 1 << 25


class _Space:
    """One conditional database: an ancestor extent re-packed densely.

    Projection (LCM2-style) re-indexes the surviving rows of a node's
    extent into a *local* coordinate space of ``count`` rows: ``rows``
    maps local index → global row id (``None`` for the root space, where
    the two coincide), and ``tids`` holds the still-extendable items'
    tidlists re-packed to ``ceil(count/8)`` bytes each — only items above
    the path's last item (``base``), which is every item a descendant (or
    a co-parent lookup, see ``children``) can ever AND with.  Child
    intersections inside a space are *rows of the matrix*: the projection
    already performed the AND, so extending by item ``j`` is a view plus
    a popcount over ``count/8`` bytes instead of ``n/8``.

    ``hvals`` are the space's slice of the global digest values (see
    ``mine_closed_candidates``): extents that live in different spaces
    hash to the same key whenever they cover the same global rows, which
    is what lets the sibling/descent-bar dedup work across spaces.
    """

    __slots__ = ("rows", "num_local", "base", "tids", "depth", "parent", "_hvals", "_hsource")

    def __init__(
        self,
        rows: np.ndarray | None,
        num_local: int,
        base: int,
        tids: np.ndarray,
        depth: int,
        parent: "_Space | None",
        hsource: np.ndarray | None,
    ) -> None:
        self.rows = rows
        self.num_local = num_local
        self.base = base
        self.tids = tids
        self.depth = depth
        self.parent = parent
        self._hvals: np.ndarray | None = None
        self._hsource = hsource

    def tid(self, j: int) -> np.ndarray:
        """The packed local tidlist of (global) item index ``j``."""
        return self.tids[j - self.base]

    @property
    def hvals(self) -> np.ndarray:
        if self._hvals is None:
            assert self._hsource is not None
            self._hvals = (
                self._hsource if self.rows is None else self._hsource[self.rows]
            )
        return self._hvals


@dataclass
class _Node:
    """One extent on the search frontier."""

    extent: np.ndarray  # packed row mask of the extent, local to ``space``
    count: int  # |extent|
    items: tuple[int, ...]  # the ascending item path (= the generator)
    depth: int  # number of extension items on the path (= generator size)
    bar: float  # responsibility the node must strictly exceed
    space: _Space  # the coordinate space ``extent`` is packed in
    key: object = None  # hashable global identity of the extent
    responsibility: float = 0.0
    bias_change: float = 0.0

    @property
    def last_item(self) -> int:
        """Index of the last extension item on the path (-1 at the root)."""
        return self.items[-1] if self.items else -1


@dataclass
class MinedCandidates:
    """Raw miner output, wrapped into a ``CandidateResult`` by the engine.

    ``levels`` maps the miner's per-depth accounting onto the lattice's
    Table-7 shape: candidates = nodes surviving pruning at that depth,
    merges tried = attempted extensions, seconds = that depth's share of
    *influence-evaluation* time (flushes of the packed buffer).  Bitset
    traversal and the emission replay are not in any depth bucket, so the
    per-depth seconds sum to less than the engine's wall time — unlike
    the lattice, whose level timers are wall-clock per level.
    """

    candidates: list[PatternStats]
    levels: list[LatticeLevelStats]
    num_evaluated: int
    num_closed: int


class _InfluenceCache:
    """Extent-keyed influence results, filled by batched packed queries.

    ``key_fn`` maps a *global* tidlist (packed row or sparse index array)
    to its hashable identity — raw packed bytes for the unprojected
    search, the digest key under projection.  Tidlists flow to the
    estimator in whatever representation they arrive: packed rows are
    stacked into one ``bias_change_batch(packed, num_rows=n)`` call and
    sparse index arrays go through the estimator's index-streamed batch
    entry *as indices* — no pack/unpack round-trip on either path.
    """

    def __init__(
        self,
        estimator: InfluenceEstimator,
        num_rows: int,
        batch_size: int,
        key_fn=extent_key,
    ) -> None:
        self.estimator = estimator
        self.num_rows = num_rows
        self.batch_size = batch_size
        self.key_fn = key_fn
        self.baseline = _baseline(estimator)
        self.by_key: dict[object, tuple[float, float]] = {}
        self.num_evaluated = 0

    def evaluate(self, extents: list[np.ndarray]) -> None:
        """Score every not-yet-seen extent, ``batch_size`` per packed call."""
        self.evaluate_pairs([(self.key_fn(extent), extent) for extent in extents])

    def evaluate_pairs(self, pairs: list[tuple[object, np.ndarray]]) -> None:
        """Score every not-yet-seen ``(key, global tidlist)`` pair."""
        fresh: list[tuple[object, np.ndarray]] = []
        claimed: set[object] = set()
        for key, extent in pairs:
            if key not in self.by_key and key not in claimed:
                claimed.add(key)
                fresh.append((key, extent))
        if not fresh:
            return
        with trace.span("mining.flush", extents=len(fresh)):
            for start in range(0, len(fresh), self.batch_size):
                chunk = fresh[start : start + self.batch_size]
                dense = [(key, tid) for key, tid in chunk if not is_sparse(tid)]
                sparse = [(key, tid) for key, tid in chunk if is_sparse(tid)]
                if dense:
                    packed = np.stack([tid for _, tid in dense])
                    self._store(
                        dense,
                        self.estimator.bias_change_batch(packed, num_rows=self.num_rows),
                    )
                if sparse:
                    indices = [tid for _, tid in sparse]
                    self._store(
                        sparse,
                        self.estimator.bias_change_batch(indices, num_rows=self.num_rows),
                    )
                self.num_evaluated += len(chunk)

    def _store(self, pairs: list[tuple[object, np.ndarray]], bias_changes: np.ndarray) -> None:
        if self.baseline != 0.0:
            responsibilities = -bias_changes / self.baseline
        else:
            responsibilities = np.zeros_like(bias_changes)
        for (key, _), resp, dbias in zip(pairs, responsibilities, bias_changes):
            self.by_key[key] = (float(resp), float(dbias))

    def lookup(self, extent: np.ndarray) -> tuple[float, float]:
        return self.by_key[self.key_fn(extent)]

    def responsibility_of(self, extent: np.ndarray) -> float | None:
        found = self.by_key.get(self.key_fn(extent))
        return None if found is None else found[0]


def mine_closed_candidates(
    table: Table,
    estimator: InfluenceEstimator,
    support_threshold: float = 0.05,
    max_predicates: int = 3,
    num_bins: int = 4,
    exclude_features: set[str] | None = None,
    prune_by_responsibility: bool = True,
    min_responsibility: float = 0.0,
    max_responsibility: float = 1.25,
    batch_size: int = 1024,
    alphabet=None,
    projection: str = "auto",
) -> MinedCandidates:
    """Mine all closed candidate explanations of ``table``.

    Parameters mirror :func:`repro.patterns.lattice.compute_candidates`
    exactly — the two are interchangeable candidate-generation backends
    behind :class:`repro.mining.engine.CandidateEngine`.  ``batch_size``
    bounds how many packed extents are buffered per influence call (the
    boolean unpack inside the estimator is further chunked, so it does not
    bound mask memory — the packed representation does).  ``alphabet`` is
    an optional pre-built :class:`repro.mining.alphabet.PredicateAlphabet`
    whose frequency-ascending packed tidlists are reused instead of
    re-generated — how an :class:`repro.core.AuditSession` shares one
    tidlist build across every query of an audit.

    ``projection`` selects the conditional-database strategy.  ``"never"``
    is the flat traversal: every extension ANDs two global ``n/8``-byte
    rows and every extent key is its packed bytes.  ``"auto"`` (the
    default) projects a node's extent into a dense local coordinate space
    once it has shrunk below ``1/_PROJECT_SHRINK`` of its current space —
    descendants then pay ``count/8`` bytes per AND — and switches global
    tidlists to the sparse index representation for keys, scoring, and
    co-parent lookups where the density rule of ``repro.mining.bitset``
    says indices are cheaper.  ``"always"`` projects at every eligible
    branch regardless of shrinkage (the property suite's worst case).
    All three traverse the identical node set and emit identical
    candidates; they differ only in representation.
    """
    if max_predicates < 1:
        raise ValueError(f"max_predicates must be >= 1, got {max_predicates}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if projection not in ("auto", "always", "never"):
        raise ValueError(
            f"projection must be 'auto', 'always', or 'never', got {projection!r}"
        )
    num_rows = table.num_rows
    if num_rows != estimator.num_train:
        raise ValueError(
            f"table rows ({num_rows}) must match estimator training rows "
            f"({estimator.num_train}); patterns quantify over the training data"
        )

    start = time.perf_counter()
    if alphabet is None:
        alphabet = PredicateAlphabet(
            table, support_threshold, num_bins, exclude_features
        )
    # Frequency-ascending item order (LCM's standard heuristic), sort-key
    # tie-broken for determinism, full-coverage predicates dropped.
    # Rarest-first matters beyond speed here: an item subsumed by another
    # (e.g. ``age >= 46`` inside ``age >= 38``) must come *before* its
    # subsumer, so closures list subsuming items after the canonical prefix
    # and nested-threshold chains don't inflate the canonical path depth
    # past the generator size.  The ordered predicates and the packed
    # (K, w) tidlist matrix are built once per alphabet and shared across
    # queries.
    predicates, tids = alphabet.miner_items()
    if not predicates:
        return MinedCandidates([], [LatticeLevelStats(1, 0, 0, time.perf_counter() - start)], 0, 0)
    num_items = len(predicates)

    use_digest = projection == "always" or (
        projection == "auto" and num_rows >= _AUTO_DIGEST_MIN_ROWS
    )
    if use_digest:
        # Two-tier extent identity, branch chosen by the *global* density
        # rule so every representation of the same row set lands in the
        # same branch:
        #
        # * sparse-eligible (count·32 ≤ n) — set-homomorphic digest: each
        #   row carries a fixed random 64-bit value and the key is
        #   (count, Σ values mod 2⁶⁴).  O(count) from an index tidlist,
        #   coordinate-space independent, O(8n) to store the values once.
        # * dense — (count, hash of the global packed bytes).  One n/8
        #   memcpy + siphash instead of an O(n) member extraction — the
        #   extraction cost is exactly what made digest keys lose to the
        #   flat search's raw-bytes keys on dense sub-extent lookups.
        #   Only the 64-bit hash is retained, so the survived/defeated
        #   caches stay O(1) per extent either way.
        #
        # A sparse-eligible extent can never be packed-keyed (or vice
        # versa): eligibility depends only on the count, which both
        # branches carry.  A collision needs two same-size extents whose
        # digests or byte hashes agree mod 2⁶⁴: union-bound
        # ≈ (#distinct extents)² / 2⁶⁵, vanishing for any feasible
        # search, and a false merge only skips one subtree re-walk.  The
        # seed is fixed so a search is reproducible run-to-run.
        hsource = np.random.default_rng(0x9E3779B97F4A7C15 ^ num_rows).integers(
            0, np.iinfo(np.uint64).max, size=num_rows, dtype=np.uint64
        )
    else:
        hsource = None
    root_space = _Space(None, num_rows, 0, tids, 0, None, hsource)

    def space_key(tid: np.ndarray, space: _Space, count: int | None = None):
        """Hashable global identity of a tidlist local to ``space``."""
        if not use_digest:
            return extent_key(tid)
        if is_sparse(tid):
            return (int(tid.size), int(space.hvals[tid].sum(dtype=np.uint64)))
        if count is None:
            count = int(popcount(tid))
        if sparse_eligible(count, num_rows):
            # Globally sparse-eligible but still packed (a sub-extent that
            # was never compressed): member digest, the same value its
            # index form would hash to.
            members = np.flatnonzero(unpack_rows(tid, space.num_local))
            return (count, int(space.hvals[members].sum(dtype=np.uint64)))
        if space.rows is not None:
            members = np.flatnonzero(unpack_rows(tid, space.num_local))
            mask = np.zeros(num_rows, dtype=bool)
            mask[space.rows[members]] = True
            tid = pack_rows(mask)
        return (count, hash(extent_key(tid)))

    def global_key(tid: np.ndarray):
        """Key of a tidlist already in global coordinates (the cache's view)."""
        return space_key(tid, root_space)

    # Hot-loop event tallies, flushed to the alphabet's StatsView once per
    # search (a registry bump per lattice node would put a lock in the
    # innermost loop).
    counters = {
        "projection_builds": 0,
        "tidlist_compressions": 0,
        "sparse_dispatch_hits": 0,
        "dense_dispatch_hits": 0,
    }

    def project(node: _Node) -> _Space:
        """Re-pack ``node``'s extent into a dense local space (the
        conditional database of its branch)."""
        space = node.space
        base = node.last_item + 1
        with trace.span("mining.project", rows=node.count, depth=node.depth):
            if is_sparse(node.extent):
                members = node.extent
            else:
                members = np.flatnonzero(unpack_rows(node.extent, space.num_local))
            rows = members if space.rows is None else space.rows[members]
            sub = space.tids[base - space.base :]
            cols = members >> 3
            shifts = (7 - (members & 7)).astype(np.uint8)
            local = np.empty((sub.shape[0], (members.size + 7) // 8), dtype=np.uint8)
            # Chunk over items so the transient unpacked (items, count) bit
            # matrix stays bounded regardless of alphabet size.
            for s0 in range(0, sub.shape[0], _PROJECT_ITEM_CHUNK):
                bits = (sub[s0 : s0 + _PROJECT_ITEM_CHUNK, cols] >> shifts) & np.uint8(1)
                local[s0 : s0 + _PROJECT_ITEM_CHUNK] = np.packbits(bits, axis=1)
            counters["projection_builds"] += 1
            return _Space(rows, int(members.size), base, local, node.depth, space, hsource)

    def global_tid(node: _Node) -> np.ndarray:
        """``node``'s extent in global coordinates, density-canonical.

        Sparse-eligible extents come back as sorted global row indices
        (what the estimator's index-streamed batch path consumes
        directly); denser ones as a packed global row.  In the
        unprojected search every extent already *is* a packed global row
        and is returned as-is — byte-identical to the historical path.
        """
        space = node.space
        if space.rows is None:
            if is_sparse(node.extent):
                return node.extent.astype(sparse_index_dtype(num_rows), copy=False)
            if use_digest and sparse_eligible(node.count, num_rows):
                counters["tidlist_compressions"] += 1
                return np.flatnonzero(unpack_rows(node.extent, num_rows)).astype(
                    sparse_index_dtype(num_rows), copy=False
                )
            return node.extent
        if is_sparse(node.extent):
            members = node.extent
        else:
            members = np.flatnonzero(unpack_rows(node.extent, space.num_local))
        # space.rows is ascending and members indexes it in ascending order,
        # so the gathered global rows arrive sorted.
        rows = space.rows[members]
        if sparse_eligible(node.count, num_rows):
            counters["tidlist_compressions"] += 1
            return rows.astype(sparse_index_dtype(num_rows), copy=False)
        mask = np.zeros(num_rows, dtype=bool)
        mask[rows] = True
        return pack_rows(mask)

    cache = _InfluenceCache(
        estimator, num_rows, batch_size, key_fn=global_key if use_digest else extent_key
    )
    # Level-1 pre-pass: every distinct item extent in one batched sweep —
    # the same influence work Algorithm 1 spends on level 1, minus
    # duplicate extents — so every deeper node can form its pruning bar
    # from its extension item's responsibility.
    cache.evaluate(list(tids))
    item_resp = np.array([cache.lookup(tids[j])[0] for j in range(num_items)])

    tried = _DepthCounter()
    survivors = _DepthCounter()
    seconds = _DepthCounter()

    # Sub-extent → descent-bar cache (the lattice's merge-pair bars,
    # reconstructed extent-wise).  ``survived`` maps the extent of every
    # node that passed pruning to its responsibility; ``defeated`` holds
    # extents scored and pruned on every path walked so far.  A deep node's
    # merge parents in Algorithm 1 are its (k−1)-sub-patterns — for the
    # path P extended by item j those are P itself (the DFS parent) and
    # (P∖{x})∪{j} for each x in P, whose extents are cheap tidlist ANDs.
    # The depth-first order visits (and batches) those sub-extents before P
    # is expanded in all but batch-boundary races, so the lookup almost
    # always resolves.
    survived: dict[bytes, float] = {}
    defeated: set[bytes] = set()

    def children(node: _Node) -> list[_Node]:
        out: list[_Node] = []
        siblings: set[object] = set()
        space = node.space
        if node.last_item + 1 >= num_items:
            return out
        # Branch projection: once an extent has shrunk well below its
        # current coordinate space, re-pack it so every descendant AND and
        # popcount runs over count/8 bytes.  The root level never projects
        # (children of the root are the items themselves); "always" skips
        # only the shrinkage test, not the depth gate.
        do_project = (
            use_digest
            and node.depth >= 1
            and (
                projection == "always"
                or node.count * _PROJECT_SHRINK <= space.num_local
            )
        )
        if do_project:
            child_space = project(node)
            # One vectorized popcount over the conditional database gives
            # every extension's support at once.
            child_counts = popcount(child_space.tids)
        else:
            child_space = space
            child_counts = None
        deep = prune_by_responsibility and node.depth >= 2
        if deep:
            # Extents of P∖{x}, shared by every extension of this node.
            # Each is built in the deepest ancestor space that conditions
            # on at most ``drop`` path items — the projected spaces only
            # carry tidlists for items *after* their branch point, and
            # every kept item (and every extension j) is after the
            # ancestor's, so the AND chain stays inside that space and
            # costs its local width instead of n/8.  Sparse-eligible
            # co-parents switch to index form: the per-extension
            # refinement below is then an O(count) bit gather instead of
            # a full-width AND.
            co_parents: list[tuple[_Space, np.ndarray | None]] = []
            with trace.span("mining.sparse_and", drops=node.depth):
                for drop in range(node.depth):
                    anc = space
                    while anc.parent is not None and anc.depth > drop:
                        anc = anc.parent
                    kept = [
                        item
                        for pos, item in enumerate(node.items)
                        if pos != drop and pos >= anc.depth
                    ]
                    if kept:
                        co = anc.tid(kept[0])
                        for item in kept[1:]:
                            co = intersect(co, anc.tid(item))
                        if use_digest and sparse_eligible(int(popcount(co)), anc.num_local):
                            co = np.flatnonzero(unpack_rows(co, anc.num_local))
                            counters["tidlist_compressions"] += 1
                    else:
                        # Every kept item is conditioned into the ancestor
                        # space itself: the co-parent is the whole space.
                        co = None
                    co_parents.append((anc, co))
        for j in range(node.last_item + 1, num_items):
            tried.add(node.depth + 1, 1)
            if child_counts is not None:
                extent = child_space.tids[j - child_space.base]
                count = int(child_counts[j - child_space.base])
            else:
                extent = intersect(node.extent, space.tid(j))
                count = int(popcount(extent))
            if count == node.count:
                # Item j covers the whole extent (it is in the closure):
                # the pattern gains a redundant predicate and nothing
                # shrinks.  Skipping keeps path depth equal to generator
                # size, which is what the max_predicates cap must bound.
                continue
            # Same expression as the lattice's support check — support is
            # a float division there, and τ·n can round differently.
            if count / num_rows <= support_threshold:
                continue
            if (
                use_digest
                and not is_sparse(extent)
                and sparse_eligible(count, child_space.num_local)
            ):
                # Density-adaptive node extents: below the cutoff the
                # surviving extent switches to index form at creation —
                # its key costs O(count) instead of an O(num_local) member
                # extraction, descendant ANDs become bit gathers, and the
                # estimator consumes the indices directly at scoring time.
                extent = to_sparse(extent, child_space.num_local)
                counters["tidlist_compressions"] += 1
            key = space_key(extent, child_space, count)
            if key in siblings:
                # A sibling with a smaller extension item reached the same
                # extent; its subtree covers a superset of this one's
                # extension range, so this branch adds nothing.
                continue
            if not prune_by_responsibility or node.depth == 0:
                bar = -np.inf
            elif node.depth == 1:
                # A depth-2 node's DFS parent and extension item are
                # exactly the lattice's two level-1 merge parents.
                bar = _parent_bar(node.responsibility, item_resp[j], max_responsibility)
            else:
                # Deeper, the lattice's merge parents are the (k−1)-sub-
                # patterns (P∖{x})∪{j}, not the level-1 extension item.
                # Their extents are looked up in the descent-bar cache:
                # every known-surviving one raises the bar exactly as a
                # producing merge parent would, and when *all* of them are
                # known-defeated the lattice has no surviving pair left to
                # merge — the pattern is unformable and the whole branch
                # (evaluation included) is skipped.  Unknown sub-extents
                # (not yet scored, or support-dead along another branch
                # shape) stay conservative: they neither raise the bar nor
                # veto formability, so a missed lookup degrades to the
                # one-sided parent bar rather than over-pruning.  This is
                # still an extent-level approximation of the lattice's
                # pattern-level, first-producing-pair bar — the engine
                # equivalence suite pins the workloads where they agree.
                bar = _parent_bar(node.responsibility, -np.inf, max_responsibility)
                formable = False
                for anc, co in co_parents:
                    item_tid = anc.tid(j)
                    if co is None:
                        sub = item_tid
                    elif is_sparse(co):
                        sub = co[bit_test(item_tid, co)]
                        counters["sparse_dispatch_hits"] += 1
                    else:
                        sub = intersect(co, item_tid)
                        counters["dense_dispatch_hits"] += 1
                    sub_key = space_key(sub, anc)
                    resp = survived.get(sub_key)
                    if resp is not None:
                        formable = True
                        if 0.0 < resp <= max_responsibility:
                            bar = max(bar, resp)
                    elif sub_key not in defeated:
                        formable = True
                if not formable:
                    continue
            siblings.add(key)
            out.append(
                _Node(
                    extent,
                    count,
                    node.items + (j,),
                    node.depth + 1,
                    bar,
                    space=child_space,
                    key=key,
                )
            )
        return out

    root = _Node(
        extent=pack_rows(np.ones(num_rows, dtype=bool)),
        count=num_rows,
        items=(),
        depth=0,
        bar=-np.inf,
        space=root_space,
    )
    pending: list[_Node] = children(root)
    expandable: list[_Node] = []
    emitted: list[_Node] = []
    emitted_keys: set[object] = set()
    visited_keys: set[object] = set()

    with trace.span("mining.frontier") as frontier_span:
        while pending or expandable:
            if expandable and len(pending) < batch_size:
                # Descend (LIFO keeps the frontier depth-first and the packed
                # working set small) until a full buffer is ready to score.
                pending.extend(children(expandable.pop()))
                continue
            batch = pending[:batch_size]
            del pending[: len(batch)]
            flush_start = time.perf_counter()
            if use_digest:
                # Expand local extents to global tidlists in byte-capped
                # groups: the global forms are scoring transients, so the
                # flush never holds batch_size full-width rows at once —
                # the peak the memory-bound benchmark asserts on.
                group: list[tuple[object, np.ndarray]] = []
                group_bytes = 0
                for node in batch:
                    tid = global_tid(node)
                    group.append((node.key, tid))
                    group_bytes += tid.nbytes
                    if group_bytes >= _FLUSH_GROUP_BYTES:
                        cache.evaluate_pairs(group)
                        group = []
                        group_bytes = 0
                if group:
                    cache.evaluate_pairs(group)
            else:
                cache.evaluate_pairs([(node.key, node.extent) for node in batch])
            flush_seconds = time.perf_counter() - flush_start
            for node in batch:
                key = node.key
                visited_keys.add(key)
                seconds.add(node.depth, flush_seconds / len(batch))
                node.responsibility, node.bias_change = cache.by_key[key]
                if prune_by_responsibility and node.responsibility <= node.bar:
                    # heuristic 2 — the whole subtree dies with it.  Record the
                    # defeat for the descent-bar cache unless another path
                    # already carried this extent through.
                    if key not in survived:
                        defeated.add(key)
                    continue
                survived[key] = node.responsibility
                defeated.discard(key)
                survivors.add(node.depth, 1)
                if node.responsibility >= min_responsibility:
                    if key not in emitted_keys:
                        # The same extent can be revisited through another
                        # branch; the representative is extent-determined, so
                        # the first unpruned occurrence stands for all.
                        emitted_keys.add(key)
                        emitted.append(node)
                if node.depth < max_predicates:
                    expandable.append(node)
        num_closed = len(visited_keys)
        frontier_span.set(
            closed=num_closed, emitted=len(emitted), evaluated=cache.num_evaluated
        )
    replay = _GeneratorReplay(
        predicates, tids, cache, max_predicates, prune_by_responsibility, max_responsibility
    )
    candidates = []
    with trace.span("mining.replay", extents=len(emitted)):
        for node in emitted:
            # Emitted extents leave their local coordinate space here: the
            # replay gets the density-canonical global tidlist (covers_all
            # dispatches on it) and PatternStats the packed global mask.
            gtid = global_tid(node)
            pattern = replay.representative(gtid, node.count)
            if pattern is None:
                # Every generator of this extent fails the lattice's strict
                # improvement test against its own sub-patterns; Algorithm 1
                # would not have emitted any pattern for it.
                continue
            candidates.append(
                PatternStats(
                    pattern=pattern,
                    support=node.count / num_rows,
                    size=node.count,
                    responsibility=node.responsibility,
                    bias_change=node.bias_change,
                    _packed_mask=to_packed(gtid, num_rows),
                    _num_rows=num_rows,
                )
            )
    alphabet.record_mining_counters(**counters)
    levels = [
        LatticeLevelStats(
            depth, int(survivors.get(depth)), int(tried.get(depth)), seconds.get(depth)
        )
        for depth in range(1, max_predicates + 1)
        if tried.get(depth) or survivors.get(depth) or depth == 1
    ]
    return MinedCandidates(candidates, levels, cache.num_evaluated, num_closed)


# ----------------------------------------------------------------------
@dataclass
class _DepthCounter:
    values: dict[int, float] = field(default_factory=dict)

    def add(self, depth: int, amount: float) -> None:
        self.values[depth] = self.values.get(depth, 0.0) + amount

    def get(self, depth: int) -> float:
        return self.values.get(depth, 0.0)

    def total(self) -> float:
        return sum(self.values.values())


class _GeneratorReplay:
    """Replays Algorithm 1's per-pattern pruning over generator sub-lattices.

    The lattice emits every *generator* of an extent that survives its
    strict-improvement pruning; since equal-extent patterns share one
    (support, responsibility) pair, Algorithm 2's tie-break resolves them
    to the canonically smallest survivor and its containment filter drops
    the rest.  The miner evaluated each extent once, so to report the same
    winning pattern it replays the lattice's survival test symbolically:

    * a single-predicate pattern always survives (level 1 is unpruned);
    * a k-predicate pattern must be *formable* — at least two of its
      (k−1)-sub-patterns survived, the merge-pair requirement — and its
      responsibility must strictly exceed every in-window surviving
      parent's.

    The last test is deliberately an approximation: the lattice compares
    against the *first producing merge pair* in its deterministic bucket
    order, which this extent-level replay cannot reconstruct; checking
    all surviving parents is equivalent whenever responsibility grows
    along in-window chains (which pruning itself enforces through the
    producing pair), and can only be stricter otherwise.  The engine
    equivalence suite pins the configurations where the two coincide.

    Sub-pattern responsibilities come from the miner's extent cache;
    sub-extents the traversal never scored (their canonical closed node
    fell to support pruning of a different branch shape) are evaluated
    lazily in one batched query per node — extents the lattice paid for
    as ordinary level-(k−1) candidates anyway.
    """

    def __init__(
        self,
        predicates: list[Predicate],
        tids: np.ndarray,
        cache: _InfluenceCache,
        max_predicates: int,
        prune_by_responsibility: bool,
        max_responsibility: float,
    ) -> None:
        self.predicates = predicates
        self.tids = tids
        self.cache = cache
        self.max_predicates = max_predicates
        self.prune_by_responsibility = prune_by_responsibility
        self.max_responsibility = max_responsibility
        self._survives: dict[tuple[int, ...], bool] = {}

    # -- generator enumeration -----------------------------------------
    def _pattern_key(self, combo: tuple[int, ...]) -> tuple:
        return tuple(self.predicates[j].sort_key() for j in combo)

    def _extent_of(self, combo) -> np.ndarray:
        extent = self.tids[combo[0]]
        for j in combo[1:]:
            extent = extent & self.tids[j]
        return extent

    def _generators(self, extent: np.ndarray, count: int) -> list[tuple[int, ...]]:
        """All generators of the extent with ≤ ``max_predicates`` items.

        ``extent`` is a *global* tidlist in either representation — the
        closure membership test (:func:`covers_all`) dispatches, so a
        sparse deep extent gathers ``(K, count)`` addressed bits instead
        of broadcasting over ``K · n/8`` bytes.
        """
        members = np.flatnonzero(covers_all(self.tids, extent))
        # Items with byte-identical tidlists are interchangeable in any
        # generator; keeping only the sort-key-smallest of each group
        # preserves the lexicographic minimum while shrinking the search.
        by_tid: dict[bytes, int] = {}
        for j in members:
            key = extent_key(self.tids[j])
            best = by_tid.get(key)
            if best is None or self.predicates[j].sort_key() < self.predicates[best].sort_key():
                by_tid[key] = int(j)
        unique = sorted(by_tid.values(), key=lambda j: self.predicates[j].sort_key())

        generators: list[tuple[int, ...]] = []
        for size in range(1, min(self.max_predicates, len(unique)) + 1):
            for combo in itertools.combinations(unique, size):
                # Members cover the extent by closure, so the intersection
                # always contains it — equal popcount means equal extent.
                if int(popcount(self._extent_of(combo))) == count:
                    generators.append(combo)
        return generators

    # -- the survival replay -------------------------------------------
    def _ensure_scored(self, combos: list[tuple[int, ...]]) -> None:
        """Lazily score every sub-pattern extent the replay will consult."""
        needed: list[np.ndarray] = []
        for combo in combos:
            stack = [combo]
            while stack:
                current = stack.pop()
                if len(current) < 2 or current in self._survives:
                    continue
                needed.append(self._extent_of(current))
                for drop in range(len(current)):
                    stack.append(current[:drop] + current[drop + 1 :])
        self.cache.evaluate(needed)

    def survives(self, combo: tuple[int, ...]) -> bool:
        if len(combo) == 1:
            return True
        cached = self._survives.get(combo)
        if cached is not None:
            return cached
        responsibility = self.cache.responsibility_of(self._extent_of(combo))
        assert responsibility is not None  # _ensure_scored ran first
        parents = [combo[:drop] + combo[drop + 1 :] for drop in range(len(combo))]
        surviving = [p for p in parents if self.survives(p)]
        formable = len(combo) == 2 or len(surviving) >= 2
        bars = [
            resp
            for p in surviving
            if (resp := self.cache.responsibility_of(self._extent_of(p))) is not None
            and 0.0 < resp <= self.max_responsibility
        ]
        alive = formable and (not bars or responsibility > max(bars))
        self._survives[combo] = alive
        return alive

    def representative(self, extent: np.ndarray, count: int) -> Pattern | None:
        """The surviving pattern Algorithm 2 would pick, or None if the
        lattice's pruning leaves no pattern for this extent."""
        generators = self._generators(extent, count)
        if not self.prune_by_responsibility:
            # Without heuristic 2 the lattice emits redundant-predicate
            # patterns too; the tie-break ranges over all generators.
            chosen = min(generators, key=self._pattern_key)
            return Pattern([self.predicates[j] for j in chosen])
        # The replay ranges over ALL generators, not just minimal ones: a
        # redundant predicate usually collapses onto its same-extent
        # parent and dies on the strict improvement test (which survives()
        # reproduces — that parent's bar equals the pattern's own
        # responsibility), but when that parent was itself pruned the
        # lattice can reach the redundant pattern through a sibling pair
        # and emit it, and its sort key can even precede the minimal
        # generator's.
        self._ensure_scored(generators)
        for combo in sorted(generators, key=self._pattern_key):
            if self.survives(combo):
                return Pattern([self.predicates[j] for j in combo])
        return None
