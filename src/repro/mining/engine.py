"""Pluggable candidate-generation backends for the Gopher pipeline.

Algorithm 1's job — produce scored candidate explanations for Algorithm 2
to rank — has two interchangeable implementations:

* :class:`LatticeEngine` — the level-wise lattice search of
  :func:`repro.patterns.lattice.compute_candidates` (the paper's layout);
* :class:`ClosedMiningEngine` — the packed-bitset closed-pattern miner of
  :mod:`repro.mining.closed`, which evaluates one candidate per distinct
  extent and streams influence scoring off packed masks.

Both satisfy the :class:`CandidateEngine` protocol and return a
:class:`CandidateResult`, which :func:`repro.patterns.select_top_k` and
:class:`repro.core.GopherExplainer` consume interchangeably.  The engine
equivalence suite pins identical top-k explanations on the benchmark
workloads (German, Adult, the planted-bias synthetic set); the engines
differ in how many candidates they evaluate (``num_evaluated``), in peak
memory (the miner never holds an (m, n) boolean mask matrix), and — on
adversarial tie-heavy instances — in which search path heuristic 2 is
applied along (see the pruning notes in :mod:`repro.mining.closed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.influence.estimators import InfluenceEstimator
from repro.mining.alphabet import AlphabetCache, resolve_alphabet
from repro.patterns.lattice import (
    LatticeLevelStats,
    LatticeRecord,
    LatticeResult,
    PatternStats,
    compute_candidates,
)
from repro.tabular import Table


@dataclass
class CandidateResult:
    """Scored candidates plus engine-level accounting, engine-agnostic.

    ``num_evaluated`` counts influence evaluations actually issued — the
    quantity the closed miner reduces (one per distinct extent) relative
    to the lattice (one per surviving pattern).  ``levels`` reports
    per-level (lattice) or per-depth (miner) search statistics in the
    shape of the paper's Table 7.
    """

    candidates: list[PatternStats]
    levels: list[LatticeLevelStats]
    engine: str
    num_evaluated: int
    record: LatticeRecord | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


@runtime_checkable
class CandidateEngine(Protocol):
    """Strategy protocol every candidate-generation backend implements."""

    name: str

    def generate(
        self,
        table: Table,
        estimator: InfluenceEstimator,
        *,
        support_threshold: float = 0.05,
        max_predicates: int = 3,
        num_bins: int = 4,
        exclude_features: set[str] | None = None,
        prune_by_responsibility: bool = True,
        min_responsibility: float = 0.0,
        max_responsibility: float = 1.25,
        batch_size: int = 1024,
        alphabet_cache: AlphabetCache | None = None,
    ) -> CandidateResult:
        """Run the search and return every surviving scored candidate.

        ``alphabet_cache`` shares the level-1 predicate alphabet (and, for
        the miner, its packed tidlists) across repeated searches over the
        same table — the per-dataset half of the audit-session cost split.
        """
        ...


class LatticeEngine:
    """Algorithm 1 as published: level-wise merge search over patterns."""

    name = "lattice"

    def __init__(self, batch: bool = True) -> None:
        self.batch = batch

    def generate(
        self,
        table: Table,
        estimator: InfluenceEstimator,
        *,
        support_threshold: float = 0.05,
        max_predicates: int = 3,
        num_bins: int = 4,
        exclude_features: set[str] | None = None,
        prune_by_responsibility: bool = True,
        min_responsibility: float = 0.0,
        max_responsibility: float = 1.25,
        batch_size: int = 1024,
        alphabet_cache: AlphabetCache | None = None,
    ) -> CandidateResult:
        lattice = compute_candidates(
            table,
            estimator,
            support_threshold=support_threshold,
            max_predicates=max_predicates,
            num_bins=num_bins,
            exclude_features=exclude_features,
            prune_by_responsibility=prune_by_responsibility,
            min_responsibility=min_responsibility,
            max_responsibility=max_responsibility,
            batch=self.batch,
            batch_size=batch_size,
            alphabet=resolve_alphabet(
                table, alphabet_cache, support_threshold, num_bins, exclude_features
            ),
        )
        return CandidateResult(
            candidates=lattice.candidates,
            levels=lattice.levels,
            engine=self.name,
            num_evaluated=lattice.num_evaluated,
            record=lattice.record,
        )


class ClosedMiningEngine:
    """Closed-pattern mining over packed bitsets (one node per extent).

    ``projection`` selects the conditional-database strategy of
    :func:`repro.mining.closed.mine_closed_candidates` — ``"auto"``
    (default) projects shrunken branches into local coordinate spaces so
    deep nodes pay proportional to their parent extent, ``"never"`` is
    the flat full-width traversal, ``"always"`` projects every eligible
    branch.  All three emit identical candidates.
    """

    name = "mining"

    def __init__(self, projection: str = "auto") -> None:
        self.projection = projection

    def generate(
        self,
        table: Table,
        estimator: InfluenceEstimator,
        *,
        support_threshold: float = 0.05,
        max_predicates: int = 3,
        num_bins: int = 4,
        exclude_features: set[str] | None = None,
        prune_by_responsibility: bool = True,
        min_responsibility: float = 0.0,
        max_responsibility: float = 1.25,
        batch_size: int = 1024,
        alphabet_cache: AlphabetCache | None = None,
    ) -> CandidateResult:
        from repro.mining.closed import mine_closed_candidates

        mined = mine_closed_candidates(
            table,
            estimator,
            support_threshold=support_threshold,
            max_predicates=max_predicates,
            num_bins=num_bins,
            exclude_features=exclude_features,
            prune_by_responsibility=prune_by_responsibility,
            min_responsibility=min_responsibility,
            max_responsibility=max_responsibility,
            batch_size=batch_size,
            alphabet=resolve_alphabet(
                table, alphabet_cache, support_threshold, num_bins, exclude_features
            ),
            projection=self.projection,
        )
        return CandidateResult(
            candidates=mined.candidates,
            levels=mined.levels,
            engine=self.name,
            num_evaluated=mined.num_evaluated,
        )


_ENGINES = {
    "lattice": LatticeEngine,
    "mining": ClosedMiningEngine,
}


def list_engines() -> list[str]:
    """Names accepted by :func:`make_engine` (and ``GopherConfig.engine``)."""
    return sorted(_ENGINES)


def make_engine(name: str, **kwargs: object) -> CandidateEngine:
    """Factory over the candidate-generation backends."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown candidate engine {name!r}; available: {sorted(_ENGINES)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]


def as_candidate_result(result: CandidateResult | LatticeResult) -> CandidateResult:
    """Normalize a raw :class:`LatticeResult` to the engine-agnostic type."""
    if isinstance(result, CandidateResult):
        return result
    return CandidateResult(
        candidates=result.candidates,
        levels=result.levels,
        engine="lattice",
        num_evaluated=result.num_evaluated,
        record=result.record,
    )
