"""Level-1 candidate generation: all single predicates above support (Alg. 1, lines 1–6).

Categorical features yield one equality predicate per distinct value.
Numeric features are binned first (paper §4.2: "for features with a large
number of possible values, we can apply binning") and yield a ``>=`` / ``<``
pair per threshold; numeric features with few distinct values additionally
yield equality predicates (e.g. ``installment_rate = 4`` in German Credit).

The *spec* enumeration (which predicates exist, in which canonical order) is
split out as :func:`iter_predicate_specs` from the mask evaluation + support
filter of :func:`generate_single_predicates`, so the alphabet cache can
re-enumerate specs over an edited table and patch masks per predicate while
reproducing the fresh build byte for byte — including its ordering.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.datasets.binning import quantile_thresholds
from repro.patterns.predicate import Predicate
from repro.tabular import CategoricalColumn, NumericColumn, Table

# Numeric columns with at most this many distinct values also get '='.
_EQUALITY_CARDINALITY = 12


def normalize_exclude_features(
    exclude_features: Iterable[str] | str | None,
) -> frozenset[str]:
    """Normalize an exclude-features argument to a frozenset of names.

    Accepts ``None``, any iterable of column names, or a single name.  The
    single-string case is handled explicitly: iterating ``"age"`` into the
    character set ``{'a', 'g', 'e'}`` would silently exclude nothing (or,
    worse, substring-match single-letter columns), which is exactly the kind
    of cache-key/behaviour mismatch the alphabet cache must not build on.
    """
    if exclude_features is None:
        return frozenset()
    if isinstance(exclude_features, str):
        return frozenset((exclude_features,))
    return frozenset(exclude_features)


def iter_predicate_specs(
    table: Table,
    num_bins: int = 4,
    exclude_features: Iterable[str] | str | None = None,
) -> Iterator[Predicate]:
    """Yield every level-1 predicate of ``table`` in canonical order.

    The order is deterministic given the table: columns in schema order;
    per categorical column one ``=`` per distinct value; per numeric column
    the ``=`` predicates of low-cardinality columns followed by the
    ``>=``/``<`` pair per quantile threshold (integer-rounded thresholds for
    integer-valued columns).  No masks are evaluated and no support filter
    is applied — this is the *spec* half of level-1 generation, shared by
    the fresh build and the edit-patch path of the alphabet cache.
    """
    exclude = normalize_exclude_features(exclude_features)
    for name in table.column_names:
        if name in exclude:
            continue
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            for value in column.distinct():
                yield Predicate(name, "=", value)
            continue
        assert isinstance(column, NumericColumn)
        values = column.values
        distinct = np.unique(values)
        if len(distinct) <= _EQUALITY_CARDINALITY:
            for value in distinct:
                yield Predicate(name, "=", float(value))
        thresholds = quantile_thresholds(values, num_bins)
        if np.all(values == np.round(values)):
            # Integer-valued columns get integer thresholds ("age >= 45"
            # rather than "age >= 45.25") for readable explanations.
            thresholds = sorted({float(round(t)) for t in thresholds})
        for threshold in thresholds:
            for op in (">=", "<"):
                yield Predicate(name, op, float(threshold))


def generate_single_predicates(
    table: Table,
    support_threshold: float,
    num_bins: int = 4,
    exclude_features: Iterable[str] | str | None = None,
) -> list[tuple[Predicate, np.ndarray]]:
    """Return (predicate, mask) pairs whose support *strictly* exceeds τ.

    The comparison is strict — a predicate covering exactly
    ``support_threshold`` of the rows is dropped — matching the merge
    levels of :func:`repro.patterns.lattice.compute_candidates`, so the
    support rule is uniform across the whole lattice.

    Masks are returned alongside predicates because the lattice reuses them
    for merging; computing each base mask exactly once is what keeps level-1
    generation linear in the data size.
    """
    if not 0.0 <= support_threshold < 1.0:
        raise ValueError(f"support_threshold must be in [0, 1), got {support_threshold}")
    n = table.num_rows
    out: list[tuple[Predicate, np.ndarray]] = []
    for predicate in iter_predicate_specs(table, num_bins, exclude_features):
        mask = predicate.mask(table)
        if mask.sum() / n > support_threshold:
            out.append((predicate, mask))
    return out
