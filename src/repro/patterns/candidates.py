"""Level-1 candidate generation: all single predicates above support (Alg. 1, lines 1–6).

Categorical features yield one equality predicate per distinct value.
Numeric features are binned first (paper §4.2: "for features with a large
number of possible values, we can apply binning") and yield a ``>=`` / ``<``
pair per threshold; numeric features with few distinct values additionally
yield equality predicates (e.g. ``installment_rate = 4`` in German Credit).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.binning import quantile_thresholds
from repro.patterns.predicate import Predicate
from repro.tabular import CategoricalColumn, NumericColumn, Table

# Numeric columns with at most this many distinct values also get '='.
_EQUALITY_CARDINALITY = 12


def generate_single_predicates(
    table: Table,
    support_threshold: float,
    num_bins: int = 4,
    exclude_features: set[str] | None = None,
) -> list[tuple[Predicate, np.ndarray]]:
    """Return (predicate, mask) pairs whose support *strictly* exceeds τ.

    The comparison is strict — a predicate covering exactly
    ``support_threshold`` of the rows is dropped — matching the merge
    levels of :func:`repro.patterns.lattice.compute_candidates`, so the
    support rule is uniform across the whole lattice.

    Masks are returned alongside predicates because the lattice reuses them
    for merging; computing each base mask exactly once is what keeps level-1
    generation linear in the data size.
    """
    if not 0.0 <= support_threshold < 1.0:
        raise ValueError(f"support_threshold must be in [0, 1), got {support_threshold}")
    exclude = exclude_features or set()
    n = table.num_rows
    out: list[tuple[Predicate, np.ndarray]] = []
    for name in table.column_names:
        if name in exclude:
            continue
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            for value in column.distinct():
                predicate = Predicate(name, "=", value)
                mask = predicate.mask(table)
                if mask.sum() / n > support_threshold:
                    out.append((predicate, mask))
        else:
            assert isinstance(column, NumericColumn)
            values = column.values
            distinct = np.unique(values)
            if len(distinct) <= _EQUALITY_CARDINALITY:
                for value in distinct:
                    predicate = Predicate(name, "=", float(value))
                    mask = predicate.mask(table)
                    if mask.sum() / n > support_threshold:
                        out.append((predicate, mask))
            thresholds = quantile_thresholds(values, num_bins)
            if np.all(values == np.round(values)):
                # Integer-valued columns get integer thresholds ("age >= 45"
                # rather than "age >= 45.25") for readable explanations.
                thresholds = sorted({float(round(t)) for t in thresholds})
            for threshold in thresholds:
                for op in (">=", "<"):
                    predicate = Predicate(name, op, float(threshold))
                    mask = predicate.mask(table)
                    if mask.sum() / n > support_threshold:
                        out.append((predicate, mask))
    return out
