"""Single predicates ``X op c`` — the atoms of the pattern language (Def. 3.3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular import CategoricalColumn, NumericColumn, Table

_NUMERIC_OPS = ("=", "<", "<=", ">", ">=")
_CATEGORICAL_OPS = ("=",)


@dataclass(frozen=True)
class Predicate:
    """An atomic condition on one feature.

    ``op`` is one of ``= < <= > >=``; categorical features support only
    equality.  Predicates are immutable and hashable so they can live in
    pattern sets and lattice keys.
    """

    feature: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _NUMERIC_OPS:
            raise ValueError(f"unsupported operator {self.op!r}")

    # ------------------------------------------------------------------
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate."""
        column = table.column(self.feature)
        if isinstance(column, CategoricalColumn):
            if self.op != "=":
                raise ValueError(
                    f"categorical feature {self.feature!r} supports '=' only, got {self.op!r}"
                )
            return column.equals_mask(self.value)
        assert isinstance(column, NumericColumn)
        value = float(self.value)  # type: ignore[arg-type]
        if self.op == "=":
            return column.equals_mask(value)
        if self.op == "<":
            return column.less_mask(value)
        if self.op == "<=":
            return column.less_equal_mask(value)
        if self.op == ">":
            return column.greater_mask(value)
        return column.greater_equal_mask(value)

    # ------------------------------------------------------------------
    def interval(self) -> tuple[float, float, bool, bool]:
        """(lo, hi, lo_closed, hi_closed) for numeric satisfiability checks."""
        value = float(self.value)  # type: ignore[arg-type]
        if self.op == "=":
            return value, value, True, True
        if self.op == "<":
            return -np.inf, value, False, False
        if self.op == "<=":
            return -np.inf, value, False, True
        if self.op == ">":
            return value, np.inf, False, False
        return value, np.inf, True, False

    def conflicts_with(self, other: "Predicate") -> bool:
        """True when ``self ∧ other`` is unsatisfiable (Algorithm 1's skip)."""
        if self.feature != other.feature:
            return False
        if self.op == "=" and other.op == "=" and not _is_number(self.value):
            return self.value != other.value
        if not (_is_number(self.value) and _is_number(other.value)):
            # Categorical equality against anything non-equal was handled
            # above; mixed-type comparisons never conflict structurally.
            return False
        lo_a, hi_a, lc_a, hc_a = self.interval()
        lo_b, hi_b, lc_b, hc_b = other.interval()
        lo = max(lo_a, lo_b)
        hi = min(hi_a, hi_b)
        if lo > hi:
            return True
        if lo == hi:
            lo_closed = (lc_a if lo == lo_a else True) and (lc_b if lo == lo_b else True)
            hi_closed = (hc_a if hi == hi_a else True) and (hc_b if hi == hi_b else True)
            return not (lo_closed and hi_closed)
        return False

    # ------------------------------------------------------------------
    def sort_key(self) -> tuple[str, str, str]:
        """Total order used for canonical pattern representations."""
        return (self.feature, self.op, str(self.value))

    def __str__(self) -> str:
        value = self.value
        if _is_number(value) and float(value) == int(float(value)):  # type: ignore[arg-type]
            value = int(float(value))  # type: ignore[arg-type]
        return f"{self.feature} {self.op} {value}"


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )
