"""Containment scores for explanation diversity (Def. 3.6)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def containment(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """C(a, b) = |D(a) ∩ D(b)| / |D(a)| — the fraction of a inside b.

    Asymmetric by design: a small pattern fully inside a big one has
    containment 1 while the reverse direction can be small.
    """
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    if mask_a.shape != mask_b.shape:
        raise ValueError(f"mask shapes differ: {mask_a.shape} vs {mask_b.shape}")
    size_a = int(mask_a.sum())
    if size_a == 0:
        raise ValueError("containment is undefined for an empty pattern")
    return float((mask_a & mask_b).sum() / size_a)


def max_containment(mask: np.ndarray, others: Iterable[np.ndarray]) -> float:
    """C(φ, Φ) = max over the set (0.0 when the set is empty)."""
    best = 0.0
    for other in others:
        best = max(best, containment(mask, other))
        if best >= 1.0:
            break
    return best
