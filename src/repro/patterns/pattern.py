"""Patterns: conjunctions of predicates describing training-data subsets."""

from __future__ import annotations

import numpy as np

from repro.patterns.predicate import Predicate
from repro.tabular import Table


class Pattern:
    """An immutable conjunction of :class:`Predicate` atoms (Def. 3.3).

    Predicates are kept in a canonical sorted order, which gives patterns a
    well-defined identity (hash/equality), makes lattice joins deterministic,
    and provides the arbitrary-but-fixed tie-break order Definition 3.7 asks
    for.
    """

    __slots__ = ("predicates",)

    def __init__(self, predicates: tuple[Predicate, ...] | list[Predicate]) -> None:
        unique = sorted(set(predicates), key=Predicate.sort_key)
        if not unique:
            raise ValueError("a pattern needs at least one predicate")
        object.__setattr__(self, "predicates", tuple(unique))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Pattern is immutable")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.predicates)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and self.predicates == other.predicates

    def __hash__(self) -> int:
        return hash(self.predicates)

    def __str__(self) -> str:
        return " ∧ ".join(str(p) for p in self.predicates)

    def __repr__(self) -> str:
        return f"Pattern({str(self)!r})"

    def sort_key(self) -> tuple:
        return tuple(p.sort_key() for p in self.predicates)

    # ------------------------------------------------------------------
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of table rows satisfying every predicate."""
        out = np.ones(table.num_rows, dtype=bool)
        for predicate in self.predicates:
            out &= predicate.mask(table)
            if not out.any():
                break
        return out

    def support(self, table: Table) -> float:
        """Sup(φ) = |D(φ)| / |D| (Def. 3.4)."""
        if table.num_rows == 0:
            raise ValueError("support is undefined on an empty table")
        return float(self.mask(table).mean())

    def features(self) -> set[str]:
        """The set of feature names the pattern constrains."""
        return {p.feature for p in self.predicates}

    # ------------------------------------------------------------------
    def merge(self, other: "Pattern") -> "Pattern":
        """Union of the two predicate sets (the lattice join)."""
        return Pattern(self.predicates + other.predicates)

    def differs_in_one(self, other: "Pattern") -> bool:
        """True when both patterns share all but exactly one predicate."""
        if len(self) != len(other):
            return False
        shared = set(self.predicates) & set(other.predicates)
        return len(shared) == len(self) - 1

    def is_satisfiable(self) -> bool:
        """False when any two predicates structurally conflict."""
        preds = self.predicates
        for i, a in enumerate(preds):
            for b in preds[i + 1:]:
                if a.conflicts_with(b):
                    return False
        return True

    def contains_pattern(self, other: "Pattern") -> bool:
        """True when this pattern's predicates are a superset of ``other``'s."""
        return set(other.predicates) <= set(self.predicates)
