"""Pattern language and lattice search (paper §3 and §4.2).

A *pattern* is a conjunction of first-order predicates ``X op c`` describing
a coherent training-data subset.  :func:`compute_candidates` implements the
paper's Algorithm 1 — an Apriori-style bottom-up lattice search with two
pruning heuristics (support threshold, responsibility must increase on
merge) — and :func:`select_top_k` implements Algorithm 2, the diversity
filter based on containment scores.
"""

from repro.patterns.candidates import generate_single_predicates
from repro.patterns.containment import containment, max_containment
from repro.patterns.lattice import (
    LatticeLevelStats,
    LatticeResult,
    PatternStats,
    compute_candidates,
)
from repro.patterns.pattern import Pattern
from repro.patterns.predicate import Predicate
from repro.patterns.topk import select_top_k

__all__ = [
    "LatticeLevelStats",
    "LatticeResult",
    "Pattern",
    "PatternStats",
    "Predicate",
    "compute_candidates",
    "containment",
    "generate_single_predicates",
    "max_containment",
    "select_top_k",
]
