"""Algorithm 2 — top-k selection with containment-based diversity."""

from __future__ import annotations

import time

import numpy as np

from repro.patterns.containment import containment
from repro.patterns.lattice import LatticeResult, PatternStats


def select_top_k(
    candidates: list[PatternStats] | LatticeResult,
    k: int,
    containment_threshold: float = 0.75,
    require_positive_responsibility: bool = True,
    exclude_features_only: set[str] | None = None,
    max_responsibility: float = 1.25,
) -> tuple[list[PatternStats], float]:
    """Pick the k most interesting, mutually diverse candidates.

    ``candidates`` is either a plain list of :class:`PatternStats` or any
    candidate-generation result carrying a ``candidates`` list — the
    :class:`LatticeResult` of the lattice search or the engine-agnostic
    :class:`repro.mining.engine.CandidateResult` either backend returns —
    which is unwrapped to its candidate list.

    Candidates are visited in descending interestingness order (ties broken
    by the canonical pattern order, giving the deterministic tie-break
    Definition 3.7 requires); a candidate is skipped when its containment in
    any already-selected explanation exceeds the threshold.

    Definition 3.1 requires a *root cause* to satisfy
    ``0 <= F(after) < F(before)`` — removing it must reduce the bias, not
    overshoot past zero and flip its sign.  ``require_positive_responsibility``
    enforces the lower bound and ``max_responsibility`` the upper one; the
    default allows 25% slack above R = 1 because the lattice works with
    *estimated* responsibilities, and near-total fixes routinely estimate
    slightly above 1.  Set ``max_responsibility=float("inf")`` to disable.

    ``exclude_features_only`` drops candidates whose predicates mention
    *only* the given features.  The explainer passes the protected attribute
    here: a pattern like ``gender = Female`` alone is vacuous as a fairness
    explanation ("the protected group is responsible for the disparity") —
    the paper's result tables never contain one, while the attribute freely
    appears *combined* with other predicates.

    Returns ``(selected, filter_seconds)`` — the filtering time is reported
    separately because Table 7 tracks it independently of search time.
    """
    if not isinstance(candidates, list):
        # LatticeResult, CandidateResult, or anything else shaped like a
        # candidate-generation result.
        candidates = list(candidates.candidates)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < containment_threshold <= 1.0:
        raise ValueError(
            f"containment_threshold must be in (0, 1], got {containment_threshold}"
        )
    if max_responsibility <= 0:
        raise ValueError(f"max_responsibility must be positive, got {max_responsibility}")
    start = time.perf_counter()
    pool = [
        c
        for c in candidates
        if (not require_positive_responsibility or c.responsibility > 0.0)
        and c.responsibility <= max_responsibility
    ]
    if exclude_features_only:
        pool = [c for c in pool if not c.pattern.features() <= exclude_features_only]
    ordered = sorted(pool, key=lambda c: (-c.interestingness, c.pattern.sort_key()))
    selected: list[PatternStats] = []
    selected_masks: list[np.ndarray] = []
    for candidate in ordered:
        mask = candidate.mask()
        if any(
            containment(mask, other) > containment_threshold for other in selected_masks
        ):
            continue
        selected.append(candidate)
        selected_masks.append(mask)
        if len(selected) == k:
            break
    return selected, time.perf_counter() - start
