"""Algorithm 1 — lattice-based candidate generation with pruning.

The search climbs the pattern lattice level by level: level ``i`` patterns
(i predicates) are built by merging two level ``i−1`` patterns that differ in
exactly one predicate, exactly as in frequent-itemset mining.  Two heuristics
prune the exponential space (paper §4.2):

1. **support** — candidates at or below the threshold τ are dropped, and
   anti-monotonicity means the whole sub-lattice above them dies with them;
2. **responsibility** — a merged pattern survives only if its (estimated)
   causal responsibility strictly exceeds its parents', which guarantees its
   interestingness also exceeds theirs and keeps longer patterns only when
   the extra predicate pays for itself.  A parent only constrains the merge
   when it is itself a plausible *root cause* (Definition 3.1: removal
   reduces the bias without overshooting it past zero, 0 < R ≤ cap) —
   influence estimates for very large subsets routinely overshoot far past
   R = 1, and letting such junk estimates veto every refinement would cut
   off exactly the coherent subgroups the search exists to find.

Pair enumeration is done by bucketing each level-(i−1) pattern under all of
its (i−2)-predicate subsets; two patterns share a bucket iff they differ in
exactly one predicate, so the enumeration is complete without the quadratic
all-pairs scan.  A candidate reachable through several parent pairs is
evaluated once, against the first pair that produces it (pair order is
deterministic, so the search is reproducible).

Influence queries are *batched*: each level first gathers every merge that
survives the structural checks (dedup, satisfiability, support), then asks
the estimator for all bias changes in one ``bias_change_batch`` call per
``batch_size`` chunk — one BLAS-level pass per lattice level instead of
thousands of tiny per-candidate queries (see the cost model in
``repro.influence.estimators``).  ``batch=False`` keeps the per-candidate
loop for comparison; both paths return identical candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.influence.estimators import InfluenceEstimator
from repro.obs import trace
from repro.patterns.candidates import generate_single_predicates
from repro.patterns.pattern import Pattern
from repro.tabular import Table


@dataclass
class PatternStats:
    """A candidate explanation with its search-time statistics."""

    pattern: Pattern
    support: float
    size: int
    responsibility: float
    bias_change: float
    _packed_mask: np.ndarray = field(repr=False)
    _num_rows: int = field(repr=False)

    @property
    def interestingness(self) -> float:
        """U(φ) = R(φ) / Sup(φ) (Def. 3.5)."""
        return self.responsibility / self.support if self.support > 0 else 0.0

    def mask(self) -> np.ndarray:
        """The boolean row mask of D(φ) (unpacked on demand)."""
        return np.unpackbits(self._packed_mask, count=self._num_rows).astype(bool)

    def describe(self) -> str:
        return (
            f"{self.pattern}  [sup={self.support:.2%}, "
            f"R={self.responsibility:.2%}, U={self.interestingness:.3f}]"
        )


@dataclass
class LatticeLevelStats:
    """Per-level accounting reported in the paper's Table 7."""

    level: int
    num_candidates: int
    num_merges_tried: int
    seconds: float


@dataclass
class LatticeRecord:
    """Replay state of a depth-≤2 search, for incremental re-audits.

    When the search runs over a shared alphabet with ``max_predicates <= 2``
    its candidate space is a pure function of the level-1 entry list: the
    level-2 pair enumeration, dedup, and satisfiability checks never look at
    the data, only the support filter and the scores do.  Recording, per
    evaluated level-2 merge, the entry indices of its parents plus its
    extent size, score, and filter outcome therefore captures everything an
    incremental re-certification (:meth:`repro.core.AuditSession.delta_audit`)
    needs to replay the search against patched masks without re-running the
    merge loop.  All ``pair_*`` arrays are parallel, in the search's
    deterministic enumeration order.

    ``pair_known`` mirrors the parent-reuse short-circuit (0 = evaluated,
    1/2 = extent collapsed onto the left/right parent, whose evaluation was
    reused verbatim); ``pair_in_result`` marks merges that survived the
    responsibility bar and the minimum-responsibility filter into
    ``candidates``.  Searches deeper than two levels do not record — their
    level-3+ frontier depends on scores and cannot be replayed structurally.
    """

    num_entries: int
    level1_responsibilities: np.ndarray
    level1_bias_changes: np.ndarray
    pair_left: np.ndarray
    pair_right: np.ndarray
    pair_sizes: np.ndarray
    pair_known: np.ndarray
    pair_responsibilities: np.ndarray
    pair_bias_changes: np.ndarray
    pair_in_result: np.ndarray


@dataclass
class LatticeResult:
    """Everything Algorithm 1 returns: candidates plus per-level stats.

    ``num_evaluated`` counts the influence evaluations actually issued —
    merges that reuse a parent's evaluation (collapsed row sets) are
    excluded.  The closed-pattern miner (``repro.mining``) reports the
    same counter, which is how the candidate-space reduction of mining
    closed extents is measured.
    """

    candidates: list[PatternStats]
    levels: list[LatticeLevelStats]
    num_evaluated: int = 0
    record: LatticeRecord | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


def compute_candidates(
    table: Table,
    estimator: InfluenceEstimator,
    support_threshold: float = 0.05,
    max_predicates: int = 3,
    num_bins: int = 4,
    exclude_features: set[str] | None = None,
    prune_by_responsibility: bool = True,
    min_responsibility: float = 0.0,
    max_responsibility: float = 1.25,
    batch: bool = True,
    batch_size: int = 1024,
    alphabet=None,
) -> LatticeResult:
    """Run Algorithm 1 over ``table`` and return all surviving candidates.

    Parameters
    ----------
    table:
        The *training* feature table the patterns quantify over.
    estimator:
        Influence estimator bound to the model trained on this table; its
        ``responsibility`` drives both pruning and ranking.
    support_threshold:
        τ — patterns must cover strictly more than this fraction of rows;
        a candidate whose support equals τ exactly is dropped, at every
        level of the lattice.
    max_predicates:
        Lattice depth cap (the "level" axis of Table 7).
    num_bins:
        Quantile bins per numeric feature for level-1 thresholds.
    exclude_features:
        Features never used in predicates (e.g. identifiers).
    prune_by_responsibility:
        Toggle for heuristic 2 — exposed so the ablation bench can measure
        how much of the space it removes.
    min_responsibility:
        Candidates below this responsibility are kept out of the *result*
        (but still allowed to merge upward), letting callers drop
        bias-increasing patterns early.
    max_responsibility:
        Root-cause cap for the pruning comparison: parents whose estimated
        responsibility falls outside (0, max_responsibility] do not veto
        their children (see the module docstring).
    batch:
        Evaluate each level's surviving candidates through the estimator's
        batched influence API (the default).  ``False`` restores the
        per-candidate query loop — same results, kept for benchmarking the
        batch speedup and as a low-memory fallback.
    batch_size:
        Maximum candidates per batched influence call; bounds the (m, n)
        mask matrix handed to the estimator.
    alphabet:
        A pre-built level-1 :class:`repro.mining.alphabet.PredicateAlphabet`
        for *this* table and *these* generation parameters, letting many
        searches (different metrics, groups, estimators) share one
        predicate/mask build.  ``None`` generates the level-1 candidates
        locally, exactly as before.
    """
    if max_predicates < 1:
        raise ValueError(f"max_predicates must be >= 1, got {max_predicates}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    num_rows = table.num_rows
    if num_rows != estimator.num_train:
        raise ValueError(
            f"table rows ({num_rows}) must match estimator training rows "
            f"({estimator.num_train}); patterns quantify over the training data"
        )

    levels: list[LatticeLevelStats] = []
    all_stats: list[PatternStats] = []

    # --- level 1 ---------------------------------------------------------
    start = time.perf_counter()
    with trace.span("lattice.level", level=1) as level_span:
        if alphabet is not None:
            if getattr(alphabet, "packed", False):
                raise ValueError(
                    "the lattice engine consumes boolean level-1 masks and cannot "
                    "run on a packed (out-of-core) alphabet; use engine='mining' "
                    "for tables this large"
                )
            # Shared pre-built alphabet: full-coverage predicates (which would
            # "remove the entire data") are already filtered out of entries.
            entries = alphabet.entries
            num_singles = alphabet.num_generated
        else:
            singles = generate_single_predicates(
                table, support_threshold, num_bins, exclude_features
            )
            num_singles = len(singles)
            # A full-coverage pattern would "remove the entire data" — the
            # paper notes such patterns have no explanatory value, and no
            # model can be retrained without any training rows.
            entries = [(predicate, mask) for predicate, mask in singles if not mask.all()]
        survivors: list[tuple[Pattern, np.ndarray]] = [
            (Pattern([predicate]), mask) for predicate, mask in entries
        ]
        responsibilities, bias_changes = _evaluate_all(
            estimator, [mask for _, mask in survivors], batch, batch_size
        )
        num_evaluated = len(survivors)
        current: list[tuple[Pattern, np.ndarray, int, float, float]] = []
        for (pattern, mask), resp, dbias in zip(survivors, responsibilities, bias_changes):
            current.append((pattern, mask, int(mask.sum()), resp, dbias))
            if resp >= min_responsibility:
                all_stats.append(_stats(pattern, mask, resp, dbias, num_rows))
        levels.append(
            LatticeLevelStats(1, len(current), num_singles, time.perf_counter() - start)
        )
        level_span.set(candidates=len(current), evaluated=len(survivors))

    # Depth-2 searches are structurally replayable under data edits; record
    # the per-merge state the incremental re-audit needs (see LatticeRecord).
    recording = max_predicates <= 2
    responsibilities_level1, bias_changes_level1 = responsibilities, bias_changes
    rec_pairs: list[tuple[int, int, int, int, float, float, bool]] = []

    # --- levels 2..max ----------------------------------------------------
    level = 2
    while current and level <= max_predicates:
        start = time.perf_counter()
        with trace.span("lattice.level", level=level) as level_span:
            merges_tried = 0
            seen: set[Pattern] = set()
            # Gather phase: structural pruning only (dedup, satisfiability,
            # support).  Influence is deferred so the whole level is one batch.
            # A merge whose row set collapses onto one parent's (a redundant
            # predicate) has *exactly* that parent's responsibility, so the
            # parent's evaluation is reused — the influence query would only
            # reproduce it up to floating-point noise, and the strict pruning
            # comparison must not hinge on that noise.
            merged_survivors: list[
                tuple[Pattern, np.ndarray, int, float, tuple[float, float] | None, int, int, int]
            ] = []
            with trace.span("lattice.gather"):
                for i_a, i_b in _mergeable_pairs(current):
                    pattern_a, mask_a, size_a, resp_a, dbias_a = current[i_a]
                    pattern_b, mask_b, size_b, resp_b, dbias_b = current[i_b]
                    merges_tried += 1
                    merged = pattern_a.merge(pattern_b)
                    if len(merged) != level or merged in seen:
                        continue
                    seen.add(merged)
                    if not merged.is_satisfiable():
                        continue
                    mask = mask_a & mask_b
                    size = int(mask.sum())
                    support = size / num_rows
                    if support <= support_threshold:
                        continue
                    if size == size_a:  # mask ⊆ mask_a, so equal sizes ⇒ equal sets
                        known, known_code = (resp_a, dbias_a), 1
                    elif size == size_b:
                        known, known_code = (resp_b, dbias_b), 2
                    else:
                        known, known_code = None, 0
                    merged_survivors.append(
                        (
                            merged,
                            mask,
                            size,
                            _parent_bar(resp_a, resp_b, max_responsibility),
                            known,
                            i_a,
                            i_b,
                            known_code,
                        )
                    )

            # Evaluate phase: one batched influence query per chunk.
            to_evaluate = [row[1] for row in merged_survivors if row[4] is None]
            responsibilities, bias_changes = _evaluate_all(
                estimator, to_evaluate, batch, batch_size
            )
            num_evaluated += len(to_evaluate)

            # Prune phase: heuristic 2 against the recorded parent bars.
            next_level = []
            evaluated = iter(zip(responsibilities, bias_changes))
            with trace.span("lattice.prune"):
                for merged, mask, size, bar, known, i_a, i_b, known_code in merged_survivors:
                    resp, dbias = known if known is not None else next(evaluated)
                    in_result = False
                    if not (prune_by_responsibility and resp <= bar):
                        next_level.append((merged, mask, size, resp, dbias))
                        if resp >= min_responsibility:
                            all_stats.append(_stats(merged, mask, resp, dbias, num_rows))
                            in_result = True
                    if recording and level == 2:
                        rec_pairs.append(
                            (i_a, i_b, size, known_code, float(resp), float(dbias), in_result)
                        )

            levels.append(
                LatticeLevelStats(
                    level, len(next_level), merges_tried, time.perf_counter() - start
                )
            )
            level_span.set(
                candidates=len(next_level), merges=merges_tried, evaluated=len(to_evaluate)
            )
        current = next_level
        level += 1

    record = None
    if recording:
        record = LatticeRecord(
            num_entries=len(entries),
            level1_responsibilities=np.asarray(responsibilities_level1, dtype=np.float64),
            level1_bias_changes=np.asarray(bias_changes_level1, dtype=np.float64),
            pair_left=np.array([r[0] for r in rec_pairs], dtype=np.int64),
            pair_right=np.array([r[1] for r in rec_pairs], dtype=np.int64),
            pair_sizes=np.array([r[2] for r in rec_pairs], dtype=np.int64),
            pair_known=np.array([r[3] for r in rec_pairs], dtype=np.int8),
            pair_responsibilities=np.array([r[4] for r in rec_pairs], dtype=np.float64),
            pair_bias_changes=np.array([r[5] for r in rec_pairs], dtype=np.float64),
            pair_in_result=np.array([r[6] for r in rec_pairs], dtype=bool),
        )
    return LatticeResult(
        candidates=all_stats, levels=levels, num_evaluated=num_evaluated, record=record
    )


# ----------------------------------------------------------------------
def _parent_bar(resp_a: float, resp_b: float, cap: float) -> float:
    """The responsibility a merged child must strictly exceed.

    Only parents inside the root-cause window (0, cap] count; children of
    two out-of-window parents face no responsibility bar (support pruning
    still applies).
    """
    valid = [r for r in (resp_a, resp_b) if 0.0 < r <= cap]
    return max(valid) if valid else -np.inf


def _mergeable_pairs(patterns: list[tuple]):
    """Yield index pairs of patterns differing in exactly one predicate.

    ``patterns`` is a list of tuples whose first element is the
    :class:`Pattern`; the remaining elements (masks, statistics) are
    ignored here.  Each pattern is filed under every (size−1)-subset of its
    predicates; two patterns land in the same bucket iff they share that
    subset, i.e. differ in exactly one predicate.  For level 1 every pair
    qualifies (the shared subset is empty).
    """
    if not patterns:
        return
    size = len(patterns[0][0])
    if size == 1:
        for i in range(len(patterns)):
            for j in range(i + 1, len(patterns)):
                yield i, j
        return
    buckets: dict[tuple, list[int]] = {}
    for idx, entry in enumerate(patterns):
        preds = entry[0].predicates
        for drop in range(len(preds)):
            key = tuple(
                p.sort_key() for k, p in enumerate(preds) if k != drop
            )
            buckets.setdefault(key, []).append(idx)
    emitted: set[tuple[int, int]] = set()
    for members in buckets.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pair = (members[a], members[b])
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair


def _evaluate(estimator: InfluenceEstimator, mask: np.ndarray) -> tuple[float, float]:
    indices = np.flatnonzero(mask)
    dbias = estimator.bias_change(indices)
    baseline = _baseline(estimator)
    resp = -dbias / baseline if baseline != 0.0 else 0.0
    return float(resp), float(dbias)


def _baseline(estimator: InfluenceEstimator) -> float:
    return (
        estimator.original_surrogate
        if estimator.evaluation == "smooth"
        else estimator.original_bias
    )


def _evaluate_all(
    estimator: InfluenceEstimator,
    masks: list[np.ndarray],
    batch: bool,
    batch_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Responsibilities and bias changes for a level's candidate masks.

    The batched path stacks the masks into (m, n) matrices of at most
    ``batch_size`` rows and issues one ``bias_change_batch`` per chunk; the
    loop path queries candidates one at a time.  Both return arrays aligned
    with ``masks``.
    """
    if not masks:
        empty = np.zeros(0)
        return empty, empty
    if not batch:
        pairs = [_evaluate(estimator, mask) for mask in masks]
        return np.array([p[0] for p in pairs]), np.array([p[1] for p in pairs])
    chunks = [
        estimator.bias_change_batch(np.stack(masks[start : start + batch_size]))
        for start in range(0, len(masks), batch_size)
    ]
    bias_changes = np.concatenate(chunks)
    baseline = _baseline(estimator)
    if baseline != 0.0:
        responsibilities = -bias_changes / baseline
    else:
        responsibilities = np.zeros_like(bias_changes)
    return responsibilities, bias_changes


def _stats(
    pattern: Pattern, mask: np.ndarray, resp: float, dbias: float, num_rows: int
) -> PatternStats:
    return PatternStats(
        pattern=pattern,
        support=float(mask.sum() / num_rows),
        size=int(mask.sum()),
        responsibility=resp,
        bias_change=dbias,
        _packed_mask=np.packbits(mask),
        _num_rows=num_rows,
    )
