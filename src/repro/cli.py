"""Command-line interface: ``python -m repro <command> ...``.

Three subcommands cover the common workflows without writing Python:

* ``explain`` — run the full Gopher pipeline on a built-in (or CSV) dataset
  and print the fairness report, the top-k explanations, and optionally the
  update-based repairs.  With ``--audit``, one artifact-cached
  :class:`~repro.core.AuditSession` answers *every* registered fairness
  metric for the dataset's protected attribute — the model is trained and
  the influence/alphabet caches are built exactly once across all queries.
  ``--audit --edit KIND:COUNT`` then applies a random training-data edit
  and re-certifies every query incrementally via
  :meth:`~repro.core.AuditSession.delta_audit`, printing the rank-by-rank
  before/after diff.
* ``report`` — just fit a model and print accuracy + every fairness metric.
* ``detect`` — the §6.7 poisoning-detection pipeline on a built-in dataset.

Examples
--------
::

    python -m repro explain --dataset german --model logistic_regression -k 3
    python -m repro explain --dataset adult --metric equal_opportunity --updates
    python -m repro explain --dataset german --audit -k 3 --no-verify
    python -m repro explain --dataset german --audit --updates --no-verify
    python -m repro explain --dataset german --audit --no-verify --edit remove:10
    python -m repro report --dataset sqf
    python -m repro detect --dataset german --poison-fraction 0.1
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench.workloads import DATASETS, MODELS, build_pipeline
from repro.cluster import local_outlier_factor
from repro.core import AuditSession, GopherExplainer
from repro.datasets import TabularEncoder, random_edit, train_test_split
from repro.fairness import FairnessContext, fairness_report, get_metric, list_metrics
from repro.influence import make_estimator
from repro.models import LogisticRegression
from repro.obs import CostReport, Tracer, trace
from repro.poisoning import AnchoringAttack, rank_clusters_by_influence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gopher: data-based explanations for fairness debugging",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=sorted(DATASETS), default="german")
        p.add_argument("--model", choices=sorted(MODELS), default="logistic_regression")
        p.add_argument("--metric", choices=list_metrics(), default="statistical_parity")
        p.add_argument("--rows", type=int, default=None, help="dataset size (generator default if omitted)")
        p.add_argument("--seed", type=int, default=1)

    explain = sub.add_parser("explain", help="top-k explanations for model bias")
    add_common(explain)
    explain.add_argument("-k", type=int, default=3, help="number of explanations")
    explain.add_argument("--estimator", default="second_order",
                         choices=["first_order", "second_order", "exact", "series",
                                  "one_step_gd", "retrain"],
                         help="influence estimator; 'exact'/'series' pick the "
                         "second-order variant directly (both are batched)")
    explain.add_argument("--engine", default="lattice", choices=["lattice", "mining"],
                         help="candidate-generation backend: the level-wise lattice "
                         "search or the packed-bitset closed-pattern miner")
    explain.add_argument("--support", type=float, default=0.05, help="support threshold tau")
    explain.add_argument("--max-predicates", type=int, default=3)
    explain.add_argument("--no-verify", action="store_true",
                         help="skip ground-truth retraining of the winners")
    explain.add_argument("--updates", action="store_true",
                         help="also compute update-based explanations (Section 5); "
                         "with --audit, repairs every query's explanations through "
                         "per-metric explainer views sharing one update context")
    explain.add_argument("--audit", action="store_true",
                         help="run every registered fairness metric through one "
                         "artifact-cached AuditSession (one start-up, many queries) "
                         "instead of a single-metric explainer")
    explain.add_argument("--edit", metavar="KIND:COUNT", default=None,
                         help="after the audit, apply a random training-data edit "
                         "(KIND is remove/relabel/add, e.g. 'remove:10') and "
                         "re-certify the explanations incrementally via "
                         "delta_audit; requires --audit")
    explain.add_argument("--edit-seed", type=int, default=0,
                         help="seed for the --edit row selection")
    explain.add_argument("--profile", action="store_true",
                         help="enable hierarchical tracing for the run and print "
                         "the span tree plus a per-query cost breakdown "
                         "(GEMM/solve FLOPs, influence evaluations, cache hits)")
    explain.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the run's trace as JSON to PATH: Chrome "
                         "trace_event 'traceEvents' (loadable in Perfetto) plus "
                         "the structured span tree; implies tracing")

    report = sub.add_parser("report", help="accuracy + all fairness metrics")
    add_common(report)

    detect = sub.add_parser("detect", help="poisoning detection experiment (§6.7)")
    add_common(detect)
    detect.add_argument("--poison-fraction", type=float, default=0.1)
    detect.add_argument("--clusters", type=int, default=8)

    return parser


def _cmd_explain(args: argparse.Namespace) -> int:
    if not (args.profile or args.trace_out):
        return _explain_impl(args, tracer=None)
    tracer = Tracer()
    with trace.tracing(tracer):
        status = _explain_impl(args, tracer=tracer)
    if args.trace_out is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(tracer.export(), handle)
        print(f"(trace written to {args.trace_out}: {tracer.span_count()} spans)")
    return status


def _profile_report(tracer: Tracer, costs) -> None:
    """Print the span tree and each query's cost attribution."""
    print()
    print(tracer.render_tree())
    for cost in costs:
        if cost is not None:
            print()
            print(cost.render())


def _explain_impl(args: argparse.Namespace, tracer: Tracer | None) -> int:
    bundle = build_pipeline(
        args.dataset, args.model, metric=args.metric, n_rows=args.rows, seed=args.seed
    )
    if args.edit is not None and not args.audit:
        print(
            "error: --edit re-certifies an audit incrementally and requires "
            "--audit (the delta is diffed against the audit's before side)",
            file=sys.stderr,
        )
        return 2
    if args.audit:
        session = AuditSession(
            bundle.model,
            metric=args.metric,
            estimator=args.estimator,
            engine=args.engine,
            support_threshold=args.support,
            max_predicates=args.max_predicates,
        )
        session.fit(bundle.train, bundle.test)
        print(session.report())
        print()
        result = session.audit(k=args.k, verify=not args.no_verify)
        print(result.render())
        if args.updates:
            # Per-metric explainer views all ride the session's shared
            # update context: the Hessian/η half is built once for the
            # whole audit, each view adds only its ∇F.
            for query in result.queries:
                view = session.explainer(metric=query.metric, group=query.group)
                updates = view.explain_updates(
                    query.explanations, verify=not args.no_verify
                )
                print()
                print(f"[{query.describe()}]")
                print(updates.render())
        if args.edit is not None:
            try:
                kind, _, count_text = args.edit.partition(":")
                edit = random_edit(
                    session.train_data, kind, int(count_text or 1), seed=args.edit_seed
                )
            except ValueError as error:
                print(f"error: bad --edit spec {args.edit!r}: {error}", file=sys.stderr)
                return 2
            delta = session.delta_audit(edit, k=args.k, verify=not args.no_verify)
            print()
            print(delta.render())
        counters = ", ".join(
            f"{name}={value}"
            for name, value in sorted(session.stats.items())
            if "." in name  # the namespaced keys; flat twins are deprecated aliases
        )
        print()
        print(f"(session cache counters: {counters})")
        if args.profile and tracer is not None:
            _profile_report(tracer, [query.cost for query in result.queries])
        return 0
    gopher = GopherExplainer(
        bundle.model,
        metric=args.metric,
        estimator=args.estimator,
        engine=args.engine,
        support_threshold=args.support,
        max_predicates=args.max_predicates,
    )
    gopher.fit(bundle.train, bundle.test)
    print(gopher.report())
    print()
    result = gopher.explain(k=args.k, verify=not args.no_verify)
    print(result.render())
    if args.updates:
        updates = gopher.explain_updates(result, verify=not args.no_verify)
        print()
        print(updates.render())
    if args.profile and tracer is not None:
        costs = [
            CostReport.from_span(root) for root in tracer.roots if root.end is not None
        ]
        _profile_report(tracer, costs)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    bundle = build_pipeline(
        args.dataset, args.model, metric=args.metric, n_rows=args.rows, seed=args.seed
    )
    print(f"dataset={args.dataset} model={args.model} "
          f"train={bundle.train.num_rows} test={bundle.test.num_rows}")
    print(fairness_report(bundle.model, bundle.test_ctx))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    loader = DATASETS[args.dataset]
    data = loader(seed=args.seed) if args.rows is None else loader(args.rows, seed=args.seed)
    train, test = train_test_split(data, 0.25, seed=args.seed)
    poisoned = AnchoringAttack(
        poison_fraction=args.poison_fraction, num_anchors=5, seed=args.seed
    ).poison(train)
    encoder = TabularEncoder().fit(poisoned.dataset.table)
    X = encoder.transform(poisoned.dataset.table)
    model = LogisticRegression(l2_reg=1e-3).fit(X, poisoned.dataset.labels)
    ctx = FairnessContext(
        encoder.transform(test.table),
        test.labels,
        test.privileged_mask(),
        train.favorable_label,
    )
    metric = get_metric(args.metric)
    print(f"poisoned-model bias ({args.metric}): {metric.value(model, ctx):+.4f}")
    estimator = make_estimator("second_order", model, X, poisoned.dataset.labels, metric, ctx)
    report = rank_clusters_by_influence(
        X, estimator, n_clusters=args.clusters, method="gmm", seed=0
    )
    recall = report.fraction_in_top(poisoned.is_poisoned, 2)
    lof = local_outlier_factor(X, n_neighbors=20)
    flagged = np.zeros(len(X), dtype=bool)
    flagged[np.argsort(-lof)[: poisoned.num_poisoned]] = True
    lof_recall = (flagged & poisoned.is_poisoned).sum() / poisoned.num_poisoned
    print(f"poison recall, top-2 influence-ranked clusters: {recall:.1%}")
    print(f"poison recall, LocalOutlierFactor baseline:     {lof_recall:.1%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and tests."""
    args = build_parser().parse_args(argv)
    handlers = {
        "explain": _cmd_explain,
        "report": _cmd_report,
        "detect": _cmd_detect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
