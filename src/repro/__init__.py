"""Gopher: interpretable data-based explanations for fairness debugging.

A reproduction of Pradhan, Zhu, Glavic & Salimi (SIGMOD 2022).  The most
common entry points are re-exported here; see the subpackages for the full
API surface:

* :mod:`repro.core` — the :class:`GopherExplainer` pipeline facade
* :mod:`repro.datasets` — fairness datasets, encoders, splits
* :mod:`repro.models` — twice-differentiable classifiers
* :mod:`repro.fairness` — bias metrics and smooth surrogates
* :mod:`repro.influence` — causal-responsibility estimators
* :mod:`repro.patterns` — the pattern language and lattice search
* :mod:`repro.updates` — update-based (repair) explanations
* :mod:`repro.baselines`, :mod:`repro.poisoning`, :mod:`repro.cluster`
"""

from repro.core import GopherConfig, GopherExplainer
from repro.datasets import (
    Dataset,
    ProtectedGroup,
    load_adult,
    load_german,
    load_sqf,
    train_test_split,
)
from repro.fairness import FairnessContext, fairness_report, get_metric
from repro.influence import make_estimator
from repro.models import LinearSVM, LogisticRegression, NeuralNetwork
from repro.patterns import Pattern, Predicate

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "FairnessContext",
    "GopherConfig",
    "GopherExplainer",
    "LinearSVM",
    "LogisticRegression",
    "NeuralNetwork",
    "Pattern",
    "Predicate",
    "ProtectedGroup",
    "__version__",
    "fairness_report",
    "get_metric",
    "load_adult",
    "load_german",
    "load_sqf",
    "make_estimator",
    "train_test_split",
]
