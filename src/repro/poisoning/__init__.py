"""Data poisoning attacks and their detection (paper §6.7).

The attack is the *non-random anchoring attack* of Mehrabi et al. (2021):
poisoned points are placed next to real "anchor" points of the target group
but carry flipped labels, so they blend into the data distribution (defeating
outlier detectors) while steering the learned decision boundary into unfair
territory.  Detection clusters the training data and ranks clusters by
second-order influence on bias: the poison concentrates in the top-ranked
clusters.
"""

from repro.poisoning.anchoring import AnchoringAttack, PoisonedDataset
from repro.poisoning.detection import DetectionReport, rank_clusters_by_influence

__all__ = [
    "AnchoringAttack",
    "DetectionReport",
    "PoisonedDataset",
    "rank_clusters_by_influence",
]
