"""Non-random anchoring attack (Mehrabi et al. 2021), re-implemented.

The attack worsens group fairness while staying inside the data
distribution:

* pick *anchor* points from the clean data — in the non-random variant,
  anchors are the densest points of their group, so poison lands where the
  data already concentrates;
* near anchors from the **protected group with favorable labels**, inject
  copies labelled *unfavorable*;
* near anchors from the **privileged group with unfavorable labels**, inject
  copies labelled *favorable*.

A model trained on the contaminated data learns protected → unfavorable and
privileged → favorable, i.e. amplified bias; and because every poisoned
point is a jittered copy of a real row, distance-based outlier detection
(LOF) sees nothing unusual — the failure mode §6.7 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.encoding import TabularEncoder
from repro.tabular import CategoricalColumn, NumericColumn, Table
from repro.utils.rng import ensure_rng


@dataclass
class PoisonedDataset:
    """A contaminated dataset plus the ground-truth poison mask."""

    dataset: Dataset
    is_poisoned: np.ndarray

    @property
    def num_poisoned(self) -> int:
        return int(self.is_poisoned.sum())


class AnchoringAttack:
    """Inject ``poison_fraction`` × n adversarial points into a dataset.

    Parameters
    ----------
    poison_fraction:
        Number of injected points as a fraction of the clean size.
    jitter:
        Std of the Gaussian noise added to numeric features, expressed as a
        fraction of each feature's std (categoricals are copied verbatim).
    anchor_mode:
        ``"non_random"`` picks the densest eligible anchors (the stronger
        attack from the cited paper); ``"random"`` samples anchors uniformly.
    """

    def __init__(
        self,
        poison_fraction: float = 0.1,
        jitter: float = 0.05,
        anchor_mode: str = "non_random",
        num_anchors: int = 5,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError(f"poison_fraction must be in (0, 1], got {poison_fraction}")
        if anchor_mode not in ("non_random", "random"):
            raise ValueError(f"anchor_mode must be 'non_random' or 'random', got {anchor_mode!r}")
        if num_anchors < 1:
            raise ValueError(f"num_anchors must be >= 1, got {num_anchors}")
        self.poison_fraction = float(poison_fraction)
        self.jitter = float(jitter)
        self.anchor_mode = anchor_mode
        self.num_anchors = int(num_anchors)
        self.seed = seed

    # ------------------------------------------------------------------
    def poison(self, dataset: Dataset) -> PoisonedDataset:
        """Return the contaminated dataset (clean rows first, poison appended)."""
        rng = ensure_rng(self.seed)
        n = dataset.num_rows
        budget = max(int(round(self.poison_fraction * n)), 2)
        privileged = dataset.privileged_mask()
        favorable = dataset.favorable_mask()

        prot_fav = np.flatnonzero(~privileged & favorable)
        priv_unfav = np.flatnonzero(privileged & ~favorable)
        if prot_fav.size == 0 or priv_unfav.size == 0:
            raise ValueError("dataset lacks the anchor groups the attack requires")

        half = budget // 2
        flip_unfav = 1 - dataset.favorable_label  # label given to protected-side poison
        flip_fav = dataset.favorable_label
        anchors_a = self._pick_anchors(dataset, prot_fav, half, rng)
        anchors_b = self._pick_anchors(dataset, priv_unfav, budget - half, rng)

        poison_rows = np.concatenate([anchors_a, anchors_b])
        poison_labels = np.concatenate(
            [np.full(len(anchors_a), flip_unfav), np.full(len(anchors_b), flip_fav)]
        ).astype(np.int64)

        poison_table = self._jittered_copy(dataset.table, poison_rows, rng)
        contaminated = dataset.with_rows(poison_table, poison_labels)
        is_poisoned = np.zeros(contaminated.num_rows, dtype=bool)
        is_poisoned[n:] = True
        return PoisonedDataset(dataset=contaminated, is_poisoned=is_poisoned)

    # ------------------------------------------------------------------
    def _pick_anchors(
        self,
        dataset: Dataset,
        pool: np.ndarray,
        count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Anchor indices (with replacement) from the eligible pool.

        Poison concentrates around a handful of anchors — that concentration
        is the attack's signature (and what influence-ranked clustering
        later exploits).  The non-random variant picks the densest pool
        points so the copies blend into high-density regions.
        """
        budget = min(self.num_anchors, len(pool))
        if self.anchor_mode == "random" or len(pool) <= budget:
            anchors = rng.choice(pool, size=budget, replace=False)
            return rng.choice(anchors, size=count, replace=True)
        # Non-random: rank pool points by local density in encoded space
        # (distance to the 5th neighbour within the pool, smaller = denser).
        encoder = TabularEncoder().fit(dataset.table)
        X = encoder.transform(dataset.table.take(pool))
        sq = (X**2).sum(axis=1)
        dist2 = np.maximum(sq[:, None] + sq[None, :] - 2.0 * (X @ X.T), 0.0)
        np.fill_diagonal(dist2, np.inf)
        kth = np.sort(dist2, axis=1)[:, min(4, len(pool) - 2)]
        densest = pool[np.argsort(kth)]
        return rng.choice(densest[:budget], size=count, replace=True)

    def _jittered_copy(
        self, table: Table, rows: np.ndarray, rng: np.random.Generator
    ) -> Table:
        base = table.take(rows)
        if self.jitter <= 0:
            return base
        columns = []
        for name in base.column_names:
            column = base.column(name)
            if isinstance(column, NumericColumn):
                scale = float(table.column(name).values.std()) * self.jitter
                noisy = column.values + rng.normal(0.0, scale or 0.0, len(column))
                lo = float(table.column(name).values.min())
                hi = float(table.column(name).values.max())
                values = np.clip(np.round(noisy), lo, hi)
                columns.append(NumericColumn(name, values))
            else:
                assert isinstance(column, CategoricalColumn)
                columns.append(column)
        return Table(columns)
