"""Detecting poisoned subsets by influence-ranked clustering (§6.7).

The defense: cluster the (encoded) training data, estimate every cluster's
second-order influence on model bias, and inspect the clusters whose removal
would reduce bias the most.  Anchoring-attack poison — which is invisible to
LOF because it mimics the data distribution — lands overwhelmingly in the
top-ranked clusters, because concentrating bias is exactly what the attack
optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.gmm import GaussianMixture
from repro.cluster.kmeans import KMeans
from repro.influence.estimators import InfluenceEstimator


@dataclass
class DetectionReport:
    """Clusters ranked by estimated responsibility for model bias."""

    cluster_labels: np.ndarray
    ranking: list[int]            # cluster ids, most bias-responsible first
    responsibilities: dict[int, float]
    sizes: dict[int, int]

    def top_clusters(self, j: int) -> list[int]:
        """The j most bias-responsible cluster ids."""
        if j < 1:
            raise ValueError(f"j must be >= 1, got {j}")
        return self.ranking[:j]

    def membership_mask(self, clusters: list[int]) -> np.ndarray:
        """Boolean mask of points belonging to any of the given clusters."""
        return np.isin(self.cluster_labels, clusters)

    def fraction_in_top(self, target_mask: np.ndarray, j: int = 2) -> float:
        """Fraction of ``target_mask`` points captured by the top-j clusters.

        With ``target_mask`` = the ground-truth poison mask this is the
        recall number the paper reports (~70% in the top-2 clusters).
        """
        target_mask = np.asarray(target_mask, dtype=bool)
        if target_mask.shape != self.cluster_labels.shape:
            raise ValueError("target mask must align with the clustered rows")
        total = int(target_mask.sum())
        if total == 0:
            raise ValueError("target mask selects no rows")
        captured = target_mask & self.membership_mask(self.top_clusters(j))
        return float(captured.sum() / total)


def rank_clusters_by_influence(
    X: np.ndarray,
    estimator: InfluenceEstimator,
    n_clusters: int = 10,
    method: str = "kmeans",
    seed: int | np.random.Generator | None = 0,
) -> DetectionReport:
    """Cluster training rows and rank clusters by bias responsibility.

    Parameters
    ----------
    X:
        Encoded training matrix (must be the estimator's training data).
    estimator:
        Influence estimator (the paper uses second-order) bound to the model
        trained on the possibly-poisoned data.
    n_clusters / method / seed:
        Clustering configuration; ``method`` is ``"kmeans"`` or ``"gmm"``.
    """
    X = np.asarray(X, dtype=np.float64)
    if len(X) != estimator.num_train:
        raise ValueError(
            f"X has {len(X)} rows but the estimator was built on {estimator.num_train}"
        )
    if method == "kmeans":
        labels = KMeans(n_clusters, seed=seed).fit(X).labels
    elif method == "gmm":
        labels = GaussianMixture(n_clusters, seed=seed).fit(X).predict(X)
    else:
        raise ValueError(f"method must be 'kmeans' or 'gmm', got {method!r}")
    assert labels is not None

    responsibilities: dict[int, float] = {}
    sizes: dict[int, int] = {}
    for cluster in range(n_clusters):
        members = np.flatnonzero(labels == cluster)
        sizes[cluster] = len(members)
        if len(members) == 0 or len(members) >= estimator.num_train:
            responsibilities[cluster] = -np.inf
            continue
        responsibilities[cluster] = estimator.responsibility(members)
    ranking = sorted(responsibilities, key=lambda c: -responsibilities[c])
    return DetectionReport(
        cluster_labels=labels,
        ranking=ranking,
        responsibilities=responsibilities,
        sizes=sizes,
    )
