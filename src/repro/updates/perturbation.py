"""Applying homogeneous perturbations and describing them in words."""

from __future__ import annotations

import numpy as np

from repro.datasets.encoding import TabularEncoder


def apply_delta(X: np.ndarray, indices: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Return a copy of ``X`` with ``delta`` added to the rows at ``indices``."""
    X = np.asarray(X, dtype=np.float64)
    out = X.copy()
    out[np.asarray(indices, dtype=np.int64)] += np.asarray(delta, dtype=np.float64)
    return out


def describe_update(
    encoder: TabularEncoder,
    before_rows: np.ndarray,
    after_rows: np.ndarray,
    numeric_tolerance: float = 1e-6,
) -> dict[str, tuple[str, str]]:
    """Summarize what a homogeneous update did, feature by feature.

    Categorical features report the modal category before and after
    (``("Female", "Male")``); numeric features report the rounded means.
    Features that did not change are omitted.
    """
    before_rows = np.atleast_2d(before_rows)
    after_rows = np.atleast_2d(after_rows)
    if before_rows.shape != after_rows.shape:
        raise ValueError("before/after row blocks must have identical shapes")
    changes: dict[str, tuple[str, str]] = {}
    for group in encoder.groups:
        sl = slice(group.start, group.stop)
        if group.kind == "categorical":
            modal_before = _modal_category(before_rows[:, sl], group.categories)
            modal_after = _modal_category(after_rows[:, sl], group.categories)
            if modal_before != modal_after:
                changes[group.column] = (modal_before, modal_after)
        else:
            mean_before = float(before_rows[:, sl].mean()) * group.std + group.mean
            mean_after = float(after_rows[:, sl].mean()) * group.std + group.mean
            if abs(mean_after - mean_before) > numeric_tolerance:
                changes[group.column] = (
                    f"{mean_before:.1f}",
                    f"{mean_after:.1f}",
                )
    return changes


def _modal_category(block: np.ndarray, categories: list[str]) -> str:
    winners = np.argmax(block, axis=1)
    counts = np.bincount(winners, minlength=len(categories))
    return categories[int(np.argmax(counts))]
