"""The projected-gradient-descent search for update-based explanations (§5).

Given a responsible subset S, the one-step-GD surrogate links a homogeneous
perturbation δ to new model parameters (Eq. 14):

    θ_p − θ* = −(η/n) [ Σ_{z∈S} ∇_θℓ(z + δ, θ*) − Σ_{z∈S} ∇_θℓ(z, θ*) ],

so the (linearized, Eq. 15) bias change is minimized by *maximizing*

    J(δ) = ∇_θF(θ*)ᵀ Σ_{z∈S} ∇_θℓ(z + δ, θ*)

over the feasible box (Eq. 16–18).  ∇_δJ is computed by central finite
differences on the (cheap, vectorized) subset gradient sum — exact enough
for every twice-differentiable model in the library while staying
model-agnostic.  After the continuous ascent, the perturbed points snap back
onto the input domain (Eq. 19) and the realized bias change is measured at
the one-step-GD parameters of the *projected* points, with optional
ground-truth verification by retraining on the updated training set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.encoding import TabularEncoder
from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.models.base import TwiceDifferentiableClassifier
from repro.patterns.pattern import Pattern
from repro.updates.domain import UpdateDomain
from repro.updates.perturbation import describe_update


@dataclass
class UpdateExplanation:
    """An update-based explanation: what to change and what it buys.

    ``est_bias_change`` is the one-step-GD estimate at the projected update;
    ``gt_bias_change`` (if verified) retrains on the updated training set.
    ``direction`` summarizes the verified effect the way the paper's Tables
    4–6 do: "decrease" (↓) means bias went down after the update.
    """

    pattern: Pattern
    support: float
    delta: np.ndarray = field(repr=False)
    changed_features: dict[str, tuple[str, str]]
    est_bias_change: float
    gt_bias_change: float | None = None
    removal_bias_change: float | None = None

    @property
    def bias_change(self) -> float:
        """Best available ΔF for the update (ground truth if verified)."""
        return self.gt_bias_change if self.gt_bias_change is not None else self.est_bias_change

    @property
    def direction(self) -> str:
        """Whether the update decreases or increases bias (signed ΔF)."""
        return "decrease" if self.bias_change < 0 else "increase"

    @property
    def direction_vs_removal(self) -> str:
        """The paper's Tables 4–6 arrow: does the update reduce bias by
        less (``"less"``, ↓) or more (``"more"``, ↑) than deleting the
        subset would?  Requires ``removal_bias_change``.
        """
        if self.removal_bias_change is None:
            raise ValueError("removal_bias_change was not provided")
        return "less" if self.bias_change > self.removal_bias_change else "more"

    def describe(self) -> str:
        changes = ", ".join(
            f"{feat}: {a} -> {b}" for feat, (a, b) in sorted(self.changed_features.items())
        )
        arrow = "v" if self.direction == "decrease" else "^"
        return f"{self.pattern}  [update {changes or '(none)'}; bias {arrow}]"

    def to_record(self) -> dict:
        """JSON-serializable summary of the update (for export pipelines)."""
        return {
            "pattern": str(self.pattern),
            "support": self.support,
            "changed_features": {
                feature: {"from": a, "to": b}
                for feature, (a, b) in self.changed_features.items()
            },
            "estimated_bias_change": self.est_bias_change,
            "ground_truth_bias_change": self.gt_bias_change,
            "removal_bias_change": self.removal_bias_change,
            "direction": self.direction,
        }


def find_update_explanation(
    model: TwiceDifferentiableClassifier,
    encoder: TabularEncoder,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    pattern: Pattern,
    subset_indices: np.ndarray,
    allowed_features: set[str] | None = None,
    learning_rate: float = 0.25,
    num_steps: int = 120,
    verify: bool = False,
    removal_bias_change: float | None = None,
) -> UpdateExplanation:
    """Run the Section-5 optimization for one pattern's subset.

    Parameters
    ----------
    allowed_features:
        Features δ may modify.  ``None`` defaults to the features the
        pattern itself mentions — the choice that keeps updates readable and
        matches the shape of the paper's Tables 4–6.
    learning_rate / num_steps:
        Projected-gradient-ascent schedule for the continuous phase.
    verify:
        Retrain on the updated training set to fill ``gt_bias_change``.
    """
    subset_indices = np.asarray(subset_indices, dtype=np.int64)
    if subset_indices.size == 0:
        raise ValueError("cannot compute an update for an empty subset")
    X_train = np.asarray(X_train, dtype=np.float64)
    subset_X = X_train[subset_indices]
    subset_y = np.asarray(y_train)[subset_indices]
    if allowed_features is None:
        allowed_features = pattern.features()
    domain = UpdateDomain(encoder, subset_X, allowed_features)
    grad_f = metric.grad_theta(model, test_ctx)

    delta = _ascend(model, subset_X, subset_y, grad_f, domain, learning_rate, num_steps)

    # Back off along δ if the full step overshoots past zero bias: among a
    # few scalings of δ (snapped onto the domain, Eq. 19) pick the one whose
    # estimated post-update |bias| is smallest.  The linearized objective is
    # blind to overshoot, so without this the "maximal" update can flip the
    # bias sign instead of removing it.
    original_bias = metric.value(model, test_ctx)
    best_rows, best_change = None, None
    for scale in (1.0, 0.75, 0.5, 0.25):
        rows = domain.snap_rows(subset_X + scale * delta)
        change = _one_step_bias_change(
            model, X_train, y_train, metric, test_ctx, subset_indices, rows
        )
        after = abs(original_bias + change)
        if best_change is None or after < abs(original_bias + best_change):
            best_rows, best_change = rows, change
    assert best_rows is not None and best_change is not None
    updated_rows = best_rows
    est_change = best_change
    changed = describe_update(encoder, subset_X, updated_rows)
    gt_change = None
    if verify:
        gt_change = _retrain_bias_change(
            model, X_train, y_train, metric, test_ctx, subset_indices, updated_rows
        )
    return UpdateExplanation(
        pattern=pattern,
        support=subset_indices.size / len(X_train),
        delta=delta,
        changed_features=changed,
        est_bias_change=est_change,
        gt_bias_change=gt_change,
        removal_bias_change=removal_bias_change,
    )


# ----------------------------------------------------------------------
def _objective(
    model: TwiceDifferentiableClassifier,
    subset_X: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    delta: np.ndarray,
) -> float:
    grads = model.per_sample_grads(subset_X + delta, subset_y)
    return float(grad_f @ grads.sum(axis=0))


def _ascend(
    model: TwiceDifferentiableClassifier,
    subset_X: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    domain: UpdateDomain,
    learning_rate: float,
    num_steps: int,
) -> np.ndarray:
    """Projected gradient ascent on J(δ) with finite-difference gradients."""
    dim = subset_X.shape[1]
    delta = np.zeros(dim)
    active = np.flatnonzero(domain.mask)
    eps = 1e-4
    for _ in range(num_steps):
        grad = np.zeros(dim)
        for j in active:
            step = np.zeros(dim)
            step[j] = eps
            plus = _objective(model, subset_X, subset_y, grad_f, delta + step)
            minus = _objective(model, subset_X, subset_y, grad_f, delta - step)
            grad[j] = (plus - minus) / (2.0 * eps)
        norm = np.linalg.norm(grad)
        if norm < 1e-12:
            break
        new_delta = domain.project_delta(delta + learning_rate * grad / norm)
        if np.allclose(new_delta, delta, atol=1e-10):
            break
        delta = new_delta
    return delta


def _one_step_bias_change(
    model: TwiceDifferentiableClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    subset_indices: np.ndarray,
    updated_rows: np.ndarray,
) -> float:
    """Eq. 14 evaluated at the projected update, with η = 1/λ_max(H)."""
    assert model.theta is not None
    n = len(X_train)
    old_grads = model.per_sample_grads(X_train[subset_indices], np.asarray(y_train)[subset_indices])
    new_grads = model.per_sample_grads(updated_rows, np.asarray(y_train)[subset_indices])
    hessian = model.hessian(X_train, y_train)
    eta = 1.0 / float(np.linalg.eigvalsh(hessian).max())
    theta_p = model.theta - (eta / n) * (new_grads.sum(axis=0) - old_grads.sum(axis=0))
    before = metric.value(model, test_ctx)
    after = metric.value(model, test_ctx, theta_p)
    return float(after - before)


def _retrain_bias_change(
    model: TwiceDifferentiableClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    subset_indices: np.ndarray,
    updated_rows: np.ndarray,
) -> float:
    """Ground truth: retrain with the subset replaced by its updated rows."""
    assert model.theta is not None
    X_new = np.asarray(X_train, dtype=np.float64).copy()
    X_new[subset_indices] = updated_rows
    clone = model.clone()
    clone.fit(X_new, np.asarray(y_train), warm_start=model.theta.copy())
    before = metric.value(model, test_ctx)
    after = metric.value(clone, test_ctx)
    return float(after - before)
