"""The projected-gradient-descent search for update-based explanations (§5).

Given a responsible subset S, the one-step-GD surrogate links a homogeneous
perturbation δ to new model parameters (Eq. 14):

    θ_p − θ* = −(η/n) [ Σ_{z∈S} ∇_θℓ(z + δ, θ*) − Σ_{z∈S} ∇_θℓ(z, θ*) ],

so the (linearized, Eq. 15) |bias| reduction is achieved by ascending

    J(δ) = sign(F(θ*)) · ∇_θF(θ*)ᵀ Σ_{z∈S} ∇_θℓ(z + δ, θ*)

over the feasible box (Eq. 16–18).  After the continuous ascent, the
perturbed points snap back onto the input domain (Eq. 19) and the realized
bias change is measured at the one-step-GD parameters of the *projected*
points, with optional ground-truth verification by retraining on the
updated training set.

Cost model
----------
The search splits into a subset-independent **start-up** — ∇_θF, the
training Hessian and its auto step size η = 1/λ_max(H), the original bias,
and the per-sample training gradients — owned by one
:class:`UpdateSearchContext` shared across every pattern and backoff scale,
and a per-pattern **search**:

* **ascent** — each step needs ∇_δJ over the active coordinates.  The
  batched path evaluates it as *one* stacked ``per_sample_grads`` call over
  all 2·|active| centrally-perturbed copies of the subset (or, for models
  with the analytic :meth:`~repro.models.base.TwiceDifferentiableClassifier.input_grads`
  hook, a single closed-form call), where the ``batch=False`` loop issues
  2·|active| objective evaluations per step from Python.
* **backoff scoring** — Eq. 14 at every pattern × scale candidate is one
  concatenated gradient pass plus one vectorized metric evaluation over the
  stacked θ_p's, replacing a fresh Hessian eigendecomposition and metric
  call per scale.
* **verification** — ground-truth retrains for all updates go through the
  shared process-parallel helper (:func:`repro.influence.parallel.retrain_thetas`).

``batch=False`` keeps the per-coordinate finite-difference loop (with the
fixed sign conventions) for equivalence testing, mirroring the lattice
search's ``batch`` flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.encoding import TabularEncoder
from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.one_step_gd import auto_learning_rate
from repro.influence.parallel import RetrainTask, retrain_thetas
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace
from repro.patterns.pattern import Pattern
from repro.updates.domain import UpdateDomain
from repro.updates.perturbation import describe_update

_BACKOFF_SCALES = (1.0, 0.75, 0.5, 0.25)


@dataclass
class UpdateExplanation:
    """An update-based explanation: what to change and what it buys.

    ``est_bias_change`` is the one-step-GD estimate at the projected update;
    ``gt_bias_change`` (if verified) retrains on the updated training set.
    ``direction`` summarizes the verified effect the way the paper's Tables
    4–6 do: "decrease" (↓) means the magnitude of the bias went down after
    the update.  ``removal_source`` records whether ``removal_bias_change``
    came from ground-truth retraining or from an influence estimate.
    """

    pattern: Pattern
    support: float
    delta: np.ndarray = field(repr=False)
    changed_features: dict[str, tuple[str, str]]
    est_bias_change: float
    gt_bias_change: float | None = None
    removal_bias_change: float | None = None
    original_bias: float | None = None
    removal_source: str | None = None

    @property
    def bias_change(self) -> float:
        """Best available ΔF for the update (ground truth if verified)."""
        return self.gt_bias_change if self.gt_bias_change is not None else self.est_bias_change

    @property
    def direction(self) -> str:
        """Whether the update decreases or increases the *magnitude* of bias.

        The signed ΔF alone is not enough: when the model's signed bias is
        negative, the bias-reducing update has ΔF > 0.  Compare |bias|
        before and after instead.  Without ``original_bias`` (hand-built
        instances) fall back to the signed convention, which is correct for
        a positive original bias.
        """
        if self.original_bias is None:
            return "decrease" if self.bias_change < 0 else "increase"
        after = abs(self.original_bias + self.bias_change)
        return "decrease" if after < abs(self.original_bias) else "increase"

    @property
    def direction_vs_removal(self) -> str:
        """The paper's Tables 4–6 arrow: does the update reduce |bias| by
        less (``"less"``, ↓) or more (``"more"``, ↑) than deleting the
        subset would?  Requires ``removal_bias_change``.
        """
        if self.removal_bias_change is None:
            raise ValueError("removal_bias_change was not provided")
        if self.original_bias is None:
            return "less" if self.bias_change > self.removal_bias_change else "more"
        after_update = abs(self.original_bias + self.bias_change)
        after_removal = abs(self.original_bias + self.removal_bias_change)
        return "less" if after_update > after_removal else "more"

    def describe(self) -> str:
        changes = ", ".join(
            f"{feat}: {a} -> {b}" for feat, (a, b) in sorted(self.changed_features.items())
        )
        arrow = "v" if self.direction == "decrease" else "^"
        return f"{self.pattern}  [update {changes or '(none)'}; bias {arrow}]"

    def to_record(self) -> dict:
        """JSON-serializable summary of the update (for export pipelines)."""
        return {
            "pattern": str(self.pattern),
            "support": self.support,
            "changed_features": {
                feature: {"from": a, "to": b}
                for feature, (a, b) in self.changed_features.items()
            },
            "estimated_bias_change": self.est_bias_change,
            "ground_truth_bias_change": self.gt_bias_change,
            "removal_bias_change": self.removal_bias_change,
            "removal_bias_source": self.removal_source,
            "original_bias": self.original_bias,
            "direction": self.direction,
        }


@dataclass
class UpdateExplanationSet:
    """The full output of one update search: aligned updates plus timings."""

    updates: list[UpdateExplanation]
    metric_name: str
    original_bias: float
    search_seconds: float
    verify_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def __getitem__(self, index: int) -> UpdateExplanation:
        return self.updates[index]

    def to_records(self) -> list[dict]:
        """JSON-serializable records, one per update."""
        return [update.to_record() for update in self.updates]

    def render(self) -> str:
        """Paper-style table: pattern, the update, Δbias, the Tables 4–6 arrows."""
        header = (
            f"Update-based explanations ({self.metric_name}, "
            f"original bias = {self.original_bias:.4f})"
        )
        lines = [header, "-" * len(header)]
        for update in self.updates:
            changes = ", ".join(
                f"{feat}: {a} -> {b}"
                for feat, (a, b) in sorted(update.changed_features.items())
            )
            delta = f"{update.bias_change:+.4f}"
            if update.gt_bias_change is None:
                delta += "*"
            arrow = "v" if update.direction == "decrease" else "^"
            versus = (
                update.direction_vs_removal
                if update.removal_bias_change is not None
                else "n/a"
            )
            lines.append(
                f"{update.support:7.2%}  {delta:>9s} {arrow}  vs removal: {versus:<4s}  "
                f"{update.pattern}  [{changes or 'no change found'}]"
            )
        timing = f"(search {self.search_seconds:.2f}s"
        if self.verify_seconds:
            timing += f", verify {self.verify_seconds:.2f}s"
        lines.append(timing + "; * = estimated one-step Δbias, unverified)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class UpdateSearchContext:
    """Subset-independent state of the §5 search, computed once and shared.

    The per-pattern loop used to rebuild and eigendecompose the training
    Hessian for every backoff scale (4× per pattern) and re-derive ∇F per
    ascent.  All of that depends only on (model, training data, metric,
    test context), so one context owns it: ∇_θF, the training Hessian, the
    auto step size η = 1/λ_max(H) — obtained through the *same*
    :func:`repro.influence.one_step_gd.auto_learning_rate` helper as the §4
    one-step estimator, so the two surrogates can never disagree on η — the
    original bias, and the per-sample training gradients that seed every
    update's old-gradient sums.

    Handed a shared :class:`~repro.influence.artifacts.ModelArtifacts`
    bundle, the context splits further: the metric-*independent* half
    (Hessian, η, train grads) is served from
    :meth:`~repro.influence.artifacts.ModelArtifacts.update_search_state`
    — built once per bundle however many metric views call
    ``explain_updates`` — and only ∇F plus the original bias are computed
    per context.  Standalone construction (no bundle) computes everything
    itself, exactly as before.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        if model.theta is None:
            raise ValueError("model must be fitted before building an update-search context")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.metric = metric
        self.test_ctx = test_ctx
        self.theta = np.asarray(model.theta, dtype=np.float64)
        self.num_train = len(self.X_train)
        self._artifacts = artifacts
        if artifacts is not None:
            artifacts.check_compatible(model, X_train, y_train)
            self.hessian, self.learning_rate = artifacts.update_search_state()
            with trace.span("update.grad_f", n=self.num_train, metric=metric.name):
                self.grad_f = metric.grad_theta(model, test_ctx)
                self.original_bias = float(metric.value(model, test_ctx))
        else:
            with trace.span(
                "update.context", n=self.num_train, metric=metric.name
            ):
                self.grad_f = metric.grad_theta(model, test_ctx)
                self.original_bias = float(metric.value(model, test_ctx))
                self.hessian = model.hessian(self.X_train, self.y_train)
                self.learning_rate = auto_learning_rate(self.hessian)
        self._train_grads: np.ndarray | None = None

    @property
    def train_grads(self) -> np.ndarray:
        """∇_θℓ(z_i, θ*) for all training rows, shape (n, p) (cached)."""
        if self._artifacts is not None:
            return self._artifacts.per_sample_grads
        if self._train_grads is None:
            self._train_grads = self.model.per_sample_grads(self.X_train, self.y_train)
        return self._train_grads

    @property
    def ascent_grad_f(self) -> np.ndarray:
        """∇F oriented so that ascending J always *shrinks* |bias|.

        Maximizing ∇FᵀΣ∇ℓ(z+δ) minimizes the linearized ΔF — the right goal
        only while the signed bias is positive.  For a negative original
        bias the search must push ΔF *up* toward zero, i.e. ascend −J.
        """
        return self.grad_f if self.original_bias >= 0 else -self.grad_f

    def subset_grad_sum(self, indices: np.ndarray) -> np.ndarray:
        """g_S = Σ_{i∈S} ∇ℓ(z_i, θ*) from the cached training gradients."""
        return self.train_grads[indices].sum(axis=0)

    def one_step_thetas(self, grad_diffs: np.ndarray) -> np.ndarray:
        """Eq. 14 for a (m, p) stack of Σ∇ℓ(updated) − Σ∇ℓ(original) sums."""
        return self.theta[None, :] - (self.learning_rate / self.num_train) * grad_diffs


def find_update_explanations(
    model: TwiceDifferentiableClassifier,
    encoder: TabularEncoder,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    patterns: list[Pattern],
    subset_indices: list[np.ndarray],
    *,
    allowed_features: set[str] | None = None,
    learning_rate: float = 0.25,
    num_steps: int = 120,
    verify: bool = False,
    removal_bias_changes: list[float | None] | None = None,
    removal_sources: list[str | None] | None = None,
    batch: bool = True,
    use_input_grads: bool = True,
    context: UpdateSearchContext | None = None,
    n_jobs: int | None = None,
) -> UpdateExplanationSet:
    """Run the Section-5 optimization for many patterns in one engine pass.

    Parameters
    ----------
    patterns / subset_indices:
        Aligned lists: one update search per (pattern, covered-rows) pair.
    allowed_features:
        Features δ may modify.  ``None`` defaults, per pattern, to the
        features the pattern itself mentions — the choice that keeps updates
        readable and matches the shape of the paper's Tables 4–6.
    learning_rate / num_steps:
        Projected-gradient-ascent schedule for the continuous phase.
    verify:
        Retrain on each updated training set (through the shared
        process-parallel helper; ``n_jobs`` workers) to fill
        ``gt_bias_change``.
    removal_bias_changes / removal_sources:
        Optional aligned reference ΔF's of *removing* each subset (and where
        each number came from, e.g. ``"ground_truth"`` / ``"estimated"``),
        enabling ``direction_vs_removal``.
    batch:
        ``False`` runs the per-coordinate finite-difference loop and scores
        backoff scales one at a time — kept for equivalence testing.
    use_input_grads:
        Allow the analytic ``input_grads`` fast path when the model has one
        (batched path only); disable to force stacked finite differences.
    context:
        A pre-built :class:`UpdateSearchContext` to share start-up work
        across calls; one is built on the fly when omitted.
    """
    if len(patterns) != len(subset_indices):
        raise ValueError("patterns and subset_indices must be aligned")
    removal_bias_changes = _aligned(removal_bias_changes, len(patterns), "removal_bias_changes")
    removal_sources = _aligned(removal_sources, len(patterns), "removal_sources")
    subsets = []
    for indices in subset_indices:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValueError("cannot compute an update for an empty subset")
        subsets.append(indices)
    if context is None:
        context = UpdateSearchContext(model, X_train, y_train, metric, test_ctx)
    elif context.model is not model:
        # The ascent evaluates the argument model while η, ∇F, scoring, and
        # the original bias come from the context — a mismatch would produce
        # a silently inconsistent hybrid.
        raise ValueError("context was built for a different model instance")
    if not patterns:
        return UpdateExplanationSet(
            updates=[],
            metric_name=metric.name,
            original_bias=context.original_bias,
            search_seconds=0.0,
        )

    start = time.perf_counter()
    with trace.span("update.search", patterns=len(patterns), steps=num_steps):
        subset_Xs = [context.X_train[indices] for indices in subsets]
        subset_ys = [context.y_train[indices] for indices in subsets]
        domains = [
            UpdateDomain(
                encoder,
                subset_X,
                allowed_features if allowed_features is not None else pattern.features(),
            )
            for pattern, subset_X in zip(patterns, subset_Xs)
        ]
        if batch:
            # One ascent over all k patterns: active sets rarely overlap, so
            # the k per-step model calls collapse into one stacked call over
            # every still-live pattern (see _ascend_all).
            with trace.span(
                "update.ascent",
                patterns=len(patterns),
                rows=int(sum(indices.size for indices in subsets)),
            ):
                deltas = _ascend_all(
                    model, subset_Xs, subset_ys, context.ascent_grad_f, domains,
                    learning_rate, num_steps, use_input_grads=use_input_grads,
                )
        else:
            deltas = []
            for subset_X, subset_y, domain, indices in zip(
                subset_Xs, subset_ys, domains, subsets
            ):
                with trace.span(
                    "update.ascent",
                    rows=int(indices.size),
                    features=len(domain.allowed_features),
                ):
                    deltas.append(
                        _ascend_loop(
                            model, subset_X, subset_y, context.ascent_grad_f, domain,
                            learning_rate, num_steps,
                        )
                    )
        score = _score_backoff_batch if batch else _score_backoff_loop
        with trace.span(
            "update.score", scales=len(_BACKOFF_SCALES) * len(patterns)
        ):
            best_rows, best_changes = score(context, domains, subsets, deltas)
    search_seconds = time.perf_counter() - start

    verify_seconds = 0.0
    gt_changes: list[float | None] = [None] * len(patterns)
    if verify:
        start = time.perf_counter()
        with trace.span("update.verify", retrains=len(subsets)):
            tasks = [
                RetrainTask(indices, rows) for indices, rows in zip(subsets, best_rows)
            ]
            thetas = retrain_thetas(
                model, context.X_train, context.y_train, tasks,
                warm_start=context.theta, n_jobs=n_jobs if batch else 1,
            )
            after = metric.value_batch(model, test_ctx, thetas)
            gt_changes = [float(a - context.original_bias) for a in after]
        verify_seconds = time.perf_counter() - start

    updates = []
    for i, (pattern, indices) in enumerate(zip(patterns, subsets)):
        updates.append(
            UpdateExplanation(
                pattern=pattern,
                support=indices.size / context.num_train,
                delta=deltas[i],
                changed_features=describe_update(
                    encoder, context.X_train[indices], best_rows[i]
                ),
                est_bias_change=best_changes[i],
                gt_bias_change=gt_changes[i],
                removal_bias_change=removal_bias_changes[i],
                original_bias=context.original_bias,
                removal_source=removal_sources[i],
            )
        )
    return UpdateExplanationSet(
        updates=updates,
        metric_name=metric.name,
        original_bias=context.original_bias,
        search_seconds=search_seconds,
        verify_seconds=verify_seconds,
    )


def find_update_explanation(
    model: TwiceDifferentiableClassifier,
    encoder: TabularEncoder,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    pattern: Pattern,
    subset_indices: np.ndarray,
    allowed_features: set[str] | None = None,
    learning_rate: float = 0.25,
    num_steps: int = 120,
    verify: bool = False,
    removal_bias_change: float | None = None,
    removal_source: str | None = None,
    batch: bool = True,
    use_input_grads: bool = True,
    context: UpdateSearchContext | None = None,
) -> UpdateExplanation:
    """Single-pattern convenience wrapper around :func:`find_update_explanations`."""
    result = find_update_explanations(
        model, encoder, X_train, y_train, metric, test_ctx,
        [pattern], [subset_indices],
        allowed_features=allowed_features,
        learning_rate=learning_rate,
        num_steps=num_steps,
        verify=verify,
        removal_bias_changes=[removal_bias_change],
        removal_sources=[removal_source],
        batch=batch,
        use_input_grads=use_input_grads,
        context=context,
    )
    return result[0]


def _aligned(values: list | None, count: int, name: str) -> list:
    if values is None:
        return [None] * count
    if len(values) != count:
        raise ValueError(f"{name} must have one entry per pattern")
    return list(values)


# ----------------------------------------------------------------------
# Continuous ascent
# ----------------------------------------------------------------------
def _objective(
    model: TwiceDifferentiableClassifier,
    subset_X: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    delta: np.ndarray,
) -> float:
    grads = model.per_sample_grads(subset_X + delta, subset_y)
    return float(grad_f @ grads.sum(axis=0))


def _ascend_loop(
    model: TwiceDifferentiableClassifier,
    subset_X: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    domain: UpdateDomain,
    learning_rate: float,
    num_steps: int,
    use_input_grads: bool = False,
) -> np.ndarray:
    """Per-coordinate central differences — the reference ``batch=False`` path."""
    dim = subset_X.shape[1]
    delta = np.zeros(dim)
    active = np.flatnonzero(domain.mask)
    eps = 1e-4
    for _ in range(num_steps):
        grad = np.zeros(dim)
        for j in active:
            step = np.zeros(dim)
            step[j] = eps
            plus = _objective(model, subset_X, subset_y, grad_f, delta + step)
            minus = _objective(model, subset_X, subset_y, grad_f, delta - step)
            grad[j] = (plus - minus) / (2.0 * eps)
        norm = np.linalg.norm(grad)
        if norm < 1e-12:
            break
        new_delta = domain.project_delta(delta + learning_rate * grad / norm)
        if np.allclose(new_delta, delta, atol=1e-10):
            break
        delta = new_delta
    return delta


def _supports_input_grads(model: TwiceDifferentiableClassifier) -> bool:
    return type(model).input_grads is not TwiceDifferentiableClassifier.input_grads


def _ascend_batch(
    model: TwiceDifferentiableClassifier,
    subset_X: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    domain: UpdateDomain,
    learning_rate: float,
    num_steps: int,
    use_input_grads: bool = True,
) -> np.ndarray:
    """One stacked (or analytic) gradient evaluation per ascent step."""
    dim = subset_X.shape[1]
    delta = np.zeros(dim)
    active = np.flatnonzero(domain.mask)
    if active.size == 0:
        return delta
    analytic = use_input_grads and _supports_input_grads(model)
    eps = 1e-4
    for _ in range(num_steps):
        base = subset_X + delta
        if analytic:
            full = model.input_grads(base, subset_y, grad_f).sum(axis=0)
            grad = np.zeros(dim)
            grad[active] = full[active]
        else:
            grad = _stacked_fd_grad(model, base, subset_y, grad_f, active, eps, dim)
        norm = np.linalg.norm(grad)
        if norm < 1e-12:
            break
        new_delta = domain.project_delta(delta + learning_rate * grad / norm)
        if np.allclose(new_delta, delta, atol=1e-10):
            break
        delta = new_delta
    return delta


def _ascend_all(
    model: TwiceDifferentiableClassifier,
    subset_Xs: list[np.ndarray],
    subset_ys: list[np.ndarray],
    grad_f: np.ndarray,
    domains: list[UpdateDomain],
    learning_rate: float,
    num_steps: int,
    use_input_grads: bool = True,
) -> list[np.ndarray]:
    """Ascend all k patterns together: one model call per step, not k.

    Each pattern keeps its own δ, projection, and convergence test —
    identical per-pattern arithmetic to :func:`_ascend_batch` — but the
    per-step gradient evaluations of every still-live pattern concatenate
    into a single ``input_grads`` (or stacked finite-difference
    ``per_sample_grads``) call.  The built-in models evaluate gradients
    row-wise, so each pattern's slice of the concatenated result matches
    its standalone evaluation; converged patterns drop out of the stack,
    so late steps shrink toward the hardest pattern alone.
    """
    deltas = [np.zeros(subset_X.shape[1]) for subset_X in subset_Xs]
    actives = [np.flatnonzero(domain.mask) for domain in domains]
    live = [i for i in range(len(domains)) if actives[i].size]
    if not live:
        return deltas
    analytic = use_input_grads and _supports_input_grads(model)
    eps = 1e-4
    for _ in range(num_steps):
        bases = [subset_Xs[i] + deltas[i] for i in live]
        if analytic:
            full = model.input_grads(
                np.concatenate(bases, axis=0),
                np.concatenate([subset_ys[i] for i in live]),
                grad_f,
            )
            grads = []
            start = 0
            for i, base in zip(live, bases):
                summed = full[start : start + base.shape[0]].sum(axis=0)
                start += base.shape[0]
                grad = np.zeros(base.shape[1])
                grad[actives[i]] = summed[actives[i]]
                grads.append(grad)
        else:
            grads = _stacked_fd_grad_all(
                model, bases, [subset_ys[i] for i in live],
                grad_f, [actives[i] for i in live], eps,
            )
        still = []
        for i, grad in zip(live, grads):
            norm = np.linalg.norm(grad)
            if norm < 1e-12:
                continue
            new_delta = domains[i].project_delta(deltas[i] + learning_rate * grad / norm)
            if np.allclose(new_delta, deltas[i], atol=1e-10):
                continue
            deltas[i] = new_delta
            still.append(i)
        live = still
        if not live:
            break
    return deltas


def _stacked_fd_grad_all(
    model: TwiceDifferentiableClassifier,
    bases: list[np.ndarray],
    subset_ys: list[np.ndarray],
    grad_f: np.ndarray,
    actives: list[np.ndarray],
    eps: float,
) -> list[np.ndarray]:
    """Central-difference ∇_δJ for many patterns in one stacked model call.

    Builds each pattern's 2·|active| centrally-perturbed copies exactly as
    :func:`_stacked_fd_grad` does, concatenates every pattern's stack, and
    splits the single ``per_sample_grads`` result back per pattern.
    """
    blocks, labels = [], []
    for base, subset_y, active in zip(bases, subset_ys, actives):
        s, dim = base.shape
        a = active.size
        stacked = np.repeat(base[None, :, :], 2 * a, axis=0)
        arange = np.arange(a)
        stacked[arange, :, active] += eps
        stacked[a + arange, :, active] -= eps
        blocks.append(stacked.reshape(2 * a * s, dim))
        labels.append(np.tile(subset_y, 2 * a))
    grads = model.per_sample_grads(np.concatenate(blocks, axis=0), np.concatenate(labels))
    out = []
    start = 0
    for base, active in zip(bases, actives):
        s, dim = base.shape
        a = active.size
        segment = grads[start : start + 2 * a * s]
        start += 2 * a * s
        values = segment.reshape(2 * a, s, -1).sum(axis=1) @ grad_f
        grad = np.zeros(dim)
        grad[active] = (values[:a] - values[a:]) / (2.0 * eps)
        out.append(grad)
    return out


def _stacked_fd_grad(
    model: TwiceDifferentiableClassifier,
    base: np.ndarray,
    subset_y: np.ndarray,
    grad_f: np.ndarray,
    active: np.ndarray,
    eps: float,
    dim: int,
) -> np.ndarray:
    """∇_δJ by central differences, all 2·|active| copies in one model call."""
    s = base.shape[0]
    a = active.size
    stacked = np.repeat(base[None, :, :], 2 * a, axis=0)
    arange = np.arange(a)
    stacked[arange, :, active] += eps
    stacked[a + arange, :, active] -= eps
    grads = model.per_sample_grads(stacked.reshape(2 * a * s, dim), np.tile(subset_y, 2 * a))
    values = grads.reshape(2 * a, s, -1).sum(axis=1) @ grad_f
    grad = np.zeros(dim)
    grad[active] = (values[:a] - values[a:]) / (2.0 * eps)
    return grad


# ----------------------------------------------------------------------
# Backoff-scale scoring (Eq. 14 at the projected candidates)
# ----------------------------------------------------------------------
def _one_step_bias_change(
    context: UpdateSearchContext,
    subset_indices: np.ndarray,
    updated_rows: np.ndarray,
) -> float:
    """Eq. 14 evaluated at one projected update, at the context's shared η."""
    new_sum = context.model.per_sample_grads(
        updated_rows, context.y_train[subset_indices]
    ).sum(axis=0)
    diff = new_sum - context.subset_grad_sum(subset_indices)
    theta_p = context.one_step_thetas(diff[None, :])[0]
    after = context.metric.value(context.model, context.test_ctx, theta_p)
    return float(after - context.original_bias)


def _backoff_candidates(
    context: UpdateSearchContext,
    domains: list[UpdateDomain],
    subsets: list[np.ndarray],
    deltas: list[np.ndarray],
) -> list[list[np.ndarray]]:
    """Snapped (Eq. 19) row blocks for every pattern × backoff scale."""
    candidates = []
    for domain, indices, delta in zip(domains, subsets, deltas):
        base = context.X_train[indices]
        candidates.append(
            [domain.snap_rows(base + scale * delta) for scale in _BACKOFF_SCALES]
        )
    return candidates


def _pick_scale(context: UpdateSearchContext, changes: np.ndarray) -> int:
    """The scale whose estimated post-update |bias| is smallest (first wins).

    The linearized objective is blind to overshoot, so without the backoff
    the "maximal" update can flip the bias sign instead of removing it.
    """
    return int(np.argmin(np.abs(context.original_bias + changes)))


def _score_backoff_loop(
    context: UpdateSearchContext,
    domains: list[UpdateDomain],
    subsets: list[np.ndarray],
    deltas: list[np.ndarray],
) -> tuple[list[np.ndarray], list[float]]:
    best_rows, best_changes = [], []
    for indices, scaled_rows in zip(
        subsets, _backoff_candidates(context, domains, subsets, deltas)
    ):
        changes = np.array(
            [_one_step_bias_change(context, indices, rows) for rows in scaled_rows]
        )
        k = _pick_scale(context, changes)
        best_rows.append(scaled_rows[k])
        best_changes.append(float(changes[k]))
    return best_rows, best_changes


def _score_backoff_batch(
    context: UpdateSearchContext,
    domains: list[UpdateDomain],
    subsets: list[np.ndarray],
    deltas: list[np.ndarray],
) -> tuple[list[np.ndarray], list[float]]:
    """All pattern × scale candidates through one gradient pass + one
    vectorized metric evaluation."""
    candidates = _backoff_candidates(context, domains, subsets, deltas)
    blocks = [rows for scaled_rows in candidates for rows in scaled_rows]
    labels = [
        context.y_train[indices]
        for indices in subsets
        for _ in _BACKOFF_SCALES
    ]
    grads = context.model.per_sample_grads(
        np.concatenate(blocks, axis=0), np.concatenate(labels)
    )
    sizes = np.array([len(rows) for rows in blocks], dtype=np.int64)
    starts = np.zeros(len(blocks), dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    new_sums = np.add.reduceat(grads, starts, axis=0)
    old_sums = np.repeat(
        np.stack([context.subset_grad_sum(indices) for indices in subsets]),
        len(_BACKOFF_SCALES),
        axis=0,
    )
    thetas = context.one_step_thetas(new_sums - old_sums)
    after = context.metric.value_batch(context.model, context.test_ctx, thetas)
    changes = np.asarray(after) - context.original_bias

    num_scales = len(_BACKOFF_SCALES)
    best_rows, best_changes = [], []
    for i, scaled_rows in enumerate(candidates):
        chunk = changes[i * num_scales:(i + 1) * num_scales]
        k = _pick_scale(context, chunk)
        best_rows.append(scaled_rows[k])
        best_changes.append(float(chunk[k]))
    return best_rows, best_changes
