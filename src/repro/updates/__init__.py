"""Update-based explanations (paper Section 5).

Instead of deleting a responsible subset, Gopher can search for a
*homogeneous update* — one perturbation vector δ applied to every data point
the pattern covers — that maximally reduces model bias.  The search is a
projected gradient ascent in encoded feature space (Eq. 16–18) followed by a
projection of the updated points back onto the valid input domain (Eq. 19).
"""

from repro.updates.domain import UpdateDomain
from repro.updates.perturbation import apply_delta, describe_update
from repro.updates.projected_gd import UpdateExplanation, find_update_explanation

__all__ = [
    "UpdateDomain",
    "UpdateExplanation",
    "apply_delta",
    "describe_update",
    "find_update_explanation",
]
