"""Update-based explanations (paper Section 5).

Instead of deleting a responsible subset, Gopher can search for a
*homogeneous update* — one perturbation vector δ applied to every data point
the pattern covers — that maximally reduces model bias.  The search is a
projected gradient ascent in encoded feature space (Eq. 16–18) followed by a
projection of the updated points back onto the valid input domain (Eq. 19).
The vectorized engine (:func:`find_update_explanations`) searches many
patterns per call, sharing one :class:`UpdateSearchContext` of start-up work
and batching the backoff-scale scoring and verification retrains.
"""

from repro.updates.domain import UpdateDomain
from repro.updates.perturbation import apply_delta, describe_update
from repro.updates.projected_gd import (
    UpdateExplanation,
    UpdateExplanationSet,
    UpdateSearchContext,
    find_update_explanation,
    find_update_explanations,
)

__all__ = [
    "UpdateDomain",
    "UpdateExplanation",
    "UpdateExplanationSet",
    "UpdateSearchContext",
    "apply_delta",
    "describe_update",
    "find_update_explanation",
    "find_update_explanations",
]
