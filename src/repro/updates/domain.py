"""Domain constraints for homogeneous updates.

A perturbation vector δ lives in the encoded feature space.  The domain
object knows, per encoded coordinate, which components δ may touch (only the
features the caller allows — by default the features mentioned in the
pattern being explained, which is what keeps updates interpretable) and what
box the *perturbed points* must stay inside during the continuous phase:

* numeric slots: the observed [min, max] of the training data (standardized);
* one-hot slots: the [0, 1] box relaxation of the simplex.

The final snap onto exact one-hot vectors / clipped numerics (paper Eq. 19)
is :meth:`repro.datasets.TabularEncoder.project_rows`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.encoding import TabularEncoder


class UpdateDomain:
    """Feasible-region bookkeeping for the projected-gradient update search."""

    def __init__(
        self,
        encoder: TabularEncoder,
        subset_X: np.ndarray,
        allowed_features: set[str] | None = None,
    ) -> None:
        if len(subset_X) == 0:
            raise ValueError("cannot build an update domain for an empty subset")
        self.encoder = encoder
        self.subset_X = np.asarray(subset_X, dtype=np.float64)
        dim = encoder.num_features
        if self.subset_X.shape[1] != dim:
            raise ValueError(
                f"subset has {self.subset_X.shape[1]} features, encoder expects {dim}"
            )
        known = {g.column for g in encoder.groups}
        if allowed_features is not None:
            unknown = allowed_features - known
            if unknown:
                raise ValueError(f"unknown features in allowed set: {sorted(unknown)}")
        self.allowed_features = allowed_features if allowed_features is not None else known

        self.mask = np.zeros(dim, dtype=bool)
        self.delta_lo = np.zeros(dim)
        self.delta_hi = np.zeros(dim)
        for group in encoder.groups:
            if group.column not in self.allowed_features:
                continue
            sl = slice(group.start, group.stop)
            self.mask[sl] = True
            block = self.subset_X[:, sl]
            # One δ moves every subset row, so each bound binds on the row
            # closest to the edge: δ >= lo − min(x) and δ <= hi − max(x).
            if group.kind == "categorical":
                self.delta_lo[sl] = -block.min(axis=0)
                self.delta_hi[sl] = 1.0 - block.max(axis=0)
            else:
                lo = (group.minimum - group.mean) / group.std
                hi = (group.maximum - group.mean) / group.std
                self.delta_lo[sl] = lo - block.min(axis=0)
                self.delta_hi[sl] = hi - block.max(axis=0)

    def project_delta(self, delta: np.ndarray) -> np.ndarray:
        """Clip δ into the feasible box and zero out untouchable coordinates."""
        delta = np.asarray(delta, dtype=np.float64).copy()
        delta[~self.mask] = 0.0
        np.clip(delta, self.delta_lo, self.delta_hi, out=delta)
        return delta

    def snap_rows(self, rows: np.ndarray) -> np.ndarray:
        """Paper Eq. 19: project perturbed rows onto the exact input domain."""
        return self.encoder.project_rows(rows)
