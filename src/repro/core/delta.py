"""Incremental replay of a depth-2 lattice search after a data edit.

:meth:`repro.core.AuditSession.delta_audit` answers a re-audit without
re-running Algorithm 1.  The trick is that a ``max_predicates <= 2``
search is *structurally* a pure function of the level-1 entry list: which
pairs merge into which two-predicate patterns, the dedup order, and the
satisfiability checks never look at the data — only the support filter
and the influence scores do.  Given the :class:`~repro.patterns.lattice.
LatticeRecord` of the pre-edit search and the alphabet patched for the
edit, the post-edit search output can therefore be *replayed*:

1. **structure** — the pair skeleton is reused from the alphabet cache
   and re-ANDed against the patched level-1 masks; the post-edit support
   filter and parent-collapse short-circuits are recomputed exactly from
   the patched sizes.  Pairs the edit pushed below the support threshold
   simply drop out; pairs it pushed above are scored from scratch (there
   is nothing below depth 2 to cascade).  Only an edit that changes the
   level-1 entry list itself — re-indexing the skeleton — refuses, and
   the caller falls back to a fresh engine search;
2. **scores** — every level-1 entry, every pair that was in the pre-edit
   result, and every pair without a usable pre-edit score (newly passing,
   or freshly un-collapsed from a parent) is re-scored exactly through
   one packed ``bias_change_batch`` against the patched artifacts;
3. **boundaries** — pairs that the pre-edit search evaluated but filtered
   out (responsibility below the parent bar, or negative) can only affect
   the *selected top-k* by crossing their filter boundary AND overtaking
   the k-th selected explanation's interestingness.  Each such pair gets a
   drift margin calibrated from everything re-scored exactly in step 2 —
   binned by support, because influence-score drift grows with the
   fraction of data a pattern removes — and is re-scored exactly when
   ``score + margin`` clears both its filter boundary and the k-th
   interestingness; any actual entrant triggers a re-selection.  Pairs
   that cannot reach the top-k even with the margin are left with their
   (slightly stale) recorded score.

The margin in step 3 is the one empirical element: a filtered-out pair
whose score moved past its boundary by more than twice the largest drift
observed among its several hundred exactly-re-scored, same-support-band
neighbours could in principle be missed.  Everything the *selection* can
see is exact — the screen only decides which pairs provably cannot reach
it; ``recheck="always"`` forces the full search, and the equivalence
suite fuzzes edit sequences against from-scratch audits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mining.alphabet import PredicateAlphabet
from repro.mining.bitset import pack_rows, popcount
from repro.obs import trace
from repro.patterns.lattice import LatticeRecord, PatternStats
from repro.patterns.pattern import Pattern
from repro.patterns.topk import select_top_k

# The lattice's result filter (engine default; not a config knob).
_MIN_RESPONSIBILITY = 0.0
# Boundary screen: a filtered-out pair is re-scored exactly when its
# pre-edit score plus FACTOR·(binned max observed drift) + FLOOR clears
# its filter boundary and the k-th selected interestingness.  Drift grows
# with support (large-support removals extrapolate more steeply), so the
# calibration envelope is per-support-band, monotone non-decreasing.
_SCREEN_FACTOR = 2.0
_SCREEN_FLOOR = 1e-6
_SCREEN_SUPPORT_EDGES = np.array([0.1, 0.2, 0.4, 0.6, 0.8, 1.0])


@dataclass
class DeltaReplay:
    """The replayed search output for one (metric, estimator) query."""

    candidates: list[PatternStats]
    selected: list[PatternStats]
    filter_seconds: float
    num_evaluated: int
    record: LatticeRecord


def _baseline(estimator) -> float:
    return (
        estimator.original_surrogate
        if estimator.evaluation == "smooth"
        else estimator.original_bias
    )


def _batch_scores(estimator, packed: np.ndarray, num_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Responsibilities and bias changes for packed masks (empty-safe)."""
    if packed.shape[0] == 0:
        empty = np.zeros(0)
        return empty, empty
    with trace.span("delta.score", m=int(packed.shape[0])):
        bias = estimator.bias_change_batch(packed, num_rows=num_rows)
        base = _baseline(estimator)
        resp = -bias / base if base != 0.0 else np.zeros_like(bias)
    return resp, bias


@dataclass
class ReplayGeometry:
    """Metric-independent structural state shared by one edit's replays.

    Everything here is a function of the patched alphabet and the search
    parameters (τ) alone — packing, the skeleton AND, the post-edit
    support filter, and the parent-collapse flags.  One ``delta_audit``
    builds it once and reuses it across every (metric, group, estimator)
    query of the grid; only the influence scores differ per query.
    """

    num_entries: int
    num_rows: int
    entries: list
    packed1: np.ndarray
    sizes1: np.ndarray
    skeleton_keys: np.ndarray
    num_skeleton: int
    patterns: list
    pairs: np.ndarray
    sizes2: np.ndarray
    packed2: np.ndarray
    pair_left: np.ndarray
    pair_right: np.ndarray
    known_post: np.ndarray
    supports2: np.ndarray


def replay_geometry(alphabet: PredicateAlphabet, support_threshold: float) -> ReplayGeometry:
    """Build the shared structural state for replays against ``alphabet``."""
    if getattr(alphabet, "packed", False):
        raise ValueError(
            "delta replay consumes boolean level-1 masks and cannot run on a "
            "packed (out-of-core) alphabet"
        )
    entries = alphabet.entries
    n = alphabet.num_rows
    num_entries = len(entries)
    if num_entries:
        masks1 = np.stack([mask for _, mask in entries])
        packed1 = pack_rows(masks1)
        sizes1 = masks1.sum(axis=1)
    else:
        packed1 = np.zeros((0, (n + 7) // 8), dtype=np.uint8)
        sizes1 = np.zeros(0, dtype=np.int64)

    # The full structural pair space, re-ANDed against the patched masks.
    left, right, patterns = alphabet.pair_skeleton()
    num_sk = len(left)
    pair_packed = packed1[left] & packed1[right] if num_sk else np.zeros_like(packed1[:0])
    pair_sizes = np.asarray(popcount(pair_packed)).reshape(-1)

    # Post-edit support filter and parent-collapse short-circuits, exactly
    # as the fresh search would compute them from the patched masks.
    passing = pair_sizes / n > support_threshold if n else np.zeros(num_sk, dtype=bool)
    pairs = np.flatnonzero(passing)  # skeleton order == lattice result order
    sizes2 = pair_sizes[pairs]
    packed2 = pair_packed[pairs]
    pair_left, pair_right = left[pairs], right[pairs]
    known_post = np.where(
        sizes2 == sizes1[pair_left],
        1,
        np.where(sizes2 == sizes1[pair_right], 2, 0),
    ).astype(np.int8)
    return ReplayGeometry(
        num_entries=num_entries,
        num_rows=n,
        entries=entries,
        packed1=packed1,
        sizes1=sizes1,
        skeleton_keys=left * num_entries + right if num_entries else left,
        num_skeleton=num_sk,
        patterns=patterns,
        pairs=pairs,
        sizes2=sizes2,
        packed2=packed2,
        pair_left=pair_left,
        pair_right=pair_right,
        known_post=known_post,
        supports2=sizes2 / n if n else sizes2.astype(np.float64),
    )


def replay_search(
    record: LatticeRecord | None,
    alphabet: PredicateAlphabet,
    estimator,
    config,
    k: int,
    protected_attribute: str | None,
    geometry: ReplayGeometry | None = None,
) -> tuple[DeltaReplay | None, str]:
    """Replay one search against the patched alphabet, or refuse.

    Returns ``(replay, "")`` on success, ``(None, reason)`` when the
    certificate does not cover the edit (the reason strings surface in
    :class:`repro.core.DeltaQuery` diagnostics).  ``geometry`` shares the
    structural work across the queries of one edit; when omitted it is
    built here.
    """
    if record is None:
        return None, "no replay record (engine or search depth unsupported)"
    if config.max_predicates > 2:
        return None, "search depth > 2 is not replayable"
    entries = alphabet.entries
    if len(entries) != record.num_entries:
        return None, "level-1 entry list changed size"
    if geometry is None:
        geometry = replay_geometry(alphabet, config.support_threshold)
    n = geometry.num_rows
    prune = config.prune_by_responsibility
    cap = config.max_responsibility

    num_entries = geometry.num_entries
    packed1, sizes1 = geometry.packed1, geometry.sizes1
    patterns = geometry.patterns
    pairs = geometry.pairs
    num_pairs = len(pairs)
    sizes2, packed2 = geometry.sizes2, geometry.packed2
    pair_left, pair_right = geometry.pair_left, geometry.pair_right
    known_post = geometry.known_post

    # Scatter the pre-edit record onto skeleton positions.  The record's
    # pairs are the pre-edit support survivors in skeleton order, so the
    # lexicographic keys must embed into the skeleton's.
    num_sk = geometry.num_skeleton
    keys = geometry.skeleton_keys
    rec_keys = record.pair_left * num_entries + record.pair_right
    pos = np.searchsorted(keys, rec_keys)
    if np.any(pos >= num_sk) or np.any(keys[pos] != rec_keys):
        return None, "replay record does not match the alphabet's pair skeleton"
    rec_resp = np.full(num_sk, np.nan)
    rec_bias = np.full(num_sk, np.nan)
    rec_known = np.full(num_sk, -1, dtype=np.int8)
    rec_in_result = np.zeros(num_sk, dtype=bool)
    rec_resp[pos] = record.pair_responsibilities
    rec_bias[pos] = record.pair_bias_changes
    rec_known[pos] = record.pair_known
    rec_in_result[pos] = record.pair_in_result

    # Which pairs need their own exact score now?  Parent-collapsed ones
    # copy the re-scored parent bit-exactly (as the fresh search does);
    # of the rest, a pair with a usable pre-edit own score is re-scored
    # only if it was in the result (drift calibration + exact output) —
    # filtered-out ones face the boundary screen below.  Pairs with no
    # usable pre-edit score (newly support-passing, or collapsed onto a
    # parent pre-edit) must be scored exactly.
    unknown = known_post == 0
    has_pre = rec_known[pairs] == 0
    exact_result = unknown & has_pre & rec_in_result[pairs]
    exact_new = unknown & ~has_pre
    score_now = exact_result | exact_new

    batch = np.concatenate([packed1, packed2[score_now]], axis=0)
    resp_batch, bias_batch = _batch_scores(estimator, batch, n)
    resp1, bias1 = resp_batch[:num_entries], bias_batch[:num_entries]

    resp2 = np.full(num_pairs, np.nan)
    bias2 = np.full(num_pairs, np.nan)
    resp2[score_now] = resp_batch[num_entries:]
    bias2[score_now] = bias_batch[num_entries:]
    resp2[known_post == 1] = resp1[pair_left[known_post == 1]]
    bias2[known_post == 1] = bias1[pair_left[known_post == 1]]
    resp2[known_post == 2] = resp1[pair_right[known_post == 2]]
    bias2[known_post == 2] = bias1[pair_right[known_post == 2]]

    # Responsibility bars against the re-scored level-1 parents (the
    # lattice's root-cause window: only parents with 0 < R <= cap veto).
    resp_l, resp_r = resp1[pair_left], resp1[pair_right]
    bars = np.full(num_pairs, -np.inf)
    valid_l = (resp_l > 0.0) & (resp_l <= cap)
    valid_r = (resp_r > 0.0) & (resp_r <= cap)
    bars[valid_l] = resp_l[valid_l]
    bars[valid_r] = np.maximum(bars[valid_r], resp_r[valid_r])

    def build_candidates() -> list[PatternStats]:
        built: list[PatternStats] = []
        for i, (predicate, _) in enumerate(entries):
            if resp1[i] >= _MIN_RESPONSIBILITY:
                built.append(
                    PatternStats(
                        pattern=Pattern([predicate]),
                        support=float(sizes1[i] / n),
                        size=int(sizes1[i]),
                        responsibility=float(resp1[i]),
                        bias_change=float(bias1[i]),
                        _packed_mask=packed1[i],
                        _num_rows=n,
                    )
                )
        for e in np.flatnonzero(in_result):
            built.append(
                PatternStats(
                    pattern=patterns[pairs[e]],
                    support=float(sizes2[e] / n),
                    size=int(sizes2[e]),
                    responsibility=float(resp2[e]),
                    bias_change=float(bias2[e]),
                    _packed_mask=packed2[e],
                    _num_rows=n,
                )
            )
        return built

    protected_only = (
        {protected_attribute}
        if config.exclude_protected_only and protected_attribute
        else None
    )

    # Phase-1 selection over the exactly-scored pool.
    supports2 = geometry.supports2
    scored = ~np.isnan(resp2)
    in_result = scored & (resp2 >= _MIN_RESPONSIBILITY)
    if prune:
        in_result &= resp2 > bars
    candidates = build_candidates()
    selected, filter_seconds = select_top_k(
        candidates,
        k,
        config.containment_threshold,
        exclude_features_only=protected_only,
        max_responsibility=config.max_responsibility,
    )

    # Boundary screen for pairs the pre-edit search evaluated but filtered
    # out.  A support-banded drift envelope, calibrated from everything
    # re-scored exactly above, bounds how far each stale score can have
    # moved; a pair is re-scored exactly only when score+margin clears its
    # filter boundary AND could overtake the k-th selected interestingness
    # — otherwise it provably cannot change the selection and keeps its
    # recorded score.
    cal_drift = np.abs(resp1 - record.level1_responsibilities)
    cal_support = sizes1 / n if n else sizes1.astype(np.float64)
    if np.any(exact_result):
        cal_drift = np.concatenate(
            [cal_drift, np.abs(resp2[exact_result] - rec_resp[pairs][exact_result])]
        )
        cal_support = np.concatenate([cal_support, supports2[exact_result]])
    envelope = np.zeros(len(_SCREEN_SUPPORT_EDGES) + 1)
    if len(cal_drift):
        cal_bin = np.searchsorted(_SCREEN_SUPPORT_EDGES, cal_support)
        np.maximum.at(envelope, cal_bin, cal_drift)
    envelope = np.maximum.accumulate(envelope)
    margin = (
        _SCREEN_FACTOR * envelope[np.searchsorted(_SCREEN_SUPPORT_EDGES, supports2)]
        + _SCREEN_FLOOR
    )
    kth_interest = selected[k - 1].interestingness if len(selected) == k else -np.inf
    resp_pre = rec_resp[pairs]
    screenable = unknown & has_pre & ~rec_in_result[pairs]
    with np.errstate(invalid="ignore"):
        reachable = resp_pre + margin >= _MIN_RESPONSIBILITY
        if prune:
            reachable &= resp_pre + margin > bars
        reachable &= (resp_pre + margin) / supports2 >= kth_interest
        reachable &= resp_pre - margin <= cap
    rescore = screenable & reachable
    if np.any(rescore):
        resp_extra, bias_extra = _batch_scores(estimator, packed2[rescore], n)
        resp2[rescore] = resp_extra
        bias2[rescore] = bias_extra
        scored = ~np.isnan(resp2)
        in_result = scored & (resp2 >= _MIN_RESPONSIBILITY)
        if prune:
            in_result &= resp2 > bars
        if np.any(rescore & in_result):
            # An actual entrant: rebuild the pool and re-select.
            candidates = build_candidates()
            selected, reselect_seconds = select_top_k(
                candidates,
                k,
                config.containment_threshold,
                exclude_features_only=protected_only,
                max_responsibility=config.max_responsibility,
            )
            filter_seconds += reselect_seconds

    # Refresh the record so successive delta audits chain off this one.
    # Screened-out pairs keep their (now slightly stale) pre-edit score;
    # their boundary distance is what justified not re-scoring them.
    new_record = LatticeRecord(
        num_entries=num_entries,
        level1_responsibilities=resp1,
        level1_bias_changes=bias1,
        pair_left=pair_left,
        pair_right=pair_right,
        pair_sizes=sizes2,
        pair_known=known_post,
        pair_responsibilities=np.where(scored, resp2, resp_pre),
        pair_bias_changes=np.where(scored, bias2, rec_bias[pairs]),
        pair_in_result=in_result,
    )
    return (
        DeltaReplay(
            candidates=candidates,
            selected=selected,
            filter_seconds=filter_seconds,
            num_evaluated=int(batch.shape[0] + np.count_nonzero(rescore)),
            record=new_record,
        ),
        "",
    )
