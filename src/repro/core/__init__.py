"""Gopher's public API.

:class:`GopherExplainer` ties the whole pipeline together: encode a fairness
dataset, fit (or accept) a twice-differentiable model, measure its bias,
search the pattern lattice for the training subsets most causally
responsible, and optionally verify the winners by actual retraining.

:class:`AuditSession` is the many-questions form of the same pipeline: it
owns the per-model start-up state (encoder, trained model, influence
artifacts, candidate alphabet) once and answers any number of
(metric, protected group, estimator) queries against it — each explainer
becoming a thin view over the session.
"""

from repro.core.config import GopherConfig
from repro.core.explainer import GopherExplainer
from repro.core.explanation import Explanation, ExplanationSet
from repro.core.session import (
    AuditQuery,
    AuditResult,
    AuditSession,
    DeltaAuditResult,
    DeltaQuery,
)

__all__ = [
    "AuditQuery",
    "AuditResult",
    "AuditSession",
    "DeltaAuditResult",
    "DeltaQuery",
    "Explanation",
    "ExplanationSet",
    "GopherConfig",
    "GopherExplainer",
]
