"""Gopher's public API.

:class:`GopherExplainer` ties the whole pipeline together: encode a fairness
dataset, fit (or accept) a twice-differentiable model, measure its bias,
search the pattern lattice for the training subsets most causally
responsible, and optionally verify the winners by actual retraining.
"""

from repro.core.config import GopherConfig
from repro.core.explainer import GopherExplainer
from repro.core.explanation import Explanation, ExplanationSet

__all__ = ["Explanation", "ExplanationSet", "GopherConfig", "GopherExplainer"]
