"""The end-to-end Gopher pipeline (paper §6.2's setup in one object)."""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import GopherConfig
from repro.core.explanation import Explanation, ExplanationSet
from repro.core.session import AuditSession
from repro.datasets.base import Dataset, ProtectedGroup
from repro.datasets.encoding import TabularEncoder
from repro.fairness.metrics import FairnessContext, get_metric
from repro.fairness.report import FairnessReport, fairness_report
from repro.influence.estimators import InfluenceEstimator
from repro.influence.retrain import RetrainInfluence
from repro.mining.engine import make_engine
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace
from repro.patterns.pattern import Pattern
from repro.patterns.topk import select_top_k


class GopherExplainer:
    """Generate data-based explanations for the bias of a classifier.

    Typical use::

        model = LogisticRegression()
        gopher = GopherExplainer(model, metric="statistical_parity")
        gopher.fit(train_dataset, test_dataset)
        result = gopher.explain(k=3)
        print(result.render())

    ``fit`` encodes the data, trains the model (unless it is already
    fitted — a pre-fitted model whose feature dimension does not match the
    encoding is rejected), measures the original bias on the test split
    and pre-computes the influence machinery; ``explain`` runs the
    candidate search and the diversity filter, optionally verifying each
    winner by retraining.

    An explainer is a *view over an audit session*: one (metric, protected
    group, estimator) question bound to the shared per-model caches of an
    :class:`~repro.core.AuditSession`.  ``fit`` builds a private session,
    so single-question use looks exactly as before; for many questions of
    one model, build the session once and mint views from it::

        session = AuditSession(model).fit(train, test)
        sp = session.explainer(metric="statistical_parity")
        eo = session.explainer(metric="equal_opportunity")
        # both share one Hessian factorization, one predicate alphabet ...
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        config: GopherConfig | None = None,
        **overrides: object,
    ) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.model = model
        self.config = config if config is not None else GopherConfig(**overrides)  # type: ignore[arg-type]
        self.metric = get_metric(self.config.metric)
        self.session: AuditSession | None = None
        self.encoder: TabularEncoder | None = None
        self.train_data: Dataset | None = None
        self.test_data: Dataset | None = None
        self.X_train: np.ndarray | None = None
        self.test_ctx: FairnessContext | None = None
        self.estimator: InfluenceEstimator | None = None
        self.protected_group: ProtectedGroup | None = None
        self._update_ctx = None

    # ------------------------------------------------------------------
    def fit(self, train: Dataset, test: Dataset | None = None) -> "GopherExplainer":
        """Prepare the pipeline on a train/test pair.

        When ``test`` is omitted, ``train`` is split using the config's
        ``test_fraction`` and ``seed``.  Internally this builds a private
        :class:`AuditSession` and binds this explainer to it, so repeated
        ``explain`` calls (and ``explain_updates`` et al.) reuse the
        session's caches.
        """
        session = AuditSession(self.model, self.config).fit(train, test)
        self._bind_session(session, None)
        return self

    def _bind_session(self, session: AuditSession, group: ProtectedGroup | None) -> None:
        """Borrow a session's shared state and build this view's per-query
        half (context, estimator) for one protected group."""
        assert session.train_data is not None
        self.session = session
        self.train_data = session.train_data
        self.test_data = session.test_data
        self.encoder = session.encoder
        self.X_train = session.X_train
        self.protected_group = group if group is not None else session.train_data.protected
        self.test_ctx = session.context_for(group)
        # The view's config is authoritative for its estimator: name and
        # kwargs were both derived (or given) on this config, so pass them
        # through explicitly rather than letting the session re-derive.
        self.estimator = session.estimator_for(
            metric=self.config.metric,
            group=group,
            estimator=self.config.estimator,
            **self.config.estimator_kwargs,
        )
        self._update_ctx = None

    def _require_fitted(self) -> None:
        if self.estimator is None:
            raise RuntimeError("explainer is not fitted; call fit() first")

    # ------------------------------------------------------------------
    @property
    def original_bias(self) -> float:
        """F(θ*, D_test) with the hard metric."""
        self._require_fitted()
        assert self.estimator is not None
        return self.estimator.original_bias

    def report(self) -> FairnessReport:
        """Accuracy + all fairness metrics of the fitted model."""
        self._require_fitted()
        assert self.test_ctx is not None
        return fairness_report(self.model, self.test_ctx)

    # ------------------------------------------------------------------
    def explain(self, k: int = 3, verify: bool = True) -> ExplanationSet:
        """Compute the top-k diverse explanations (Algorithms 1 + 2).

        Candidate generation goes through the configured engine —
        ``engine="lattice"`` for the paper's level-wise search,
        ``engine="mining"`` for the packed-bitset closed-pattern miner;
        both produce the same top-k.  With ``verify=True`` each selected
        explanation's subset is actually removed and the model retrained,
        filling the ground-truth Δbias fields the paper's tables report.
        """
        self._require_fitted()
        assert self.train_data is not None and self.estimator is not None
        assert self.session is not None and self.protected_group is not None
        cfg = self.config

        start = time.perf_counter()
        engine = make_engine(cfg.engine)
        self.session.metrics.inc(f"engine.{cfg.engine}_searches")
        with trace.span("explain.search", engine=cfg.engine) as search_span:
            lattice = engine.generate(
                self.train_data.table,
                self.estimator,
                support_threshold=cfg.support_threshold,
                max_predicates=cfg.max_predicates,
                num_bins=cfg.num_bins,
                exclude_features=cfg.exclude_features or None,
                prune_by_responsibility=cfg.prune_by_responsibility,
                max_responsibility=cfg.max_responsibility,
                batch_size=cfg.search_batch_size,
                alphabet_cache=self.session.alphabet_cache,
            )
            search_span.set(
                candidates=lattice.num_candidates, evaluated=lattice.num_evaluated
            )
        search_seconds = time.perf_counter() - start
        protected_only = (
            {self.protected_group.attribute} if cfg.exclude_protected_only else None
        )
        with trace.span("explain.filter", k=k):
            selected, filter_seconds = select_top_k(
                lattice,
                k,
                cfg.containment_threshold,
                exclude_features_only=protected_only,
                max_responsibility=cfg.max_responsibility,
            )
        explanations = [Explanation.from_stats(i + 1, s) for i, s in enumerate(selected)]
        if verify:
            with trace.span("explain.verify", subsets=len(explanations)):
                self._verify(explanations, [s.mask() for s in selected])
        return ExplanationSet(
            explanations=explanations,
            metric_name=cfg.metric,
            original_bias=self.original_bias,
            search_seconds=search_seconds,
            filter_seconds=filter_seconds,
            lattice=lattice,
        )

    def _verify(self, explanations: list[Explanation], masks: list[np.ndarray]) -> None:
        if not explanations:
            return
        retrainer = self._retrainer()
        # One batch call; retraining has no closed form, so this resolves to
        # one refit per subset internally, but keeps the call site uniform
        # with the estimators that do batch.
        deltas = retrainer.bias_change_batch(masks)
        for explanation, delta in zip(explanations, deltas):
            explanation.gt_bias_change = float(delta)
            explanation.gt_responsibility = (
                -float(delta) / retrainer.original_bias if retrainer.original_bias else 0.0
            )

    def _retrainer(self) -> RetrainInfluence:
        assert self.train_data is not None and self.X_train is not None
        assert self.test_ctx is not None
        return RetrainInfluence(
            self.model, self.X_train, self.train_data.labels, self.metric, self.test_ctx,
            n_jobs=self.config.retrain_jobs,
        )

    # ------------------------------------------------------------------
    def explain_updates(
        self,
        explanations: ExplanationSet,
        verify: bool = True,
        allowed_features: set[str] | None = None,
        learning_rate: float = 0.25,
        num_steps: int = 120,
        batch: bool = True,
    ):
        """Section 5: one update-based explanation per removal explanation.

        For every pattern in ``explanations``, search for the homogeneous
        update of its subset that maximally reduces bias.  All patterns run
        through one vectorized engine pass sharing the explainer's cached
        :class:`repro.updates.UpdateSearchContext` (``batch=False`` keeps
        the per-coordinate reference loop).  Returns a renderable
        :class:`repro.updates.UpdateExplanationSet`, aligned with the input.

        Each update's ``removal_bias_change`` reference comes from the
        explanation's ground-truth retrain when available, else from the
        fitted estimator in one batched query; ``removal_source`` records
        which.
        """
        from repro.updates.projected_gd import find_update_explanations

        self._require_fitted()
        assert self.train_data is not None and self.encoder is not None
        assert self.X_train is not None and self.test_ctx is not None
        patterns, subsets = [], []
        for explanation in explanations:
            patterns.append(explanation.pattern)
            subsets.append(np.flatnonzero(explanation.pattern.mask(self.train_data.table)))
        removal_changes, removal_sources = self._removal_references(explanations, subsets)
        return find_update_explanations(
            self.model,
            self.encoder,
            self.X_train,
            self.train_data.labels,
            self.metric,
            self.test_ctx,
            patterns,
            subsets,
            allowed_features=allowed_features,
            learning_rate=learning_rate,
            num_steps=num_steps,
            verify=verify,
            removal_bias_changes=removal_changes,
            removal_sources=removal_sources,
            batch=batch,
            context=self._update_context(),
            n_jobs=self.config.retrain_jobs,
        )

    def _update_context(self):
        """The §5 start-up state (∇F, Hessian, η, train grads), built once.

        The metric-independent half rides the session's shared
        ``ModelArtifacts`` (one ``update.context`` build per audit however
        many explainer views run ``explain_updates``); only ∇F and the
        original bias are computed per view.
        """
        if self._update_ctx is None:
            from repro.updates.projected_gd import UpdateSearchContext

            assert self.train_data is not None and self.X_train is not None
            assert self.test_ctx is not None
            self._update_ctx = UpdateSearchContext(
                self.model, self.X_train, self.train_data.labels, self.metric,
                self.test_ctx,
                artifacts=None if self.session is None else self.session.artifacts,
            )
        return self._update_ctx

    def _removal_references(
        self, explanations: ExplanationSet, subsets: list[np.ndarray]
    ) -> tuple[list[float | None], list[str | None]]:
        """Reference removal ΔF per explanation: ground truth when verified,
        else the fitted estimator's estimate (one batched query)."""
        assert self.estimator is not None
        missing = [
            i for i, e in enumerate(explanations) if e.gt_bias_change is None
        ]
        estimated: dict[int, float] = {}
        if missing:
            changes = self.estimator.bias_change_batch([subsets[i] for i in missing])
            estimated = dict(zip(missing, changes))
        references: list[float | None] = []
        sources: list[str | None] = []
        for i, explanation in enumerate(explanations):
            if explanation.gt_bias_change is not None:
                references.append(float(explanation.gt_bias_change))
                sources.append("ground_truth")
            else:
                references.append(float(estimated[i]))
                sources.append("estimated")
        return references, sources

    # ------------------------------------------------------------------
    def responsibility_of(self, pattern: Pattern, ground_truth: bool = False) -> float:
        """Responsibility of an arbitrary user-supplied pattern.

        Useful for interactive debugging ("how much does *this* subset I
        suspect actually matter?").  ``ground_truth=True`` retrains.
        """
        return float(self.responsibility_of_many([pattern], ground_truth)[0])

    def responsibility_of_many(
        self, patterns: list[Pattern], ground_truth: bool = False
    ) -> np.ndarray:
        """Responsibilities of many user-supplied patterns in one batch.

        All patterns are resolved to row masks and handed to the
        estimator's batched influence API in a single call — for the
        closed-form estimators the whole query is one GEMM regardless of
        how many patterns are asked about.  Returns an array aligned with
        ``patterns``.
        """
        self._require_fitted()
        assert self.train_data is not None and self.estimator is not None
        masks = []
        for pattern in patterns:
            mask = pattern.mask(self.train_data.table)
            if not mask.any():
                raise ValueError(f"pattern {pattern} matches no training rows")
            masks.append(mask)
        source = self._retrainer() if ground_truth else self.estimator
        return source.responsibility_batch(masks)
