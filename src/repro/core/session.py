"""One start-up, many queries: the artifact-cached audit session.

A real fairness audit asks many questions of *one* trained model — every
registered metric, every protected attribute worth checking, several
estimator variants and k/τ settings.  Each question is one Gopher query,
but almost all of the pipeline's start-up cost is question-independent:

* **per-model** (once per session) — encoding the tables, fitting the
  model, the per-sample gradient matrix, the Hessian with its
  factorization/eigendecomposition and rotated curvature caches
  (:class:`repro.influence.ModelArtifacts`), and the level-1 predicate
  alphabet with its packed tidlists
  (:class:`repro.mining.AlphabetCache`);
* **per-query** (once per metric × group × estimator) — ∇_θF, the original
  bias, the :class:`~repro.fairness.FairnessContext` of the protected
  attribute, and the candidate search itself.

:class:`AuditSession` owns the per-model half and hands out cheap views:
``session.explainer(metric=..., group=...)`` is a fully-functional
:class:`~repro.core.GopherExplainer` bound to one question, and
``session.audit(metrics=..., groups=...)`` fans a whole grid of questions
through the shared caches and returns a structured :class:`AuditResult`.
``session.stats`` exposes the cache counters, so "this audit factorized
the Hessian exactly once" is an assertable property, not a hope — see
``benchmarks/bench_audit_session.py`` for the measured amortization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import GopherConfig
from repro.core.explanation import ExplanationSet
from repro.datasets.base import Dataset, ProtectedGroup
from repro.datasets.encoding import TabularEncoder
from repro.datasets.splits import train_test_split
from repro.fairness.metrics import FairnessContext, get_metric, list_metrics
from repro.fairness.report import FairnessReport, fairness_report
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator, make_estimator
from repro.mining.alphabet import AlphabetCache
from repro.models.base import TwiceDifferentiableClassifier

# "exact" and "series" are first-class names for the two second-order
# variants (see make_estimator); for kwarg-inheritance purposes they are
# the same estimator family.
_SECOND_ORDER_NAMES = frozenset({"second_order", "exact", "series"})


def _same_estimator_family(a: str, b: str) -> bool:
    return a == b or (a in _SECOND_ORDER_NAMES and b in _SECOND_ORDER_NAMES)


@dataclass
class AuditQuery:
    """One (metric, protected group) cell of an audit and its answer."""

    metric: str
    group: ProtectedGroup
    explanations: ExplanationSet
    seconds: float

    @property
    def original_bias(self) -> float:
        return self.explanations.original_bias

    def describe(self) -> str:
        return (
            f"{self.metric} | {self.group.describe()} | "
            f"bias={self.original_bias:+.4f} | "
            f"{len(self.explanations)} explanations in {self.seconds:.2f}s"
        )


@dataclass
class AuditResult:
    """The structured output of :meth:`AuditSession.audit`.

    Queries are ordered group-major (all metrics of the first group, then
    the next group), matching the order they were issued.  ``stats`` is a
    snapshot of the session's cache counters *after* the audit — the
    one-factorization / one-tidlist-build claims live here.
    """

    queries: list[AuditQuery]
    setup_seconds: float
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> AuditQuery:
        return self.queries[index]

    def get(self, metric: str, attribute: str | None = None) -> AuditQuery:
        """The query for a metric (and protected attribute, if ambiguous)."""
        matches = [
            q
            for q in self.queries
            if q.metric == metric
            and (attribute is None or q.group.attribute == attribute)
        ]
        if not matches:
            raise KeyError(f"no audit query for metric={metric!r}, attribute={attribute!r}")
        if len(matches) > 1:
            attributes = sorted({q.group.attribute for q in matches})
            if attribute is None and len(attributes) > 1:
                raise KeyError(
                    f"metric {metric!r} was audited for several protected attributes "
                    f"{attributes}; pass attribute= to disambiguate"
                )
            raise KeyError(
                f"metric {metric!r} was audited for several groups over attribute "
                f"{attributes[0]!r} (e.g. different thresholds); index "
                "result.queries (or iterate the result) to pick one"
            )
        return matches[0]

    def to_records(self) -> list[dict]:
        """JSON-serializable records, one per explanation across all queries."""
        records = []
        for query in self.queries:
            for record in query.explanations.to_records():
                record["protected_attribute"] = query.group.attribute
                record["protected_group"] = query.group.describe()
                records.append(record)
        return records

    def render(self) -> str:
        """All queries' explanation tables under one audit header."""
        total = sum(q.seconds for q in self.queries)
        lines = [
            f"Audit: {len(self.queries)} queries "
            f"(setup {self.setup_seconds:.2f}s once, queries {total:.2f}s total)"
        ]
        for query in self.queries:
            lines.append("")
            lines.append(f"=== {query.metric} | {query.group.describe()} ===")
            lines.append(query.explanations.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class AuditSession:
    """The per-model half of the Gopher pipeline, shared across queries.

    Typical use::

        session = AuditSession(LogisticRegression(), estimator="series")
        session.fit(train, test)
        print(session.report())                    # all metrics, default group
        result = session.audit(
            metrics=["statistical_parity", "equal_opportunity"],
            groups=[train.protected, ProtectedGroup("gender", privileged_category="Male")],
            k=3,
        )
        print(result.render())

    ``fit`` encodes both splits once, trains the model if needed (and
    rejects a pre-fitted model whose feature dimension does not match the
    encoding), then builds the shared influence artifacts and the
    per-dataset candidate alphabet cache.  Every query object the session
    hands out — estimators via :meth:`estimator_for`, explainers via
    :meth:`explainer`, whole grids via :meth:`audit` — reuses those
    caches; the session-vs-fresh equivalence suite pins that the answers
    are identical to building each query's pipeline from scratch.

    The config carries the *defaults* a query inherits (engine, estimator,
    search parameters, and the default metric); per-query arguments
    override them without touching the shared state.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        config: GopherConfig | None = None,
        **overrides: object,
    ) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.model = model
        self.config = config if config is not None else GopherConfig(**overrides)  # type: ignore[arg-type]
        self.train_data: Dataset | None = None
        self.test_data: Dataset | None = None
        self.encoder: TabularEncoder | None = None
        self.X_train: np.ndarray | None = None
        self.X_test: np.ndarray | None = None
        self.artifacts: ModelArtifacts | None = None
        self.alphabet_cache: AlphabetCache | None = None
        self.setup_seconds: float = 0.0
        self._contexts: dict[ProtectedGroup, FairnessContext] = {}

    # ------------------------------------------------------------------
    def fit(self, train: Dataset, test: Dataset | None = None) -> "AuditSession":
        """Run the per-model start-up once: encode, train, build caches.

        When ``test`` is omitted, ``train`` is split using the config's
        ``test_fraction`` and ``seed``.  A pre-fitted model is accepted
        (and not refitted) only if its input dimension matches the fresh
        encoding — a stale model from an earlier encoding would otherwise
        poison every query of the session.
        """
        start = time.perf_counter()
        if test is None:
            train, test = train_test_split(train, self.config.test_fraction, self.config.seed)
        self.train_data, self.test_data = train, test
        self.encoder = TabularEncoder().fit(train.table)
        self.X_train = self.encoder.transform(train.table)
        self.X_test = self.encoder.transform(test.table)
        if self.model.theta is None:
            self.model.fit(self.X_train, train.labels)
        else:
            expected = self.model.num_features
            if expected is not None and expected != self.X_train.shape[1]:
                raise ValueError(
                    f"pre-fitted model was trained on {expected} features but this "
                    f"dataset encodes to {self.X_train.shape[1]}; the model belongs "
                    "to a different encoding — refit it (or pass an unfitted model) "
                    "before starting a session"
                )
        self.artifacts = ModelArtifacts(self.model, self.X_train, train.labels)
        self.alphabet_cache = AlphabetCache(train.table)
        self._contexts = {}
        self.setup_seconds = time.perf_counter() - start
        return self

    def _require_fitted(self) -> None:
        if self.artifacts is None:
            raise RuntimeError("session is not fitted; call fit() first")

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Merged cache counters: influence artifacts + candidate alphabet.

        Keys: ``per_sample_grad_builds``, ``hessian_builds``,
        ``hessian_factorizations``, ``exact_rotation_builds``,
        ``alphabet_builds``, ``tidlist_builds``.  A well-amortized audit
        shows 1 (or 0, for caches its estimator never touches) everywhere.
        """
        self._require_fitted()
        assert self.artifacts is not None and self.alphabet_cache is not None
        return {**self.artifacts.stats, **self.alphabet_cache.stats}

    def context_for(self, group: ProtectedGroup | None = None) -> FairnessContext:
        """The cached test-side context of a protected group.

        All contexts share the session's one test encoding; only the
        privileged mask differs per group.  ``None`` means the *test*
        dataset's declared protected group — the declaration the
        privileged mask has always been derived from, so a caller who set
        the group on the test split alone keeps getting it.
        """
        self._require_fitted()
        assert self.train_data is not None and self.test_data is not None
        assert self.X_test is not None
        resolved = group if group is not None else self.test_data.protected
        if resolved not in self._contexts:
            self._contexts[resolved] = self.test_data.fairness_context(
                self.X_test, resolved
            )
        return self._contexts[resolved]

    def estimator_for(
        self,
        metric: str | None = None,
        group: ProtectedGroup | None = None,
        estimator: str | None = None,
        **estimator_kwargs: object,
    ) -> InfluenceEstimator:
        """A per-query estimator riding the session's shared artifacts.

        ``metric`` / ``estimator`` default to the config's; extra keyword
        arguments override the config's ``estimator_kwargs``.  Each call
        builds a fresh estimator object (the per-query state: ∇F, original
        bias, context) — the heavy caches inside are shared.
        """
        self._require_fitted()
        assert self.train_data is not None and self.X_train is not None
        name = estimator if estimator is not None else self.config.estimator
        kwargs = {**self._estimator_kwargs_for(name), **estimator_kwargs}
        return make_estimator(
            name,
            self.model,
            self.X_train,
            self.train_data.labels,
            get_metric(metric if metric is not None else self.config.metric),
            self.context_for(group),
            artifacts=self.artifacts,
            **kwargs,
        )

    def _estimator_kwargs_for(self, name: str) -> dict:
        """The config kwargs a query with estimator ``name`` inherits.

        The config's estimator_kwargs belong to the config's estimator
        *family*: handing them to an overridden family would feed e.g.
        second_order's ``variant=`` into ``FirstOrderInfluence`` and
        crash, so cross-family overrides start from an empty dict.  The
        ``exact``/``series`` aliases count as the second-order family —
        dropping a shared ``damping`` there would silently change scores
        *and* add a second Hessian factorization — but an alias fixes its
        own ``variant``, so that one key is removed rather than conflict
        with ``make_estimator``'s alias check.  One rule, used both for a
        view's config (:meth:`explainer`) and for direct
        :meth:`estimator_for` calls.
        """
        if not _same_estimator_family(name, self.config.estimator):
            return {}
        kwargs = dict(self.config.estimator_kwargs)
        if name in ("exact", "series"):
            kwargs.pop("variant", None)
        return kwargs

    def report(self, group: ProtectedGroup | None = None) -> FairnessReport:
        """Accuracy + every registered fairness metric for one group."""
        return fairness_report(self.model, self.context_for(group))

    # ------------------------------------------------------------------
    def explainer(
        self,
        metric: str | None = None,
        group: ProtectedGroup | None = None,
        estimator: str | None = None,
    ):
        """A :class:`GopherExplainer` view bound to one (metric, group).

        The view is a complete explainer — ``explain``, ``explain_updates``,
        ``responsibility_of`` all work — but its start-up state is borrowed
        from this session, so constructing one costs a ∇F and an original
        bias, not a Hessian factorization.
        """
        from repro.core.explainer import GopherExplainer

        self._require_fitted()
        # replace() is a shallow copy: the mutable config fields must be
        # copied too, or tweaking one view's exclude_features would
        # silently change the candidate space of every other query.  The
        # view's estimator_kwargs are derived by the same rule the
        # estimator build uses, so the config a view carries always
        # describes the estimator it actually runs.
        name = estimator if estimator is not None else self.config.estimator
        config = replace(
            self.config,
            metric=metric if metric is not None else self.config.metric,
            estimator=name,
            estimator_kwargs=self._estimator_kwargs_for(name),
            exclude_features=set(self.config.exclude_features),
        )
        view = GopherExplainer(self.model, config)
        view._bind_session(self, group)
        return view

    def audit(
        self,
        metrics: list[str] | None = None,
        groups: list[ProtectedGroup] | None = None,
        k: int = 3,
        verify: bool = False,
        estimator: str | None = None,
    ) -> AuditResult:
        """Fan a grid of (metric × group) queries through the session.

        ``metrics`` defaults to every registered metric; ``groups`` to the
        dataset's declared protected group.  Each query runs the configured
        candidate engine through the session's shared caches and the
        batched estimators; ``verify=True`` additionally retrains for each
        selected explanation (ground truth is per-query work — nothing to
        amortize).  Returns an :class:`AuditResult` ordered group-major.
        """
        self._require_fitted()
        metric_names = list(metrics) if metrics is not None else list_metrics()
        group_list = list(groups) if groups is not None else [self.test_data.protected]  # type: ignore[union-attr]
        queries: list[AuditQuery] = []
        for group in group_list:
            for metric in metric_names:
                start = time.perf_counter()
                view = self.explainer(metric=metric, group=group, estimator=estimator)
                explanations = view.explain(k=k, verify=verify)
                queries.append(
                    AuditQuery(
                        metric=metric,
                        group=group,
                        explanations=explanations,
                        seconds=time.perf_counter() - start,
                    )
                )
        return AuditResult(
            queries=queries, setup_seconds=self.setup_seconds, stats=dict(self.stats)
        )
