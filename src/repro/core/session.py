"""One start-up, many queries: the artifact-cached audit session.

A real fairness audit asks many questions of *one* trained model — every
registered metric, every protected attribute worth checking, several
estimator variants and k/τ settings.  Each question is one Gopher query,
but almost all of the pipeline's start-up cost is question-independent:

* **per-model** (once per session) — encoding the tables, fitting the
  model, the per-sample gradient matrix, the Hessian with its
  factorization/eigendecomposition and rotated curvature caches
  (:class:`repro.influence.ModelArtifacts`), and the level-1 predicate
  alphabet with its packed tidlists
  (:class:`repro.mining.AlphabetCache`);
* **per-query** (once per metric × group × estimator) — ∇_θF, the original
  bias, the :class:`~repro.fairness.FairnessContext` of the protected
  attribute, and the candidate search itself.

:class:`AuditSession` owns the per-model half and hands out cheap views:
``session.explainer(metric=..., group=...)`` is a fully-functional
:class:`~repro.core.GopherExplainer` bound to one question, and
``session.audit(metrics=..., groups=...)`` fans a whole grid of questions
through the shared caches and returns a structured :class:`AuditResult`.
``session.stats`` exposes the cache counters, so "this audit factorized
the Hessian exactly once" is an assertable property, not a hope — see
``benchmarks/bench_audit_session.py`` for the measured amortization.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import GopherConfig
from repro.core.delta import replay_geometry, replay_search
from repro.core.explanation import Explanation, ExplanationSet
from repro.datasets.base import Dataset, ProtectedGroup
from repro.datasets.edits import DataEdit
from repro.datasets.encoding import TabularEncoder
from repro.datasets.splits import train_test_split
from repro.fairness.metrics import FairnessContext, get_metric, list_metrics
from repro.fairness.report import FairnessReport, fairness_report
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator, make_estimator
from repro.mining.alphabet import AlphabetCache
from repro.mining.engine import CandidateResult
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace
from repro.obs.cost import CostReport
from repro.obs.metrics import MetricsRegistry

# "exact" and "series" are first-class names for the two second-order
# variants (see make_estimator); for kwarg-inheritance purposes they are
# the same estimator family.
_SECOND_ORDER_NAMES = frozenset({"second_order", "exact", "series"})


def _same_estimator_family(a: str, b: str) -> bool:
    return a == b or (a in _SECOND_ORDER_NAMES and b in _SECOND_ORDER_NAMES)


@dataclass
class AuditQuery:
    """One (metric, protected group) cell of an audit and its answer."""

    metric: str
    group: ProtectedGroup
    explanations: ExplanationSet
    seconds: float
    #: Per-query cost attribution derived from the query's span subtree
    #: (None when tracing was disabled during the audit).
    cost: CostReport | None = None

    @property
    def original_bias(self) -> float:
        return self.explanations.original_bias

    def describe(self) -> str:
        return (
            f"{self.metric} | {self.group.describe()} | "
            f"bias={self.original_bias:+.4f} | "
            f"{len(self.explanations)} explanations in {self.seconds:.2f}s"
        )


@dataclass
class AuditResult:
    """The structured output of :meth:`AuditSession.audit`.

    Queries are ordered group-major (all metrics of the first group, then
    the next group), matching the order they were issued.  ``stats`` is a
    snapshot of the session's cache counters *after* the audit — the
    one-factorization / one-tidlist-build claims live here.
    """

    queries: list[AuditQuery]
    setup_seconds: float
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> AuditQuery:
        return self.queries[index]

    def get(self, metric: str, attribute: str | None = None) -> AuditQuery:
        """The query for a metric (and protected attribute, if ambiguous)."""
        matches = [
            q
            for q in self.queries
            if q.metric == metric
            and (attribute is None or q.group.attribute == attribute)
        ]
        if not matches:
            raise KeyError(f"no audit query for metric={metric!r}, attribute={attribute!r}")
        if len(matches) > 1:
            attributes = sorted({q.group.attribute for q in matches})
            if attribute is None and len(attributes) > 1:
                raise KeyError(
                    f"metric {metric!r} was audited for several protected attributes "
                    f"{attributes}; pass attribute= to disambiguate"
                )
            raise KeyError(
                f"metric {metric!r} was audited for several groups over attribute "
                f"{attributes[0]!r} (e.g. different thresholds); index "
                "result.queries (or iterate the result) to pick one"
            )
        return matches[0]

    def to_records(self) -> list[dict]:
        """JSON-serializable records, one per explanation across all queries."""
        records = []
        for query in self.queries:
            for record in query.explanations.to_records():
                record["protected_attribute"] = query.group.attribute
                record["protected_group"] = query.group.describe()
                records.append(record)
        return records

    def render(self) -> str:
        """All queries' explanation tables under one audit header."""
        total = sum(q.seconds for q in self.queries)
        lines = [
            f"Audit: {len(self.queries)} queries "
            f"(setup {self.setup_seconds:.2f}s once, queries {total:.2f}s total)"
        ]
        for query in self.queries:
            lines.append("")
            lines.append(f"=== {query.metric} | {query.group.describe()} ===")
            lines.append(query.explanations.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class DeltaQuery:
    """One (metric, group) cell of a :meth:`AuditSession.delta_audit`.

    ``before`` / ``after`` are the explanation sets straddling the edit.
    ``certified`` records that the incremental certificate held — the
    ``after`` ranking was produced by replaying the previous search
    against the patched artifacts (see :mod:`repro.core.delta`);
    ``recheck_ran`` records that a fresh engine search ran instead (on
    certificate refusal, and for every query under ``recheck="always"``),
    with ``reason`` carrying the refusal diagnostic.
    """

    metric: str
    group: ProtectedGroup
    before: ExplanationSet
    after: ExplanationSet
    certified: bool
    recheck_ran: bool
    seconds: float
    reason: str = ""
    #: Per-query cost attribution derived from the query's span subtree
    #: (None when tracing was disabled during the delta audit).
    cost: CostReport | None = None

    def delta_records(self) -> list[dict]:
        """Rank-by-rank diff of the two explanation sets.

        One record per rank present on either side: the pattern, its
        before/after responsibility and interestingness, and a ``status``
        of ``"kept"`` (same pattern at the same rank), ``"moved"`` (pattern
        present on both sides at different ranks), ``"entered"`` or
        ``"dropped"``.
        """
        before_by_pattern = {e.pattern: e for e in self.before.explanations}
        after_by_pattern = {e.pattern: e for e in self.after.explanations}
        records = []
        for rank in range(max(len(self.before), len(self.after))):
            row: dict = {"rank": rank + 1}
            old = self.before.explanations[rank] if rank < len(self.before) else None
            new = self.after.explanations[rank] if rank < len(self.after) else None
            if new is not None:
                counterpart = before_by_pattern.get(new.pattern)
                row["pattern"] = str(new.pattern)
                row["responsibility"] = new.est_responsibility
                row["interestingness"] = new.interestingness
                if counterpart is not None:
                    row["status"] = "kept" if counterpart.rank == new.rank else "moved"
                    row["responsibility_before"] = counterpart.est_responsibility
                    row["d_responsibility"] = (
                        new.est_responsibility - counterpart.est_responsibility
                    )
                    row["d_interestingness"] = (
                        new.interestingness - counterpart.interestingness
                    )
                else:
                    row["status"] = "entered"
            if old is not None and old.pattern not in after_by_pattern:
                if new is None:
                    row["pattern"] = str(old.pattern)
                    row["status"] = "dropped"
                    row["responsibility_before"] = old.est_responsibility
                else:
                    row["displaced_pattern"] = str(old.pattern)
            records.append(row)
        return records

    def describe(self) -> str:
        mode = "certified replay" if self.certified else "fresh search"
        if not self.certified and self.reason:
            mode += f" ({self.reason})"
        return (
            f"{self.metric} | {self.group.describe()} | {mode} | "
            f"{len(self.after)} explanations in {self.seconds:.2f}s"
        )


@dataclass
class DeltaAuditResult:
    """The before/after answer of :meth:`AuditSession.delta_audit`.

    ``after`` is a full :class:`AuditResult` over the edited data (it
    becomes the session's ``last_audit``, so delta audits chain); ``stats``
    snapshots the cache counters after the delta pass — on a fully
    certified pass every build counter is unchanged and only the
    ``*_patches`` / ``solver_updates`` counters moved.
    """

    edit: DataEdit
    queries: list[DeltaQuery]
    before: AuditResult
    after: AuditResult
    seconds: float
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> DeltaQuery:
        return self.queries[index]

    @property
    def num_certified(self) -> int:
        return sum(1 for q in self.queries if q.certified)

    @property
    def num_researched(self) -> int:
        return sum(1 for q in self.queries if q.recheck_ran)

    def render(self) -> str:
        lines = [
            f"Delta audit after {self.edit.describe()}: {len(self.queries)} queries, "
            f"{self.num_certified} certified / {self.num_researched} re-searched "
            f"({self.seconds:.2f}s)"
        ]
        for query in self.queries:
            lines.append("")
            lines.append(f"=== {query.describe()} ===")
            for row in query.delta_records():
                status = row.get("status", "?")
                if status == "dropped":
                    lines.append(
                        f"  #{row['rank']} dropped: {row['pattern']} "
                        f"(was R={row['responsibility_before']:+.2%})"
                    )
                    continue
                change = ""
                if "d_responsibility" in row:
                    change = f"  ΔR={row['d_responsibility']:+.2%}"
                lines.append(
                    f"  #{row['rank']} {status}: {row['pattern']} "
                    f"R={row['responsibility']:+.2%}{change}"
                )
            if not query.delta_records():
                lines.append("  (no explanations on either side)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class AuditSession:
    """The per-model half of the Gopher pipeline, shared across queries.

    Typical use::

        session = AuditSession(LogisticRegression(), estimator="series")
        session.fit(train, test)
        print(session.report())                    # all metrics, default group
        result = session.audit(
            metrics=["statistical_parity", "equal_opportunity"],
            groups=[train.protected, ProtectedGroup("gender", privileged_category="Male")],
            k=3,
        )
        print(result.render())

    ``fit`` encodes both splits once, trains the model if needed (and
    rejects a pre-fitted model whose feature dimension does not match the
    encoding), then builds the shared influence artifacts and the
    per-dataset candidate alphabet cache.  Every query object the session
    hands out — estimators via :meth:`estimator_for`, explainers via
    :meth:`explainer`, whole grids via :meth:`audit` — reuses those
    caches; the session-vs-fresh equivalence suite pins that the answers
    are identical to building each query's pipeline from scratch.

    The config carries the *defaults* a query inherits (engine, estimator,
    search parameters, and the default metric); per-query arguments
    override them without touching the shared state.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        config: GopherConfig | None = None,
        **overrides: object,
    ) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.model = model
        self.config = config if config is not None else GopherConfig(**overrides)  # type: ignore[arg-type]
        self.train_data: Dataset | None = None
        self.test_data: Dataset | None = None
        self.encoder: TabularEncoder | None = None
        self.X_train: np.ndarray | None = None
        self.X_test: np.ndarray | None = None
        self.artifacts: ModelArtifacts | None = None
        self.alphabet_cache: AlphabetCache | None = None
        self.setup_seconds: float = 0.0
        self._contexts: dict[ProtectedGroup, FairnessContext] = {}
        self.last_audit: AuditResult | None = None
        self._last_audit_key: tuple | None = None
        # One registry per session: the shared caches register their
        # namespaced counters into it, queries observe timings, and
        # ``session.stats`` is a read view over it.
        self.metrics = MetricsRegistry()
        self.metrics.register_histogram("audit.query_seconds")
        # Guards the context memo and the last-audit bookmark so the read
        # path stays race-free under concurrent serving.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def fit(
        self,
        train: Dataset,
        test: Dataset | None = None,
        encoder: TabularEncoder | None = None,
    ) -> "AuditSession":
        """Run the per-model start-up once: encode, train, build caches.

        When ``test`` is omitted, ``train`` is split using the config's
        ``test_fraction`` and ``seed``.  A pre-fitted model is accepted
        (and not refitted) only if its input dimension matches the fresh
        encoding — a stale model from an earlier encoding would otherwise
        poison every query of the session.

        ``encoder`` lets the caller supply an already-fitted
        :class:`TabularEncoder` instead of fitting one on ``train`` —
        required when the model was fitted under another session's encoding
        (the delta-vs-fresh equivalence harness rebuilds a session on
        edited data this way, reusing the original encoder so the encoded
        matrices agree bit for bit).
        """
        start = time.perf_counter()
        if test is None:
            train, test = train_test_split(train, self.config.test_fraction, self.config.seed)
        self.train_data, self.test_data = train, test
        self.encoder = encoder if encoder is not None else TabularEncoder().fit(train.table)
        self.X_train = self.encoder.transform(train.table)
        self.X_test = self.encoder.transform(test.table)
        if self.model.theta is None:
            self.model.fit(self.X_train, train.labels)
        else:
            expected = self.model.num_features
            if expected is not None and expected != self.X_train.shape[1]:
                raise ValueError(
                    f"pre-fitted model was trained on {expected} features but this "
                    f"dataset encodes to {self.X_train.shape[1]}; the model belongs "
                    "to a different encoding — refit it (or pass an unfitted model) "
                    "before starting a session"
                )
        # A refit is a fresh start-up: counters restart from zero so the
        # exactly-once amortization assertions stay meaningful.
        self.metrics = MetricsRegistry()
        self.metrics.register_histogram("audit.query_seconds")
        self.artifacts = ModelArtifacts(
            self.model, self.X_train, train.labels, metrics=self.metrics
        )
        # Sessions answer many queries over metric-independent candidate
        # masks, so cross-metric extent caching (g_S gradient sums and
        # per-estimator-spec Δθ rows) pays; bare estimators keep it off.
        self.artifacts.enable_extent_caching()
        self.alphabet_cache = AlphabetCache(train.table, metrics=self.metrics)
        self._contexts = {}
        self.last_audit = None
        self._last_audit_key = None
        self.setup_seconds = time.perf_counter() - start
        return self

    def warm(
        self,
        groups: list[ProtectedGroup] | None = None,
        estimator: str | None = None,
        skeleton: bool = False,
    ) -> "AuditSession":
        """Eagerly build every shared cache the audit read path touches.

        ``fit`` builds the artifacts and alphabet *containers*; the heavy
        entries inside (per-sample gradients, the Hessian factorization,
        the exact-variant eigenbasis rotations, the packed tidlists, the
        per-group fairness contexts) are built lazily by the first query.
        ``warm()`` runs those builds up front, so after it returns, queries
        against the configured (estimator, engine, group) defaults are pure
        reads of shared state — the property the frozen-session sanitizer
        and concurrent serving rely on.  ``groups`` defaults to the test
        dataset's declared protected group; ``estimator`` to the config's;
        ``skeleton=True`` additionally builds the level-2 merge skeleton
        the incremental delta path replays.  Idempotent — every build it
        triggers is counted once by that build's own stats entry.
        """
        self._require_fitted()
        assert self.artifacts is not None and self.alphabet_cache is not None
        assert self.test_data is not None
        for group in groups if groups is not None else [self.test_data.protected]:
            self.context_for(group)
        name = estimator if estimator is not None else self.config.estimator
        kwargs = self._estimator_kwargs_for(name)
        family = "second_order" if name in ("exact", "series") else name
        variant = name if name in ("exact", "series") else kwargs.get("variant", "exact")
        self.artifacts.warm(
            damping=float(kwargs.get("damping", 0.0)),  # type: ignore[arg-type]
            exact=family == "second_order" and variant == "exact",
            learning_rate=family == "one_step_gd"
            and kwargs.get("learning_rate", "auto") == "auto",
        )
        cfg = self.config
        alphabet = self.alphabet_cache.get(
            cfg.support_threshold, cfg.num_bins, cfg.exclude_features or None
        )
        alphabet.warm(miner=True, skeleton=skeleton)
        return self

    def _require_fitted(self) -> None:
        if self.artifacts is None:
            raise RuntimeError("session is not fitted; call fit() first")

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Merged cache counters: influence artifacts + candidate alphabet.

        Counters are namespaced by their layer — ``influence.*``
        (``influence.hessian_factorizations``, ``influence.solver_updates``,
        …) and ``mining.*`` (``mining.alphabet_builds``,
        ``mining.tidlist_patches``, …) — so the two layers can never
        silently shadow each other in the merge.  The historical flat names
        (``hessian_factorizations``, ``alphabet_builds``, …) are kept as
        deprecated read aliases of the same values.  A well-amortized audit
        shows 1 (or 0, for caches its estimator never touches) on every
        build counter; after :meth:`delta_audit` the build counters are
        *still* 1 and the edit work shows up under the ``*_patches`` /
        ``solver_updates`` counters instead.
        """
        self._require_fitted()
        assert self.artifacts is not None and self.alphabet_cache is not None
        # The shared caches register namespaced counters straight into the
        # session registry, so the snapshot already carries the
        # ``influence.*`` / ``mining.*`` (and ``engine.*``) names.
        merged: dict[str, int] = dict(self.metrics.snapshot()["counters"])
        # Deprecated flat aliases (pre-namespacing callers key on these).
        # Every namespaced counter gets one; the cache views win on the
        # historical influence.* / mining.* names.
        for key, value in list(merged.items()):
            _, _, bare = key.partition(".")
            if bare:
                merged.setdefault(bare, value)
        merged.update(self.artifacts.stats)
        merged.update(self.alphabet_cache.stats)
        return merged

    def context_for(self, group: ProtectedGroup | None = None) -> FairnessContext:
        """The cached test-side context of a protected group.

        All contexts share the session's one test encoding; only the
        privileged mask differs per group.  ``None`` means the *test*
        dataset's declared protected group — the declaration the
        privileged mask has always been derived from, so a caller who set
        the group on the test split alone keeps getting it.
        """
        self._require_fitted()
        assert self.train_data is not None and self.test_data is not None
        assert self.X_test is not None
        resolved = group if group is not None else self.test_data.protected
        if resolved not in self._contexts:
            mask = resolved.privileged_mask(self.test_data.table)
            if not mask.any() or mask.all():
                side = "no rows" if not mask.any() else "every row"
                raise ValueError(
                    f"protected group '{resolved.describe()}' matches {side} of the "
                    f"session's test split ({self.test_data.num_rows} rows); both "
                    "sides of the comparison must be non-empty — check the "
                    "privileged category/threshold against this split"
                )
            with trace.span("audit.context", group=resolved.describe()):
                context = self.test_data.fairness_context(self.X_test, resolved)
            # First build wins under the lock; a racing builder computed the
            # same idempotent value and discards it.
            with self._lock:
                self._contexts.setdefault(resolved, context)
        return self._contexts[resolved]

    def estimator_for(
        self,
        metric: str | None = None,
        group: ProtectedGroup | None = None,
        estimator: str | None = None,
        **estimator_kwargs: object,
    ) -> InfluenceEstimator:
        """A per-query estimator riding the session's shared artifacts.

        ``metric`` / ``estimator`` default to the config's; extra keyword
        arguments override the config's ``estimator_kwargs``.  Each call
        builds a fresh estimator object (the per-query state: ∇F, original
        bias, context) — the heavy caches inside are shared.
        """
        self._require_fitted()
        assert self.train_data is not None and self.X_train is not None
        name = estimator if estimator is not None else self.config.estimator
        kwargs = {**self._estimator_kwargs_for(name), **estimator_kwargs}
        return make_estimator(
            name,
            self.model,
            self.X_train,
            self.train_data.labels,
            get_metric(metric if metric is not None else self.config.metric),
            self.context_for(group),
            artifacts=self.artifacts,
            **kwargs,
        )

    def _estimator_kwargs_for(self, name: str) -> dict:
        """The config kwargs a query with estimator ``name`` inherits.

        The config's estimator_kwargs belong to the config's estimator
        *family*: handing them to an overridden family would feed e.g.
        second_order's ``variant=`` into ``FirstOrderInfluence`` and
        crash, so cross-family overrides start from an empty dict.  The
        ``exact``/``series`` aliases count as the second-order family —
        dropping a shared ``damping`` there would silently change scores
        *and* add a second Hessian factorization — but an alias fixes its
        own ``variant``, so that one key is removed rather than conflict
        with ``make_estimator``'s alias check.  One rule, used both for a
        view's config (:meth:`explainer`) and for direct
        :meth:`estimator_for` calls.
        """
        if not _same_estimator_family(name, self.config.estimator):
            return {}
        kwargs = dict(self.config.estimator_kwargs)
        if name in ("exact", "series"):
            kwargs.pop("variant", None)
        return kwargs

    def report(self, group: ProtectedGroup | None = None) -> FairnessReport:
        """Accuracy + every registered fairness metric for one group."""
        return fairness_report(self.model, self.context_for(group))

    # ------------------------------------------------------------------
    def explainer(
        self,
        metric: str | None = None,
        group: ProtectedGroup | None = None,
        estimator: str | None = None,
    ):
        """A :class:`GopherExplainer` view bound to one (metric, group).

        The view is a complete explainer — ``explain``, ``explain_updates``,
        ``responsibility_of`` all work — but its start-up state is borrowed
        from this session, so constructing one costs a ∇F and an original
        bias, not a Hessian factorization.
        """
        from repro.core.explainer import GopherExplainer

        self._require_fitted()
        # replace() is a shallow copy: the mutable config fields must be
        # copied too, or tweaking one view's exclude_features would
        # silently change the candidate space of every other query.  The
        # view's estimator_kwargs are derived by the same rule the
        # estimator build uses, so the config a view carries always
        # describes the estimator it actually runs.
        name = estimator if estimator is not None else self.config.estimator
        config = replace(
            self.config,
            metric=metric if metric is not None else self.config.metric,
            estimator=name,
            estimator_kwargs=self._estimator_kwargs_for(name),
            exclude_features=set(self.config.exclude_features),
        )
        view = GopherExplainer(self.model, config)
        view._bind_session(self, group)
        return view

    def audit(
        self,
        metrics: list[str] | None = None,
        groups: list[ProtectedGroup] | None = None,
        k: int = 3,
        verify: bool = False,
        estimator: str | None = None,
    ) -> AuditResult:
        """Fan a grid of (metric × group) queries through the session.

        ``metrics`` defaults to every registered metric; ``groups`` to the
        dataset's declared protected group.  Each query runs the configured
        candidate engine through the session's shared caches and the
        batched estimators; ``verify=True`` additionally retrains for each
        selected explanation (ground truth is per-query work — nothing to
        amortize).  Returns an :class:`AuditResult` ordered group-major.
        """
        self._require_fitted()
        metric_names = list(metrics) if metrics is not None else list_metrics()
        group_list = list(groups) if groups is not None else [self.test_data.protected]  # type: ignore[union-attr]
        queries: list[AuditQuery] = []
        with trace.span(
            "audit.grid", metrics=len(metric_names), groups=len(group_list)
        ):
            for group in group_list:
                for metric in metric_names:
                    start = time.perf_counter()
                    with trace.span(
                        "audit.query", metric=metric, group=group.describe()
                    ) as query_span:
                        view = self.explainer(
                            metric=metric, group=group, estimator=estimator
                        )
                        explanations = view.explain(k=k, verify=verify)
                    seconds = time.perf_counter() - start
                    self.metrics.observe("audit.query_seconds", seconds)
                    cost = (
                        CostReport.from_span(query_span)
                        if trace.get_tracer().enabled
                        else None
                    )
                    queries.append(
                        AuditQuery(
                            metric=metric,
                            group=group,
                            explanations=explanations,
                            seconds=seconds,
                            cost=cost,
                        )
                    )
        result = AuditResult(
            queries=queries, setup_seconds=self.setup_seconds, stats=dict(self.stats)
        )
        # delta_audit diffs against the latest audit of the same grid; both
        # halves of the bookmark move together under the session lock.
        with self._lock:
            self.last_audit = result
            self._last_audit_key = self._audit_key(
                metric_names, group_list, k, verify, estimator
            )
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _audit_key(metric_names, group_list, k, verify, estimator) -> tuple:
        return (tuple(metric_names), tuple(group_list), int(k), bool(verify), estimator)

    def apply_edit(self, edit: DataEdit) -> None:
        """Apply a training-data edit to every shared cache, in place.

        The dataset, the encoded training matrix, the influence artifacts
        (gradients, Hessian, solver factorizations/eigendecompositions,
        rotated curvature caches) and the candidate alphabet are all
        *patched* for the edit — nothing heavy is rebuilt, which is the
        point: the counters under ``session.stats`` show ``*_builds`` /
        ``hessian_factorizations`` unchanged and the edit cost under
        ``solver_updates`` / ``*_patches``.  The model is **not** refit
        (influence debugging measures edits from the current optimum), and
        the test split, encoder, and cached fairness contexts are
        untouched.  Estimators built before the edit are invalidated via
        the artifacts' version stamp; views and estimators must be minted
        anew (``delta_audit`` does all of this for you).
        """
        self._require_fitted()
        assert self.train_data is not None and self.encoder is not None
        assert self.artifacts is not None and self.alphabet_cache is not None
        new_train = self.train_data.apply_edit(edit)
        X_add = y_add = None
        if edit.num_added:
            X_add = self.encoder.transform(edit.add_table)
            y_add = edit.add_labels
        self.artifacts.apply_edit(
            remove_indices=edit.remove_indices,
            relabel_indices=edit.relabel_indices,
            relabel_labels=edit.relabel_labels,
            X_add=X_add,
            y_add=y_add,
        )
        self.alphabet_cache.apply_edit(edit, new_train.table)
        self.train_data = new_train
        # The artifacts' patched matrix is row-for-row identical to
        # re-encoding the edited table (the encoder is row-wise); sharing
        # the instance keeps the estimators' identity fast path.
        self.X_train = self.artifacts.X_train

    def delta_audit(
        self,
        edit: DataEdit,
        metrics: list[str] | None = None,
        groups: list[ProtectedGroup] | None = None,
        k: int = 3,
        verify: bool = False,
        estimator: str | None = None,
        recheck: str = "auto",
    ) -> DeltaAuditResult:
        """Re-audit after a data edit without redoing the start-up work.

        Applies ``edit`` to the session (see :meth:`apply_edit`), then
        answers the same (metric × group) grid as :meth:`audit` the cheap
        way: each query *replays* the previous search against the patched
        artifacts — re-scoring its recorded candidates with one packed
        batched influence call and re-running the top-k selection — instead
        of re-running the engine (:mod:`repro.core.delta` documents the
        replay and its certificate).  The replay is *certified* when the
        edit left the level-1 predicate alphabet unchanged and the search
        is shallow enough (``max_predicates <= 2``) for its candidate
        space to be a pure function of the alphabet; level-2 support
        crossings and parent-collapse flips are repaired in place by
        re-scoring the affected pairs.  A query whose certificate is
        refused falls back to a fresh engine search through the (patched)
        session caches, which is always correct.

        ``recheck`` tunes the policy: ``"auto"`` (default) falls back only
        on certificate refusal, ``"always"`` re-searches every query,
        ``"never"`` raises ``RuntimeError`` on refusal instead of silently
        paying a re-search — for benchmarks and tests that must stay on
        the fast path.

        The *before* side is the session's last :meth:`audit` of the same
        grid when one exists, else a fresh pre-edit audit run first.
        Returns a :class:`DeltaAuditResult`; its ``after`` side becomes the
        session's ``last_audit``, so successive edits chain naturally.
        """
        self._require_fitted()
        if recheck not in ("auto", "always", "never"):
            raise ValueError(
                f'recheck must be "auto", "always", or "never", got {recheck!r}'
            )
        start = time.perf_counter()
        assert self.test_data is not None and self.artifacts is not None
        metric_names = list(metrics) if metrics is not None else list_metrics()
        group_list = list(groups) if groups is not None else [self.test_data.protected]
        key = self._audit_key(metric_names, group_list, k, verify, estimator)
        with self._lock:
            last_audit, last_key = self.last_audit, self._last_audit_key
        if last_audit is not None and last_key == key:
            before = last_audit
        else:
            before = self.audit(
                metrics=metric_names, groups=group_list, k=k, verify=verify,
                estimator=estimator,
            )

        # Certificate input (1): the level-1 alphabet of the audit's search
        # key, captured on both sides of the edit.
        cfg = self.config
        assert self.alphabet_cache is not None
        alphabet = self.alphabet_cache.get(
            cfg.support_threshold, cfg.num_bins, cfg.exclude_features or None
        )
        specs_before = [predicate for predicate, _ in alphabet.entries]
        self.apply_edit(edit)
        alphabet = self.alphabet_cache.get(
            cfg.support_threshold, cfg.num_bins, cfg.exclude_features or None
        )
        level1_stable = specs_before == [predicate for predicate, _ in alphabet.entries]
        # The replay's structural state (packing, skeleton AND, support
        # filter) is metric-independent: build it once for the whole grid.
        geometry = None
        if level1_stable and recheck != "always" and cfg.max_predicates <= 2:
            with trace.span("delta.geometry"):
                geometry = replay_geometry(alphabet, cfg.support_threshold)

        delta_queries: list[DeltaQuery] = []
        after_queries: list[AuditQuery] = []
        with trace.span("delta.grid", queries=len(before.queries)):
            for bq in before.queries:
                t0 = time.perf_counter()
                with trace.span(
                    "delta.query", metric=bq.metric, group=bq.group.describe()
                ) as query_span:
                    view = self.explainer(
                        metric=bq.metric, group=bq.group, estimator=estimator
                    )
                    after_set, certified, recheck_ran, reason = self._delta_query(
                        bq, view, k, verify, recheck, level1_stable, alphabet, geometry
                    )
                    query_span.set(certified=certified, recheck_ran=recheck_ran)
                seconds = time.perf_counter() - t0
                self.metrics.observe("audit.query_seconds", seconds)
                cost = (
                    CostReport.from_span(query_span)
                    if trace.get_tracer().enabled
                    else None
                )
                delta_queries.append(
                    DeltaQuery(
                        metric=bq.metric,
                        group=bq.group,
                        before=bq.explanations,
                        after=after_set,
                        certified=certified,
                        recheck_ran=recheck_ran,
                        seconds=seconds,
                        reason=reason,
                        cost=cost,
                    )
                )
                after_queries.append(
                    AuditQuery(
                        metric=bq.metric, group=bq.group,
                        explanations=after_set, seconds=seconds, cost=cost,
                    )
                )
        after = AuditResult(
            queries=after_queries, setup_seconds=self.setup_seconds,
            stats=dict(self.stats),
        )
        with self._lock:
            self.last_audit = after
            self._last_audit_key = key
        return DeltaAuditResult(
            edit=edit,
            queries=delta_queries,
            before=before,
            after=after,
            seconds=time.perf_counter() - start,
            stats=dict(self.stats),
        )

    def _delta_query(
        self,
        before_query: AuditQuery,
        view,
        k: int,
        verify: bool,
        recheck: str,
        level1_stable: bool,
        alphabet,
        geometry,
    ) -> tuple[ExplanationSet, bool, bool, str]:
        """Answer one delta-audit cell: replay, or fall back to re-search."""
        cfg = view.config
        if recheck == "always":
            return view.explain(k=k, verify=verify), False, True, "recheck forced"

        search_start = time.perf_counter()
        if level1_stable:
            record = getattr(before_query.explanations.lattice, "record", None)
            with trace.span("delta.replay", metric=cfg.metric) as replay_span:
                replay, reason = replay_search(
                    record,
                    alphabet,
                    view.estimator,
                    cfg,
                    k,
                    view.protected_group.attribute,
                    geometry=geometry,
                )
                if replay is not None:
                    replay_span.set(evaluated=replay.num_evaluated)
        else:
            replay, reason = None, "the edit changed the level-1 alphabet"
        if replay is None:
            if recheck == "never":
                raise RuntimeError(
                    f"delta_audit certificate refused for {before_query.metric!r} "
                    f"({reason}) and recheck='never' forbids the fresh search"
                )
            return view.explain(k=k, verify=verify), False, True, reason
        search_seconds = time.perf_counter() - search_start

        explanations = [
            Explanation.from_stats(i + 1, s) for i, s in enumerate(replay.selected)
        ]
        if verify:
            view._verify(explanations, [s.mask() for s in replay.selected])
        after_set = ExplanationSet(
            explanations=explanations,
            metric_name=cfg.metric,
            original_bias=view.original_bias,
            search_seconds=search_seconds,
            filter_seconds=replay.filter_seconds,
            lattice=CandidateResult(
                candidates=replay.candidates,
                levels=[],
                engine="delta",
                num_evaluated=replay.num_evaluated,
                record=replay.record,
            ),
        )
        return after_set, True, False, ""
