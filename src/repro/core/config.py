"""Configuration for the end-to-end Gopher pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fairness.metrics import list_metrics

_ESTIMATORS = ("first_order", "second_order", "exact", "series", "one_step_gd", "retrain")
_ENGINES = ("lattice", "mining")


@dataclass
class GopherConfig:
    """All knobs of the explanation pipeline, with the paper's defaults.

    Attributes
    ----------
    metric:
        Fairness metric name (see :func:`repro.fairness.list_metrics`).
    estimator:
        Influence estimator driving the lattice search.  ``"second_order"``
        is the paper's recommendation for coherent subsets; ``"exact"`` and
        ``"series"`` name its two variants directly (the exact Newton step
        on the reduced objective vs the Eq. 10 Neumann truncation) — both
        run the search through batched influence queries, the exact variant
        via Woodbury downdates of the cached factorization.  Switch to
        ``"first_order"`` for the fastest search on large candidate spaces.
    estimator_kwargs:
        Extra keyword arguments for the estimator constructor.
    engine:
        Candidate-generation backend for Algorithm 1.  ``"lattice"`` is
        the paper's level-wise merge search; ``"mining"`` is the
        packed-bitset closed-pattern miner (``repro.mining``), which
        evaluates one candidate per distinct extent and streams influence
        scoring off packed masks instead of (m, n) boolean matrices.  The
        miners' top-k output is identical on the benchmark workloads
        (pinned by tests and ``bench_candidate_mining``); in general the
        two engines apply heuristic 2 along different search paths — the
        lattice against its first producing merge pair, the miner
        order-independently — so adversarial instances can rank the deep
        tie-heavy tail differently (see ``repro.mining.closed``).
    search_batch_size:
        Candidates buffered per batched influence call during the search
        (both engines).
    support_threshold:
        τ of Algorithm 1 — the paper's experiments use 5%.
    max_predicates:
        Maximum predicates per pattern (papers' tables use 3–4).
    num_bins:
        Quantile bins per numeric feature for candidate thresholds.
    containment_threshold:
        c of Algorithm 2 — maximum allowed overlap with already-selected
        explanations.
    prune_by_responsibility:
        Heuristic 2 of Algorithm 1 (merged patterns must strictly improve
        responsibility); exposed for the ablation benchmark.
    exclude_protected_only:
        Drop top-k candidates whose predicates mention *only* the protected
        attribute — "the protected group is responsible" is a vacuous
        explanation (the paper's tables never contain one).  The attribute
        still appears freely in combination with other predicates.
    max_responsibility:
        Definition 3.1's root-cause upper bound (removal must not overshoot
        the bias past zero), with slack for estimation noise; see
        :func:`repro.patterns.select_top_k`.
    exclude_features:
        Features that must not appear in explanation predicates.
    retrain_jobs:
        Worker processes for ground-truth verification retrains (removal
        *and* update explanations).  ``None`` uses one worker per CPU;
        ``1`` keeps every refit in-process.
    test_fraction / seed:
        Used only by the convenience path that splits a single dataset.
    """

    metric: str = "statistical_parity"
    estimator: str = "second_order"
    estimator_kwargs: dict = field(default_factory=dict)
    engine: str = "lattice"
    search_batch_size: int = 1024
    support_threshold: float = 0.05
    max_predicates: int = 3
    num_bins: int = 4
    containment_threshold: float = 0.5
    prune_by_responsibility: bool = True
    exclude_protected_only: bool = True
    max_responsibility: float = 1.25
    exclude_features: set[str] = field(default_factory=set)
    retrain_jobs: int | None = None
    test_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.metric not in list_metrics():
            raise ValueError(f"unknown metric {self.metric!r}; available: {list_metrics()}")
        if self.estimator not in _ESTIMATORS:
            raise ValueError(f"unknown estimator {self.estimator!r}; available: {_ESTIMATORS}")
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; available: {_ENGINES}")
        if self.search_batch_size < 1:
            raise ValueError(f"search_batch_size must be >= 1, got {self.search_batch_size}")
        if not 0.0 <= self.support_threshold < 1.0:
            raise ValueError(f"support_threshold must be in [0, 1), got {self.support_threshold}")
        if not 0.0 < self.containment_threshold <= 1.0:
            raise ValueError(
                f"containment_threshold must be in (0, 1], got {self.containment_threshold}"
            )
        if self.max_predicates < 1:
            raise ValueError(f"max_predicates must be >= 1, got {self.max_predicates}")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {self.test_fraction}")
        if self.retrain_jobs is not None and self.retrain_jobs < 1:
            raise ValueError(f"retrain_jobs must be None or >= 1, got {self.retrain_jobs}")
