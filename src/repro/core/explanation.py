"""Result types returned by :class:`repro.core.GopherExplainer`."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mining.engine import CandidateResult
from repro.patterns.lattice import LatticeResult, PatternStats
from repro.patterns.pattern import Pattern


@dataclass
class Explanation:
    """One top-k explanation: a pattern plus its responsibility estimates.

    ``est_*`` fields come from the influence estimator that drove the
    search; ``gt_*`` fields are filled in when the explanation was verified
    by actually retraining without the subset (the Δbias the paper's tables
    report).
    """

    rank: int
    pattern: Pattern
    support: float
    size: int
    est_responsibility: float
    est_bias_change: float
    interestingness: float
    gt_bias_change: float | None = None
    gt_responsibility: float | None = None

    @property
    def bias_reduction_pct(self) -> float | None:
        """Ground-truth bias reduction in percent (None if unverified)."""
        if self.gt_responsibility is None:
            return None
        return 100.0 * self.gt_responsibility

    def describe(self) -> str:
        parts = [
            f"#{self.rank}: {self.pattern}",
            f"support={self.support:.2%}",
            f"est R={self.est_responsibility:.2%}",
        ]
        if self.gt_responsibility is not None:
            parts.append(f"true Δbias={self.gt_responsibility:.2%}")
        return "  ".join(parts)

    @classmethod
    def from_stats(cls, rank: int, stats: PatternStats) -> "Explanation":
        return cls(
            rank=rank,
            pattern=stats.pattern,
            support=stats.support,
            size=stats.size,
            est_responsibility=stats.responsibility,
            est_bias_change=stats.bias_change,
            interestingness=stats.interestingness,
        )


@dataclass
class ExplanationSet:
    """The full output of one ``explain()`` call."""

    explanations: list[Explanation]
    metric_name: str
    original_bias: float
    search_seconds: float
    filter_seconds: float
    lattice: LatticeResult | CandidateResult

    def __len__(self) -> int:
        return len(self.explanations)

    def __iter__(self):
        return iter(self.explanations)

    def __getitem__(self, index: int) -> Explanation:
        return self.explanations[index]

    def patterns(self) -> list[Pattern]:
        return [e.pattern for e in self.explanations]

    def to_records(self) -> list[dict]:
        """JSON-serializable records, one per explanation.

        Intended for piping results into dashboards or notebooks; predicates
        are exported structurally (feature/op/value) as well as rendered.
        """
        records = []
        for e in self.explanations:
            records.append(
                {
                    "rank": e.rank,
                    "pattern": str(e.pattern),
                    "predicates": [
                        {"feature": p.feature, "op": p.op, "value": p.value}
                        for p in e.pattern.predicates
                    ],
                    "support": e.support,
                    "size": e.size,
                    "estimated_responsibility": e.est_responsibility,
                    "estimated_bias_change": e.est_bias_change,
                    "interestingness": e.interestingness,
                    "ground_truth_bias_change": e.gt_bias_change,
                    "ground_truth_responsibility": e.gt_responsibility,
                    "metric": self.metric_name,
                    "original_bias": self.original_bias,
                }
            )
        return records

    def render(self) -> str:
        """Paper-style table: pattern, support, Δbias."""
        header = f"Top-{len(self.explanations)} explanations " \
                 f"({self.metric_name}, original bias = {self.original_bias:.4f})"
        lines = [header, "-" * len(header)]
        for e in self.explanations:
            delta = (
                f"{e.gt_responsibility:7.1%}" if e.gt_responsibility is not None
                else f"{e.est_responsibility:6.1%}*"
            )
            lines.append(f"{e.support:7.2%}  {delta}  {e.pattern}")
        lines.append("(Δbias = relative bias reduction when the subset is removed; "
                     "* = estimated, unverified)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
