"""Binning of numeric features for pattern-candidate generation.

Algorithm 1 of the paper enumerates single predicates ``X op val``.  For
numeric columns with many distinct values this explodes the search space and
produces near-duplicate explanations (``hours < 40`` vs ``hours < 42``), so
the paper applies binning; these helpers pick the candidate thresholds.
"""

from __future__ import annotations

import numpy as np


def quantile_thresholds(values: np.ndarray, num_bins: int) -> list[float]:
    """Thresholds at the interior quantiles of ``values``.

    Returns at most ``num_bins - 1`` strictly increasing thresholds; ties in
    the data can collapse quantiles, so fewer may be returned.
    """
    if num_bins < 2:
        raise ValueError(f"num_bins must be >= 2, got {num_bins}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return []
    qs = np.linspace(0.0, 1.0, num_bins + 1)[1:-1]
    thresholds = np.quantile(arr, qs)
    unique = np.unique(thresholds)
    lo, hi = arr.min(), arr.max()
    return [float(t) for t in unique if lo < t < hi]


def equal_width_thresholds(values: np.ndarray, num_bins: int) -> list[float]:
    """Thresholds splitting the observed range into equal-width bins."""
    if num_bins < 2:
        raise ValueError(f"num_bins must be >= 2, got {num_bins}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return []
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        return []
    edges = np.linspace(lo, hi, num_bins + 1)[1:-1]
    return [float(e) for e in np.unique(edges)]
