"""Synthetic million-row scale workload for the mining benchmarks.

The three paper datasets top out at tens of thousands of rows; this
generator produces a schema-compatible workload at arbitrary ``n_rows``
(the scale benchmarks run it to 10M training rows) with the properties the
closed-pattern miner's cost model cares about:

* **many low-support categorical items** — ``region`` has 40 roughly
  uniform categories (~2.5% support each), so most depth-1 extents sit
  below the ``repro.mining.bitset`` sparse-density threshold and every
  branch shrinks fast enough to trigger conditional-database projection;
* **a few dense items** — binned numerics and the ~⅓-support ``group``/
  ``night`` values keep the dense packed path exercised in the same run;
* **planted depth-3 bias mechanisms** — coherent ``group=B`` subgroups
  (region cluster × night, region cluster × device) carry the injected
  disadvantage, so the audit has real structure to find, with a
  counteracting effect that keeps blanket ``group=B`` off the top just
  like the paper's generators.

Protected attribute: ``group`` (A privileged).  Favorable outcome is
approval (``favorable_label = 1``).  Generation is fully vectorized —
integer-code draws fancy-indexed into small string pools — so a 13M-row
table builds in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._synth import bernoulli
from repro.datasets.base import Dataset, ProtectedGroup
from repro.tabular import Table
from repro.utils.rng import ensure_rng

_PROTECTED = ProtectedGroup(attribute="group", privileged_category="A")

_REGIONS = np.array([f"r{i:02d}" for i in range(40)], dtype=object)
_CHANNELS = np.array([f"c{i:02d}" for i in range(12)], dtype=object)
_DEVICES = np.array([f"d{i}" for i in range(8)], dtype=object)
_PLANS = np.array(["basic", "plus", "pro", "team", "enterprise"], dtype=object)


def load_synth_scale(
    n_rows: int = 200_000,
    seed: int | np.random.Generator | None = 0,
    bias_strength: float = 1.0,
) -> Dataset:
    """Generate the scale workload.

    ``bias_strength`` scales the planted group-conditioned effects; 0
    yields nearly fair data.
    """
    rng = ensure_rng(seed)
    n = int(n_rows)
    if n < 1000:
        raise ValueError(f"n_rows must be >= 1000 for a usable scale workload, got {n}")

    group_code = (rng.random(n) < 0.3).astype(np.int64)  # 1 = B (protected)
    region_code = rng.integers(0, len(_REGIONS), n)
    channel_code = rng.integers(0, len(_CHANNELS), n)
    device_code = rng.integers(0, len(_DEVICES), n)
    plan_code = rng.integers(0, len(_PLANS), n)
    night_code = (rng.random(n) < 0.35).astype(np.int64)
    activity = np.round(rng.gamma(3.0, 12.0, n), 1)
    tenure = np.round(np.clip(rng.exponential(30.0, n), 0.0, 240.0), 1)

    b = group_code == 1
    night = night_code == 1

    # Legitimate approval signal.
    logits = (
        0.4
        + 0.012 * (activity - 36.0)
        + 0.004 * (tenure - 30.0)
        + 0.30 * (plan_code >= 3)
        - 0.25 * (channel_code < 2)
    )

    # Planted discriminatory mechanisms: coherent depth-3 subgroups of the
    # protected group are denied approval, while B rows in the last region
    # cluster get a mild *positive* nudge — the counteracting effect that
    # keeps the blanket group=B pattern from dominating coherent subgroups.
    bias = np.zeros(n)
    bias -= 2.0 * (b & (region_code < 6) & night)
    bias -= 1.2 * (b & (region_code >= 6) & (region_code < 12) & (device_code < 2))
    bias += 0.6 * (b & (region_code >= 32) & ~night)

    labels = bernoulli(logits + bias_strength * bias, rng)

    table = Table.from_dict(
        {
            "group": np.where(b, "B", "A").astype(object),
            "region": _REGIONS[region_code],
            "channel": _CHANNELS[channel_code],
            "device": _DEVICES[device_code],
            "plan": _PLANS[plan_code],
            "night": np.where(night, "Yes", "No").astype(object),
            "activity": activity,
            "tenure": tenure,
        }
    )
    return Dataset("synth_scale", table, labels, _PROTECTED, favorable_label=1)
