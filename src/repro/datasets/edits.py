"""Data edits: the repair actions of the paper's §5 debugging loop.

A fairness debugging session is a loop — audit, apply a repair, re-audit.
:class:`DataEdit` is the value describing one repair step against the
*training* split: remove rows, relabel rows, and/or append new rows.  All
indices refer to the dataset **before** the edit; application order is
fixed as relabel → remove → add (so an edit is unambiguous however it was
composed), removal preserves the order of the remaining rows, and added
rows are appended at the end.

:meth:`Dataset.apply_edit` materializes the edited dataset;
``ModelArtifacts.apply_edit`` / ``AlphabetCache.apply_edit`` patch the
cached influence and mining state for the same edit without rebuilding it;
and ``AuditSession.delta_audit`` drives the whole loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tabular import Table
from repro.utils.validation import check_binary_labels


def _index_tuple(indices, name: str) -> tuple[int, ...]:
    arr = np.asarray(indices, dtype=np.int64).reshape(-1)
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} must be non-negative, got {int(arr.min())}")
    if arr.size > 1 and np.unique(arr).size != arr.size:
        raise ValueError(f"{name} contains duplicate indices")
    return tuple(int(i) for i in arr)


@dataclass(frozen=True, eq=False)
class DataEdit:
    """One edit of a labelled table: relabel, remove, and/or add rows.

    Attributes
    ----------
    remove_indices:
        Rows (pre-edit indices) to delete.
    relabel_indices / relabel_labels:
        Rows (pre-edit indices) whose label is replaced, with the new
        binary labels, aligned.
    add_table / add_labels:
        Rows appended after removal, with their binary labels.

    Use the :meth:`remove` / :meth:`relabel` / :meth:`add` factories for
    single-action edits; the constructor accepts any combination (a
    relabel and a removal must not target the same row — the composite
    would be order-ambiguous to a reader even though application order is
    fixed).
    """

    remove_indices: tuple[int, ...] = ()
    relabel_indices: tuple[int, ...] = ()
    relabel_labels: tuple[int, ...] = ()
    add_table: Table | None = None
    add_labels: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "remove_indices", _index_tuple(self.remove_indices, "remove_indices")
        )
        object.__setattr__(
            self, "relabel_indices", _index_tuple(self.relabel_indices, "relabel_indices")
        )
        labels = np.asarray(self.relabel_labels, dtype=np.int64).reshape(-1)
        if labels.size:
            check_binary_labels(labels, "relabel_labels")
        if len(labels) != len(self.relabel_indices):
            raise ValueError(
                f"relabel_labels has {len(labels)} entries for "
                f"{len(self.relabel_indices)} relabel_indices"
            )
        object.__setattr__(self, "relabel_labels", tuple(int(v) for v in labels))
        overlap = set(self.remove_indices) & set(self.relabel_indices)
        if overlap:
            raise ValueError(
                f"rows {sorted(overlap)} are both removed and relabelled; "
                "drop them from one of the two actions"
            )
        if (self.add_table is None) != (self.add_labels is None):
            raise ValueError("add_table and add_labels must be given together")
        if self.add_table is not None:
            added = check_binary_labels(np.asarray(self.add_labels), "add_labels")
            if len(added) != self.add_table.num_rows:
                raise ValueError(
                    f"add_labels length {len(added)} != added rows "
                    f"{self.add_table.num_rows}"
                )
            object.__setattr__(self, "add_labels", added)
        if self.is_empty:
            raise ValueError("an edit must remove, relabel, or add at least one row")

    # -- factories -----------------------------------------------------
    @classmethod
    def remove(cls, indices) -> "DataEdit":
        """Edit that deletes the given rows."""
        return cls(remove_indices=indices)

    @classmethod
    def relabel(cls, indices, labels) -> "DataEdit":
        """Edit that replaces the labels of the given rows."""
        return cls(relabel_indices=indices, relabel_labels=labels)

    @classmethod
    def add(cls, table: Table, labels) -> "DataEdit":
        """Edit that appends the given labelled rows."""
        return cls(add_table=table, add_labels=labels)

    # -- introspection -------------------------------------------------
    @property
    def num_removed(self) -> int:
        return len(self.remove_indices)

    @property
    def num_relabelled(self) -> int:
        return len(self.relabel_indices)

    @property
    def num_added(self) -> int:
        return 0 if self.add_table is None else self.add_table.num_rows

    @property
    def is_empty(self) -> bool:
        return not (self.num_removed or self.num_relabelled or self.num_added)

    @property
    def changes_rows(self) -> bool:
        """True when the edit changes the *feature table* (not just labels)."""
        return bool(self.num_removed or self.num_added)

    def max_index(self) -> int:
        """Largest pre-edit row index the edit refers to (-1 if none)."""
        referenced = (*self.remove_indices, *self.relabel_indices)
        return max(referenced) if referenced else -1

    def describe(self) -> str:
        parts = []
        if self.num_relabelled:
            parts.append(f"relabel {self.num_relabelled}")
        if self.num_removed:
            parts.append(f"remove {self.num_removed}")
        if self.num_added:
            parts.append(f"add {self.num_added}")
        return f"edit({', '.join(parts)})"

    def __repr__(self) -> str:  # labels/arrays are noise in tracebacks
        return f"DataEdit<{self.describe()[5:-1]}>"


def random_edit(dataset, kind: str, count: int, seed: int = 0) -> DataEdit:
    """A seeded random edit of ``count`` rows of a dataset's training table.

    ``kind`` is ``"remove"`` (delete random rows), ``"relabel"`` (flip the
    labels of random rows), or ``"add"`` (append ``count`` rows resampled
    from the dataset with their original labels — resampling keeps the
    feature domain identical, so encoders and binners stay valid).  Used by
    the CLI's ``--edit`` flag, the delta-audit fuzz tests, and the
    benchmark.
    """
    if kind not in ("remove", "relabel", "add"):
        raise ValueError(f"kind must be remove/relabel/add, got {kind!r}")
    n = dataset.num_rows
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    if kind == "add":
        picks = rng.integers(0, n, size=count)
        return DataEdit.add(dataset.table.take(picks), dataset.labels[picks])
    if count >= n:
        raise ValueError(f"cannot {kind} {count} of {n} rows")
    picks = rng.choice(n, size=count, replace=False)
    if kind == "remove":
        return DataEdit.remove(picks)
    return DataEdit.relabel(picks, 1 - dataset.labels[picks])
