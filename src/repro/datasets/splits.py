"""Train/test splitting."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import ensure_rng


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Dataset, Dataset]:
    """Shuffle and split a dataset into (train, test).

    The split is stratified on the label so that small datasets keep both
    classes on both sides — fairness metrics conditioned on ``Y = 1`` (equal
    opportunity) are undefined otherwise.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(seed)
    test_indices: list[np.ndarray] = []
    train_indices: list[np.ndarray] = []
    for label in (0, 1):
        pool = np.flatnonzero(dataset.labels == label)
        pool = rng.permutation(pool)
        n_test = int(round(len(pool) * test_fraction))
        n_test = min(max(n_test, 1 if len(pool) > 1 else 0), max(len(pool) - 1, 0))
        test_indices.append(pool[:n_test])
        train_indices.append(pool[n_test:])
    train = np.sort(np.concatenate(train_indices))
    test = np.sort(np.concatenate(test_indices))
    return dataset.subset(train), dataset.subset(test)
