"""Feature encoding: one-hot categoricals + standardized numerics.

The encoder also records, per original column, the slice it occupies in the
encoded matrix.  Update-based explanations (Section 5 of the paper) perturb
rows in encoded space and must project back onto the valid input domain —
``EncodedGroup`` carries everything that projection needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tabular import CategoricalColumn, NumericColumn, Table


@dataclass
class EncodedGroup:
    """Book-keeping for one original column inside the encoded matrix.

    ``start:stop`` is the column slice in the encoded matrix.  For
    categorical columns ``categories`` lists the one-hot order; for numeric
    columns ``mean``/``std`` define the standardization and
    ``minimum``/``maximum`` the observed domain used for projection.
    """

    column: str
    kind: str  # "categorical" | "numeric"
    start: int
    stop: int
    categories: list[str] = field(default_factory=list)
    mean: float = 0.0
    std: float = 1.0
    minimum: float = 0.0
    maximum: float = 0.0

    @property
    def width(self) -> int:
        return self.stop - self.start


class TabularEncoder:
    """Fit/transform between :class:`Table` rows and dense float matrices.

    Categorical columns become one-hot blocks (all categories kept — Gopher
    needs to decode updates back to *named* category flips, so no category is
    dropped).  Numeric columns are z-standardized using training statistics.
    """

    def __init__(self) -> None:
        self.groups: list[EncodedGroup] = []
        self.feature_names: list[str] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, table: Table) -> "TabularEncoder":
        self.groups = []
        self.feature_names = []
        offset = 0
        for name in table.column_names:
            column = table.column(name)
            if isinstance(column, CategoricalColumn):
                categories = list(column.categories)
                group = EncodedGroup(
                    column=name,
                    kind="categorical",
                    start=offset,
                    stop=offset + len(categories),
                    categories=categories,
                )
                self.feature_names.extend(f"{name}={c}" for c in categories)
            elif isinstance(column, NumericColumn):
                std = float(column.values.std())
                group = EncodedGroup(
                    column=name,
                    kind="numeric",
                    start=offset,
                    stop=offset + 1,
                    mean=float(column.values.mean()),
                    std=std if std > 0 else 1.0,
                    minimum=float(column.values.min()),
                    maximum=float(column.values.max()),
                )
                self.feature_names.append(name)
            else:  # pragma: no cover - no other column kinds exist
                raise TypeError(f"unsupported column type for {name!r}")
            offset = group.stop
            self.groups.append(group)
        self._fitted = True
        return self

    @property
    def num_features(self) -> int:
        self._require_fitted()
        return self.groups[-1].stop if self.groups else 0

    def group_for(self, column: str) -> EncodedGroup:
        self._require_fitted()
        for group in self.groups:
            if group.column == column:
                return group
        raise KeyError(f"no encoded group for column {column!r}")

    # ------------------------------------------------------------------
    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` into an (n_rows, num_features) float64 matrix."""
        self._require_fitted()
        n = table.num_rows
        out = np.zeros((n, self.num_features), dtype=np.float64)
        for group in self.groups:
            column = table.column(group.column)
            if group.kind == "categorical":
                if not isinstance(column, CategoricalColumn):
                    raise TypeError(f"column {group.column!r} changed type since fit")
                for j, category in enumerate(group.categories):
                    out[:, group.start + j] = column.equals_mask(category)
            else:
                if not isinstance(column, NumericColumn):
                    raise TypeError(f"column {group.column!r} changed type since fit")
                out[:, group.start] = (column.values - group.mean) / group.std
        return out

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)

    # ------------------------------------------------------------------
    def decode_row(self, x: np.ndarray) -> dict[str, object]:
        """Decode one encoded row back to named values.

        One-hot blocks decode to the argmax category (so this also works on
        *perturbed* rows that are no longer exactly one-hot); numeric slots
        are un-standardized.
        """
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_features,):
            raise ValueError(f"row shape {x.shape} != ({self.num_features},)")
        decoded: dict[str, object] = {}
        for group in self.groups:
            block = x[group.start:group.stop]
            if group.kind == "categorical":
                decoded[group.column] = group.categories[int(np.argmax(block))]
            else:
                decoded[group.column] = float(block[0] * group.std + group.mean)
        return decoded

    def project_rows(self, x: np.ndarray) -> np.ndarray:
        """Project encoded rows onto the valid input domain (paper Eq. 19).

        Each one-hot block snaps to the nearest valid one-hot vector (its
        argmax); each numeric slot is clipped to the observed [min, max]
        range.  This is the projection step of the projected-gradient-descent
        update search.
        """
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64)).copy()
        if x.shape[1] != self.num_features:
            raise ValueError(f"rows have {x.shape[1]} features, expected {self.num_features}")
        for group in self.groups:
            block = x[:, group.start:group.stop]
            if group.kind == "categorical":
                winners = np.argmax(block, axis=1)
                block[:] = 0.0
                block[np.arange(len(block)), winners] = 1.0
            else:
                lo = (group.minimum - group.mean) / group.std
                hi = (group.maximum - group.mean) / group.std
                np.clip(block, lo, hi, out=block)
            x[:, group.start:group.stop] = block
        return x

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("encoder is not fitted; call fit() first")
