"""Dataset layer: schemas, fairness datasets, encoders, binning, splits.

The three benchmark datasets of the paper (German Credit, Adult Income, NYPD
Stop-Question-Frisk) are produced by synthetic generators that reproduce each
dataset's schema and — crucially — the *bias mechanism* the paper's
experiments rely on (see DESIGN.md §1 for the substitution rationale).  Real
CSV files can be loaded through the same classes when available.
"""

from repro.datasets.adult import load_adult
from repro.datasets.base import Dataset, ProtectedGroup
from repro.datasets.edits import DataEdit, random_edit
from repro.datasets.binning import equal_width_thresholds, quantile_thresholds
from repro.datasets.encoding import EncodedGroup, TabularEncoder
from repro.datasets.german import load_german
from repro.datasets.scale import load_synth_scale
from repro.datasets.splits import train_test_split
from repro.datasets.sqf import load_sqf

__all__ = [
    "DataEdit",
    "Dataset",
    "EncodedGroup",
    "ProtectedGroup",
    "TabularEncoder",
    "equal_width_thresholds",
    "load_adult",
    "load_german",
    "load_sqf",
    "load_synth_scale",
    "quantile_thresholds",
    "random_edit",
    "train_test_split",
]
