"""Synthetic Adult Income data (UCI schema, paper §6.1).

The paper leans on a documented inconsistency of the real Adult data: the
income attribute reports *household* income for married individuals, and the
data contains more married males, creating a favourable bias toward males.
The generator plants that artifact directly:

* income depends on legitimate signals (education, hours, age, occupation);
* **married individuals** get a large household-income boost, and marriage is
  strongly gender-skewed (males are far more likely to be recorded as
  ``Married-civ-spouse`` with ``relationship = Husband``);
* a small direct gender effect mirrors residual wage-gap signal.

Protected attribute: ``gender`` (Male privileged).  Favorable label: 1
(income > 50K).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets._synth import bernoulli, categorical
from repro.datasets.base import Dataset, ProtectedGroup
from repro.tabular import Table, read_csv
from repro.utils.rng import ensure_rng

_PROTECTED = ProtectedGroup(attribute="gender", privileged_category="Male")

_WORKCLASS = ["Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov"]
_EDUCATION = [
    "HS-grad",
    "Some-college",
    "Bachelors",
    "Masters",
    "Assoc-voc",
    "Assoc-acdm",
    "11th",
    "Prof-school",
    "Doctorate",
]
_EDU_YEARS = {
    "11th": 7.0,
    "HS-grad": 9.0,
    "Some-college": 10.0,
    "Assoc-voc": 11.0,
    "Assoc-acdm": 12.0,
    "Bachelors": 13.0,
    "Masters": 14.0,
    "Prof-school": 15.0,
    "Doctorate": 16.0,
}
_MARITAL = [
    "Married-civ-spouse",
    "Never-married",
    "Divorced",
    "Separated",
    "Widowed",
]
_OCCUPATION = [
    "Prof-specialty",
    "Craft-repair",
    "Exec-managerial",
    "Adm-clerical",
    "Sales",
    "Other-service",
    "Machine-op-inspct",
    "Transport-moving",
]
_RACE = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]


def load_adult(
    n_rows: int = 4000,
    seed: int | np.random.Generator | None = 0,
    bias_strength: float = 1.0,
    csv_path: str | Path | None = None,
) -> Dataset:
    """Generate (or load) the Adult Income dataset.

    ``bias_strength`` scales the household-income artifact and the direct
    gender effect; 0 yields nearly fair data.
    """
    if csv_path is not None:
        return _from_csv(csv_path)
    rng = ensure_rng(seed)
    n = int(n_rows)
    if n < 100:
        raise ValueError(f"n_rows must be >= 100 for a usable dataset, got {n}")

    gender = categorical(rng, n, ["Male", "Female"], [0.67, 0.33])
    male = gender == "Male"
    age = np.clip(rng.normal(39, 13, n).round(), 17, 90)

    # Marriage is gender-skewed, reproducing the household-income artifact.
    marital = np.empty(n, dtype=object)
    p_married = np.where(male, 0.61, 0.15)
    married = rng.random(n) < p_married
    marital[married] = "Married-civ-spouse"
    marital[~married] = categorical(
        rng, int((~married).sum()), ["Never-married", "Divorced", "Separated", "Widowed"],
        [0.55, 0.28, 0.07, 0.10],
    )

    relationship = np.empty(n, dtype=object)
    relationship[married & male] = "Husband"
    relationship[married & ~male] = "Wife"
    unmarried = ~married
    relationship[unmarried] = categorical(
        rng, int(unmarried.sum()), ["Not-in-family", "Own-child", "Unmarried", "Other-relative"],
        [0.48, 0.26, 0.20, 0.06],
    )

    education = categorical(
        rng, n, _EDUCATION, [0.32, 0.22, 0.17, 0.06, 0.04, 0.03, 0.07, 0.02, 0.07]
    )
    education_num = np.asarray([_EDU_YEARS[e] for e in education])
    workclass = categorical(rng, n, _WORKCLASS, [0.70, 0.08, 0.04, 0.04, 0.07, 0.07])
    occupation = categorical(rng, n, _OCCUPATION, [0.15, 0.13, 0.14, 0.12, 0.12, 0.12, 0.11, 0.11])
    race = categorical(rng, n, _RACE, [0.85, 0.10, 0.03, 0.01, 0.01])
    hours = np.clip(rng.normal(41 + 3 * male, 10, n).round(), 5, 99)
    capital_gain = np.where(rng.random(n) < 0.08, rng.lognormal(8.0, 1.0, n).round(), 0.0)
    capital_loss = np.where(rng.random(n) < 0.05, rng.lognormal(7.2, 0.5, n).round(), 0.0)

    # Legitimate income signal.
    logits = (
        -2.4
        + 0.33 * (education_num - 10.0)
        + 0.030 * (hours - 40.0)
        + 0.020 * (age - 39.0)
        - 0.00025 * np.maximum(age - 55.0, 0.0) ** 2
        + 0.55 * np.isin(occupation, ["Exec-managerial", "Prof-specialty"])
        + 0.0001 * capital_gain
    )

    # Planted bias, spread over three coherent mechanisms so that no single
    # one-predicate group explains the disparity away (the paper notes the
    # blanket [marital = Married] pattern must *lose* on interestingness):
    # the household-income recording artifact for married rows, an
    # overwork-culture boost for long-hours males, and a glass-ceiling
    # penalty for highly educated females.
    # The female-side mechanisms deliberately pull in opposite directions
    # (glass ceiling for the educated, a mild boost for the rest): removing
    # *all* female rows then mixes counteracting effects, so the coherent
    # subgroups out-rank the blanket [gender = Female] pattern — matching
    # the paper's observation that low-interestingness blanket patterns
    # must not dominate the top-k.
    long_hours_male = male & (hours >= 45.0)
    educated_female = ~male & (education_num >= 13.0)
    bias = (
        1.4 * (married & male)
        + 0.8 * long_hours_male
        - 1.2 * educated_female
        + 0.5 * (~male & (education_num < 13.0))
    )
    labels = bernoulli(logits + bias_strength * bias, rng)

    table = Table.from_dict(
        {
            "age": age,
            "workclass": workclass,
            "education": education,
            "education_num": education_num,
            "marital": marital,
            "occupation": occupation,
            "relationship": relationship,
            "race": race,
            "gender": gender,
            "capital_gain": capital_gain,
            "capital_loss": capital_loss,
            "hours": hours,
        }
    )
    return Dataset("adult", table, labels, _PROTECTED, favorable_label=1)


def _from_csv(path: str | Path) -> Dataset:
    table = read_csv(path)
    if "income" not in table:
        raise ValueError("Adult CSV must contain an 'income' label column")
    labels = np.asarray(table.column("income").values, dtype=np.float64).astype(np.int64)
    return Dataset("adult", table.drop(["income"]), labels, _PROTECTED, favorable_label=1)
