"""Shared helpers for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def bernoulli(logits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample binary labels from per-row logits."""
    return (rng.random(len(logits)) < sigmoid(np.asarray(logits, dtype=np.float64))).astype(
        np.int64
    )


def categorical(
    rng: np.random.Generator, n: int, values: list[str], probs: list[float]
) -> np.ndarray:
    """Sample ``n`` categorical values with the given probabilities."""
    probs_arr = np.asarray(probs, dtype=np.float64)
    probs_arr = probs_arr / probs_arr.sum()
    return rng.choice(np.asarray(values, dtype=object), size=n, p=probs_arr)
