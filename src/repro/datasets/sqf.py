"""Synthetic NYPD Stop-Question-Frisk data (paper §6.1).

The real SQF data showed that Black (and Latino) individuals were stopped and
frisked far more often than White individuals, frequently without fitting a
relevant suspect description.  The paper's Table 3 explanations hinge on two
coherent mechanisms, which the generator plants:

* **Black individuals who do not fit a relevant description, stopped
  outside**, are frisked at a strongly inflated rate — strongest for age < 25
  and still elevated for ages 25–45;
* **White individuals observed casing a victim** (even near the offense
  scene) are *not* frisked — a suppression effect;
* legitimate frisk signals (violent crime, suspicious bulge, furtive
  movements, night stops) drive the rest of the outcome.

Protected attribute: ``race`` (White privileged, Black protected).  The
*favorable* outcome is **not being frisked**, so ``favorable_label = 0``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets._synth import bernoulli, categorical
from repro.datasets.base import Dataset, ProtectedGroup
from repro.tabular import Table, read_csv
from repro.utils.rng import ensure_rng

_PROTECTED = ProtectedGroup(attribute="race", privileged_category="White")

_RACES = ["Black", "White", "Black-Hispanic", "White-Hispanic", "Other"]
_BUILDS = ["Thin", "Medium", "Heavy", "Muscular"]


def load_sqf(
    n_rows: int = 6000,
    seed: int | np.random.Generator | None = 0,
    bias_strength: float = 1.0,
    csv_path: str | Path | None = None,
) -> Dataset:
    """Generate (or load) the Stop-Question-Frisk dataset.

    ``bias_strength`` scales the race-conditioned frisk/suppression effects;
    0 yields nearly fair data.
    """
    if csv_path is not None:
        return _from_csv(csv_path)
    rng = ensure_rng(seed)
    n = int(n_rows)
    if n < 100:
        raise ValueError(f"n_rows must be >= 100 for a usable dataset, got {n}")

    race = categorical(rng, n, _RACES, [0.54, 0.11, 0.07, 0.22, 0.06])
    age = np.clip(rng.gamma(6.0, 5.0, n).round(), 12, 80)
    gender = categorical(rng, n, ["Male", "Female"], [0.91, 0.09])
    build = categorical(rng, n, _BUILDS, [0.28, 0.44, 0.18, 0.10])
    location = categorical(rng, n, ["Outside", "Inside"], [0.78, 0.22])
    fits_description = categorical(rng, n, ["Yes", "No"], [0.17, 0.83])
    violent_crime = categorical(rng, n, ["Yes", "No"], [0.12, 0.88])
    casing_victim = categorical(rng, n, ["Yes", "No"], [0.22, 0.78])
    proximity_to_scene = categorical(rng, n, ["Yes", "No"], [0.31, 0.69])
    time_of_day = categorical(rng, n, ["Day", "Night"], [0.55, 0.45])
    suspicious_bulge = categorical(rng, n, ["Yes", "No"], [0.09, 0.91])
    furtive_movements = categorical(rng, n, ["Yes", "No"], [0.47, 0.53])

    black = race == "Black"
    white = race == "White"
    no_description = fits_description == "No"
    outside = location == "Outside"

    # Legitimate frisk signal.
    logits = (
        -1.1
        + 1.1 * (violent_crime == "Yes")
        + 1.3 * (suspicious_bulge == "Yes")
        + 0.55 * (furtive_movements == "Yes")
        + 0.30 * (time_of_day == "Night")
        + 0.80 * (fits_description == "Yes")
        + 0.25 * (proximity_to_scene == "Yes")
    )

    # Planted discriminatory mechanisms (Table 3 of the paper).  Each race
    # group carries *counteracting* subgroup effects (e.g. Black stops that
    # do fit a description are handled slightly by-the-book), so removing an
    # entire race group mixes opposing signals — keeping coherent subgroups,
    # not blanket race patterns, at the top of the lattice ranking.
    bias = np.zeros(n)
    young = age < 25.0
    mid = (age >= 25.0) & (age <= 45.0)
    bias += 2.3 * (black & no_description & outside & young)
    bias += 1.5 * (black & no_description & outside & mid)
    bias -= 0.9 * (black & ~no_description)
    bias -= 2.0 * (white & (casing_victim == "Yes") & (violent_crime == "No"))
    bias += 0.8 * (white & (violent_crime == "Yes"))

    labels = bernoulli(logits + bias_strength * bias, rng)

    table = Table.from_dict(
        {
            "race": race,
            "age": age,
            "gender": gender,
            "build": build,
            "location": location,
            "fits_description": fits_description,
            "violent_crime": violent_crime,
            "casing_victim": casing_victim,
            "proximity_to_scene": proximity_to_scene,
            "time_of_day": time_of_day,
            "suspicious_bulge": suspicious_bulge,
            "furtive_movements": furtive_movements,
        }
    )
    return Dataset("sqf", table, labels, _PROTECTED, favorable_label=0)


def _from_csv(path: str | Path) -> Dataset:
    table = read_csv(path)
    if "frisked" not in table:
        raise ValueError("SQF CSV must contain a 'frisked' label column")
    labels = np.asarray(table.column("frisked").values, dtype=np.float64).astype(np.int64)
    return Dataset("sqf", table.drop(["frisked"]), labels, _PROTECTED, favorable_label=0)
